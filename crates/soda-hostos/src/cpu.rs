//! CPU specifications and cycle/time conversion.
//!
//! The testbed hosts differ in clock rate (*seattle*: 2.6 GHz Xeon,
//! *tacoma*: 1.8 GHz Pentium 4); Tables 2 and 4 and Figures 4–6 all hinge
//! on that ratio, so the conversion between CPU cycles and simulated time
//! lives here.

use soda_sim::SimDuration;

/// A host CPU: marketing name, clock rate, core count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuSpec {
    /// Human-readable model, e.g. `"Intel Xeon"`.
    pub model: &'static str,
    /// Clock rate in MHz.
    pub freq_mhz: u32,
    /// Number of cores (both 2003 testbed hosts are single-core).
    pub cores: u32,
}

impl CpuSpec {
    /// Construct a spec. Panics on a zero frequency or zero cores.
    pub fn new(model: &'static str, freq_mhz: u32, cores: u32) -> Self {
        assert!(freq_mhz > 0, "CPU frequency must be positive");
        assert!(cores > 0, "core count must be positive");
        CpuSpec {
            model,
            freq_mhz,
            cores,
        }
    }

    /// *seattle*'s CPU: 2.6 GHz Intel Xeon.
    pub fn seattle() -> Self {
        CpuSpec::new("Intel Xeon", 2600, 1)
    }

    /// *tacoma*'s CPU: 1.8 GHz Intel Pentium 4.
    pub fn tacoma() -> Self {
        CpuSpec::new("Intel Pentium 4", 1800, 1)
    }

    /// Clock rate in Hz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_mhz as u64 * 1_000_000
    }

    /// Simulated wall time to execute `cycles` on one core.
    pub fn cycles_to_time(&self, cycles: u64) -> SimDuration {
        // ns = cycles / freq_GHz = cycles * 1000 / freq_MHz.
        // Multiply first in u128 to avoid both overflow and precision loss.
        let ns = (cycles as u128 * 1_000) / self.freq_mhz as u128;
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Number of cycles executed in `dur` on one core (truncating).
    pub fn time_to_cycles(&self, dur: SimDuration) -> u64 {
        let c = dur.as_nanos() as u128 * self.freq_mhz as u128 / 1_000;
        c.min(u64::MAX as u128) as u64
    }

    /// Relative speed of this CPU versus `other` (> 1 means faster).
    pub fn speed_ratio(&self, other: &CpuSpec) -> f64 {
        self.freq_hz() as f64 / other.freq_hz() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_specs() {
        let s = CpuSpec::seattle();
        let t = CpuSpec::tacoma();
        assert_eq!(s.freq_mhz, 2600);
        assert_eq!(t.freq_mhz, 1800);
        assert!((s.speed_ratio(&t) - 2600.0 / 1800.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_round_trip() {
        let s = CpuSpec::seattle();
        // 2.6e9 cycles = 1 second.
        assert_eq!(s.cycles_to_time(2_600_000_000).as_millis(), 1_000);
        let d = SimDuration::from_millis(10);
        let c = s.time_to_cycles(d);
        assert_eq!(c, 26_000_000);
        assert_eq!(s.cycles_to_time(c), d);
    }

    #[test]
    fn small_cycle_counts_resolve() {
        // Table 4's native syscall (~1.2k cycles) must not round to zero.
        let s = CpuSpec::seattle();
        let d = s.cycles_to_time(1_208);
        assert!(
            d.as_nanos() > 0,
            "sub-microsecond costs must be representable"
        );
        assert_eq!(d.as_nanos(), 1_208 * 1_000 / 2_600);
    }

    #[test]
    fn same_cycles_slower_on_tacoma() {
        let s = CpuSpec::seattle();
        let t = CpuSpec::tacoma();
        let cycles = 1_000_000;
        assert!(t.cycles_to_time(cycles) > s.cycles_to_time(cycles));
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_freq_panics() {
        CpuSpec::new("bogus", 0, 1);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_panics() {
        CpuSpec::new("bogus", 1000, 0);
    }
}
