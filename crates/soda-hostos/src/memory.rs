//! Per-account memory accounting.
//!
//! The original UML "provides limited support for resource isolation: for
//! memory, a memory usage limit can be specified as a parameter when a
//! UML is started" (§4.2). The SODA Daemon passes each VSN's memory
//! reservation as that limit. This module tracks host memory and enforces
//! per-account (per-VSN) caps: an allocation beyond the cap fails inside
//! the guest without affecting other accounts — memory isolation.

use std::collections::HashMap;

use crate::process::Uid;

/// Memory accounting failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The account would exceed its configured cap.
    OverCap {
        /// The account.
        uid: Uid,
        /// Cap in MB.
        cap_mb: u32,
        /// Usage after the rejected allocation would have applied.
        attempted_mb: u32,
    },
    /// Host physical memory exhausted.
    HostExhausted {
        /// MB requested.
        requested_mb: u32,
        /// MB free.
        free_mb: u32,
    },
    /// Account has no cap configured (VSN not registered).
    UnknownAccount(Uid),
    /// Freeing more than the account holds.
    Underflow(Uid),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OverCap {
                uid,
                cap_mb,
                attempted_mb,
            } => {
                write!(
                    f,
                    "uid {uid} over memory cap: {attempted_mb}MB > {cap_mb}MB"
                )
            }
            MemError::HostExhausted {
                requested_mb,
                free_mb,
            } => {
                write!(
                    f,
                    "host memory exhausted: requested {requested_mb}MB, free {free_mb}MB"
                )
            }
            MemError::UnknownAccount(uid) => write!(f, "no memory cap registered for uid {uid}"),
            MemError::Underflow(uid) => write!(f, "uid {uid} freed more memory than allocated"),
        }
    }
}

impl std::error::Error for MemError {}

#[derive(Clone, Copy, Debug, Default)]
struct Account {
    cap_mb: u32,
    used_mb: u32,
}

/// Host memory manager with per-uid caps.
#[derive(Clone, Debug)]
pub struct MemoryManager {
    total_mb: u32,
    used_mb: u32,
    accounts: HashMap<Uid, Account>,
}

impl MemoryManager {
    /// A manager for a host with `total_mb` of RAM.
    pub fn new(total_mb: u32) -> Self {
        MemoryManager {
            total_mb,
            used_mb: 0,
            accounts: HashMap::new(),
        }
    }

    /// Register an account with a cap — the `mem=` limit passed when the
    /// UML starts. Re-registering updates the cap but keeps usage.
    pub fn register(&mut self, uid: Uid, cap_mb: u32) {
        self.accounts.entry(uid).or_default().cap_mb = cap_mb;
    }

    /// Drop an account, returning its memory to the host (VSN teardown).
    pub fn unregister(&mut self, uid: Uid) {
        if let Some(acc) = self.accounts.remove(&uid) {
            self.used_mb = self.used_mb.saturating_sub(acc.used_mb);
        }
    }

    /// Allocate `mb` for `uid`. Fails if the account cap or host RAM
    /// would be exceeded; a failed allocation changes nothing.
    pub fn allocate(&mut self, uid: Uid, mb: u32) -> Result<(), MemError> {
        let acc = self
            .accounts
            .get(&uid)
            .copied()
            .ok_or(MemError::UnknownAccount(uid))?;
        let attempted = acc.used_mb.saturating_add(mb);
        if attempted > acc.cap_mb {
            return Err(MemError::OverCap {
                uid,
                cap_mb: acc.cap_mb,
                attempted_mb: attempted,
            });
        }
        let free = self.total_mb.saturating_sub(self.used_mb);
        if mb > free {
            return Err(MemError::HostExhausted {
                requested_mb: mb,
                free_mb: free,
            });
        }
        self.accounts.get_mut(&uid).expect("checked").used_mb = attempted;
        self.used_mb += mb;
        Ok(())
    }

    /// Free `mb` previously allocated by `uid`.
    pub fn free(&mut self, uid: Uid, mb: u32) -> Result<(), MemError> {
        let acc = self
            .accounts
            .get_mut(&uid)
            .ok_or(MemError::UnknownAccount(uid))?;
        if mb > acc.used_mb {
            return Err(MemError::Underflow(uid));
        }
        acc.used_mb -= mb;
        self.used_mb -= mb;
        Ok(())
    }

    /// Current usage for `uid` in MB.
    pub fn used_by(&self, uid: Uid) -> u32 {
        self.accounts.get(&uid).map_or(0, |a| a.used_mb)
    }

    /// The cap configured for `uid`.
    pub fn cap_of(&self, uid: Uid) -> Option<u32> {
        self.accounts.get(&uid).map(|a| a.cap_mb)
    }

    /// Host-wide usage in MB.
    pub fn used_total(&self) -> u32 {
        self.used_mb
    }

    /// Host-wide free memory in MB.
    pub fn free_total(&self) -> u32 {
        self.total_mb.saturating_sub(self.used_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_is_enforced_per_account() {
        let mut m = MemoryManager::new(2048);
        m.register(Uid(1), 256);
        m.register(Uid(2), 256);
        m.allocate(Uid(1), 200).unwrap();
        let err = m.allocate(Uid(1), 100).unwrap_err();
        assert!(matches!(
            err,
            MemError::OverCap {
                uid: Uid(1),
                cap_mb: 256,
                attempted_mb: 300
            }
        ));
        // uid 2 unaffected: isolation.
        m.allocate(Uid(2), 256).unwrap();
        assert_eq!(m.used_by(Uid(1)), 200);
        assert_eq!(m.used_by(Uid(2)), 256);
        assert_eq!(m.used_total(), 456);
    }

    #[test]
    fn host_exhaustion() {
        let mut m = MemoryManager::new(300);
        m.register(Uid(1), 256);
        m.register(Uid(2), 256);
        m.allocate(Uid(1), 256).unwrap();
        let err = m.allocate(Uid(2), 100).unwrap_err();
        assert!(matches!(
            err,
            MemError::HostExhausted {
                requested_mb: 100,
                free_mb: 44
            }
        ));
    }

    #[test]
    fn unknown_account_rejected() {
        let mut m = MemoryManager::new(100);
        assert!(matches!(
            m.allocate(Uid(9), 1),
            Err(MemError::UnknownAccount(Uid(9)))
        ));
        assert!(matches!(
            m.free(Uid(9), 1),
            Err(MemError::UnknownAccount(Uid(9)))
        ));
        assert_eq!(m.cap_of(Uid(9)), None);
    }

    #[test]
    fn free_and_underflow() {
        let mut m = MemoryManager::new(1000);
        m.register(Uid(1), 500);
        m.allocate(Uid(1), 300).unwrap();
        m.free(Uid(1), 100).unwrap();
        assert_eq!(m.used_by(Uid(1)), 200);
        assert!(matches!(
            m.free(Uid(1), 300),
            Err(MemError::Underflow(Uid(1)))
        ));
        assert_eq!(m.used_by(Uid(1)), 200);
    }

    #[test]
    fn unregister_releases_memory() {
        let mut m = MemoryManager::new(1000);
        m.register(Uid(1), 500);
        m.allocate(Uid(1), 400).unwrap();
        assert_eq!(m.free_total(), 600);
        m.unregister(Uid(1));
        assert_eq!(m.free_total(), 1000);
        assert_eq!(m.used_by(Uid(1)), 0);
    }

    #[test]
    fn reregister_updates_cap_keeps_usage() {
        let mut m = MemoryManager::new(1000);
        m.register(Uid(1), 100);
        m.allocate(Uid(1), 80).unwrap();
        m.register(Uid(1), 200); // resize up
        m.allocate(Uid(1), 100).unwrap();
        assert_eq!(m.used_by(Uid(1)), 180);
    }

    #[test]
    fn failed_allocation_is_atomic() {
        let mut m = MemoryManager::new(1000);
        m.register(Uid(1), 100);
        let before = (m.used_by(Uid(1)), m.used_total());
        let _ = m.allocate(Uid(1), 101);
        assert_eq!((m.used_by(Uid(1)), m.used_total()), before);
    }

    #[test]
    fn error_display() {
        let e = MemError::OverCap {
            uid: Uid(3),
            cap_mb: 10,
            attempted_mb: 12,
        };
        assert!(e.to_string().contains("over memory cap"));
        assert!(MemError::Underflow(Uid(1))
            .to_string()
            .contains("freed more"));
    }
}
