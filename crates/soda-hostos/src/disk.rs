//! Disk model.
//!
//! Two experiments are disk-sensitive: VSN bootstrapping (Table 2 — the
//! 400 MB LFS image boots in 4 s on *seattle* but 16 s on *tacoma*,
//! because the desktop's IDE disk is far slower than the server's SCSI
//! array) and the `log` workload of Figure 5 (continuous disk writes).
//!
//! The model is a single-spindle disk characterised by sequential
//! bandwidth and a per-operation seek overhead, with a FIFO queue: a
//! request issued while the disk is busy starts when the disk frees up.

use soda_sim::{SimDuration, SimTime};

/// A host disk.
#[derive(Clone, Debug)]
pub struct DiskModel {
    /// Sustained sequential bandwidth, bytes/s.
    pub seq_bandwidth_bytes: f64,
    /// Average positioning (seek + rotational) overhead per operation.
    pub seek_overhead: SimDuration,
    /// Time at which the disk next becomes idle.
    busy_until: SimTime,
}

impl DiskModel {
    /// Construct from MB/s and per-op seek time.
    pub fn new(seq_mb_per_sec: f64, seek_overhead: SimDuration) -> Self {
        assert!(seq_mb_per_sec > 0.0, "disk bandwidth must be positive");
        DiskModel {
            seq_bandwidth_bytes: seq_mb_per_sec * 1e6,
            seek_overhead,
            busy_until: SimTime::ZERO,
        }
    }

    /// *seattle*'s disk: server-class SCSI (PowerEdge), ~60 MB/s
    /// sequential, 4 ms positioning.
    pub fn seattle() -> Self {
        DiskModel::new(60.0, SimDuration::from_millis(4))
    }

    /// *tacoma*'s disk: desktop IDE, ~15 MB/s sequential, 9 ms
    /// positioning.
    pub fn tacoma() -> Self {
        DiskModel::new(15.0, SimDuration::from_millis(9))
    }

    /// Pure service time for one sequential transfer of `bytes`
    /// (no queueing).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.seek_overhead + SimDuration::from_secs_f64(bytes as f64 / self.seq_bandwidth_bytes)
    }

    /// Issue a sequential operation of `bytes` at `now`; returns the
    /// completion time accounting for the FIFO queue.
    pub fn submit(&mut self, bytes: u64, now: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + self.transfer_time(bytes);
        self.busy_until = done;
        done
    }

    /// When the disk next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Utilisation helper: is the disk busy at `now`?
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until > now
    }

    /// Reset queue state (new simulation run).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_seek_plus_stream() {
        let d = DiskModel::new(100.0, SimDuration::from_millis(5));
        // 100 MB at 100 MB/s = 1 s + 5 ms seek.
        let t = d.transfer_time(100_000_000);
        assert_eq!(t.as_millis(), 1_005);
    }

    #[test]
    fn queueing_serialises_requests() {
        let mut d = DiskModel::new(100.0, SimDuration::from_millis(0));
        let t0 = SimTime::ZERO;
        let c1 = d.submit(100_000_000, t0); // 1 s
        let c2 = d.submit(100_000_000, t0); // queued behind
        assert_eq!(c1.as_millis(), 1_000);
        assert_eq!(c2.as_millis(), 2_000);
        assert!(d.is_busy(t0));
        assert!(!d.is_busy(SimTime::from_secs(3)));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut d = DiskModel::new(100.0, SimDuration::ZERO);
        d.submit(100_000_000, SimTime::ZERO); // busy until 1 s
        let c = d.submit(100_000_000, SimTime::from_secs(5));
        assert_eq!(c.as_secs_f64(), 6.0);
    }

    #[test]
    fn tacoma_slower_than_seattle() {
        let s = DiskModel::seattle();
        let t = DiskModel::tacoma();
        let bytes = 400_000_000; // the LFS image
        assert!(t.transfer_time(bytes) > s.transfer_time(bytes) * 3);
    }

    #[test]
    fn reset_clears_queue() {
        let mut d = DiskModel::seattle();
        d.submit(1_000_000_000, SimTime::ZERO);
        assert!(d.busy_until() > SimTime::ZERO);
        d.reset();
        assert_eq!(d.busy_until(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        DiskModel::new(0.0, SimDuration::ZERO);
    }
}
