//! Syscall catalog and native cost model — the "in host OS" column of
//! Table 4.
//!
//! Table 4 measures the cycles to complete a system call natively versus
//! inside a UML guest. The native cost decomposes into a fixed
//! user→kernel trap (plus return) and per-call kernel work; the UML cost
//! model built on top of this lives in `soda-vmm::intercept`, because the
//! interception machinery (a tracing thread redirecting the call) belongs
//! to the virtual-machine layer.

use crate::cpu::CpuSpec;
use soda_sim::SimDuration;

/// System calls measured by Table 4, plus the calls the web-service and
/// bootstrap models issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Syscall {
    /// `dup2` — duplicate a file descriptor.
    Dup2,
    /// `getpid` — near-trivial kernel work; a pure trap benchmark.
    Getpid,
    /// `geteuid` — credential read.
    Geteuid,
    /// `mmap` — map a page.
    Mmap,
    /// `mmap` + `munmap` pair (Table 4 rows it as one measurement).
    MmapMunmap,
    /// `gettimeofday` — clock read (UML virtualises time, making this its
    /// worst case).
    Gettimeofday,
    /// `read` from a file descriptor (per call, excluding disk time).
    Read,
    /// `write` to a file descriptor (per call, excluding disk time).
    Write,
    /// `open` a path.
    Open,
    /// `close` a descriptor.
    Close,
    /// `fork` a process (used by service startup).
    Fork,
    /// `execve` (used by service startup).
    Execve,
    /// `socket`/`accept`-class network call (per request handling).
    SocketOp,
}

impl Syscall {
    /// The six calls Table 4 reports, in the paper's row order.
    pub const TABLE4: [Syscall; 6] = [
        Syscall::Dup2,
        Syscall::Getpid,
        Syscall::Geteuid,
        Syscall::Mmap,
        Syscall::MmapMunmap,
        Syscall::Gettimeofday,
    ];

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Syscall::Dup2 => "dup2",
            Syscall::Getpid => "getpid",
            Syscall::Geteuid => "geteuid",
            Syscall::Mmap => "mmap",
            Syscall::MmapMunmap => "mmap_munmap",
            Syscall::Gettimeofday => "gettimeofday",
            Syscall::Read => "read",
            Syscall::Write => "write",
            Syscall::Open => "open",
            Syscall::Close => "close",
            Syscall::Fork => "fork",
            Syscall::Execve => "execve",
            Syscall::SocketOp => "socket_op",
        }
    }
}

/// Cycle-level cost model for native syscalls.
///
/// Native cost = `trap_cycles` (mode switch in and out) + per-call kernel
/// work. Defaults are calibrated so the Table 4 "in host OS" column is
/// reproduced on a 2.6 GHz Xeon: measured values there run 1064–1368
/// cycles, i.e. a ~800-cycle trap plus a few hundred cycles of work.
#[derive(Clone, Debug)]
pub struct SyscallCostModel {
    /// Fixed user↔kernel mode-switch cost (entry + exit).
    pub trap_cycles: u64,
}

impl Default for SyscallCostModel {
    fn default() -> Self {
        SyscallCostModel { trap_cycles: 800 }
    }
}

impl SyscallCostModel {
    /// The default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kernel work (cycles) for one call, excluding the trap.
    pub fn kernel_work_cycles(&self, call: Syscall) -> u64 {
        match call {
            // Calibrated against Table 4's host-OS column (2.6 GHz Xeon):
            // dup2 1208, getpid 1064, geteuid 1084, mmap 1208,
            // mmap_munmap 1200, gettimeofday 1368.
            Syscall::Dup2 => 408,
            Syscall::Getpid => 264,
            Syscall::Geteuid => 284,
            Syscall::Mmap => 408,
            Syscall::MmapMunmap => 400,
            Syscall::Gettimeofday => 568,
            // The rest are plausible relative magnitudes for the workload
            // models (not measured by the paper).
            Syscall::Read => 600,
            Syscall::Write => 650,
            Syscall::Open => 1_500,
            Syscall::Close => 350,
            Syscall::Fork => 60_000,
            Syscall::Execve => 180_000,
            Syscall::SocketOp => 2_200,
        }
    }

    /// Total native cycles for one call.
    pub fn native_cycles(&self, call: Syscall) -> u64 {
        self.trap_cycles + self.kernel_work_cycles(call)
    }

    /// Native wall time for one call on `cpu`.
    pub fn native_time(&self, call: Syscall, cpu: &CpuSpec) -> SimDuration {
        cpu.cycles_to_time(self.native_cycles(call))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_costs_match_table4_magnitudes() {
        let m = SyscallCostModel::new();
        assert_eq!(m.native_cycles(Syscall::Dup2), 1_208);
        assert_eq!(m.native_cycles(Syscall::Getpid), 1_064);
        assert_eq!(m.native_cycles(Syscall::Geteuid), 1_084);
        assert_eq!(m.native_cycles(Syscall::Mmap), 1_208);
        assert_eq!(m.native_cycles(Syscall::MmapMunmap), 1_200);
        assert_eq!(m.native_cycles(Syscall::Gettimeofday), 1_368);
    }

    #[test]
    fn getpid_is_cheapest_table4_call() {
        let m = SyscallCostModel::new();
        let getpid = m.native_cycles(Syscall::Getpid);
        for call in Syscall::TABLE4 {
            assert!(m.native_cycles(call) >= getpid, "{call:?}");
        }
    }

    #[test]
    fn native_time_scales_with_clock() {
        let m = SyscallCostModel::new();
        let fast = m.native_time(Syscall::Dup2, &CpuSpec::seattle());
        let slow = m.native_time(Syscall::Dup2, &CpuSpec::tacoma());
        assert!(slow > fast);
        // 1208 cycles at 2.6 GHz ≈ 464 ns.
        assert_eq!(fast.as_nanos(), 1_208 * 1_000 / 2_600);
    }

    #[test]
    fn table4_rows_and_labels() {
        assert_eq!(Syscall::TABLE4.len(), 6);
        assert_eq!(Syscall::TABLE4[0].label(), "dup2");
        assert_eq!(Syscall::TABLE4[5].label(), "gettimeofday");
        assert_eq!(Syscall::Fork.label(), "fork");
    }

    #[test]
    fn heavyweight_calls_cost_more() {
        let m = SyscallCostModel::new();
        assert!(m.native_cycles(Syscall::Fork) > 10 * m.native_cycles(Syscall::Open));
        assert!(m.native_cycles(Syscall::Execve) > m.native_cycles(Syscall::Fork));
    }
}
