//! Resource vectors and the per-host reservation ledger.
//!
//! The paper specifies a service's resource requirement as a tuple
//! `<n, M>`: `n` machine instances of configuration `M`, where `M` lists
//! the types and amounts of resources (Table 1: CPU 512 MHz, memory
//! 256 MB, disk 1 GB, bandwidth 10 Mbps). The SODA Daemon "contacts the
//! underlying host OS and makes resource reservations for the virtual
//! service node" — that reservation bookkeeping is [`ResourceLedger`].

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A machine configuration `M` — the unit of resource allocation
/// (Table 1 of the paper).
///
/// All four dimensions are modelled because placement (SODA Master) packs
/// on all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct ResourceVector {
    /// CPU capacity in MHz.
    pub cpu_mhz: u32,
    /// Memory in MB.
    pub mem_mb: u32,
    /// Disk space in MB (Table 1 lists GB; MB keeps integer arithmetic).
    pub disk_mb: u32,
    /// Network bandwidth in Mbps.
    pub bw_mbps: u32,
}

/// Alias matching the paper's name for the tuple `M`.
pub type MachineConfig = ResourceVector;

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        cpu_mhz: 0,
        mem_mb: 0,
        disk_mb: 0,
        bw_mbps: 0,
    };

    /// Table 1's example configuration: CPU 512 MHz, memory 256 MB,
    /// disk 1 GB, bandwidth 10 Mbps.
    pub const TABLE1_EXAMPLE: ResourceVector = ResourceVector {
        cpu_mhz: 512,
        mem_mb: 256,
        disk_mb: 1024,
        bw_mbps: 10,
    };

    /// Construct a vector.
    pub const fn new(cpu_mhz: u32, mem_mb: u32, disk_mb: u32, bw_mbps: u32) -> Self {
        ResourceVector {
            cpu_mhz,
            mem_mb,
            disk_mb,
            bw_mbps,
        }
    }

    /// True iff every dimension of `self` is at least `other` —
    /// i.e. `other` fits within `self`.
    pub fn covers(&self, other: &ResourceVector) -> bool {
        self.cpu_mhz >= other.cpu_mhz
            && self.mem_mb >= other.mem_mb
            && self.disk_mb >= other.disk_mb
            && self.bw_mbps >= other.bw_mbps
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_mhz: self.cpu_mhz.saturating_sub(other.cpu_mhz),
            mem_mb: self.mem_mb.saturating_sub(other.mem_mb),
            disk_mb: self.disk_mb.saturating_sub(other.disk_mb),
            bw_mbps: self.bw_mbps.saturating_sub(other.bw_mbps),
        }
    }

    /// Scale the CPU and bandwidth dimensions by the paper's slow-down
    /// inflation factor (footnote 2: "we set the slow-down factor to be
    /// 1.5"): the guest-OS/host-OS structure wastes cycles and packet
    /// processing, so the Master reserves `factor ×` the nominal CPU and
    /// bandwidth. Memory and disk are not inflated (UML memory is capped
    /// directly; disk blocks are not consumed by virtualisation).
    pub fn inflate_for_slowdown(&self, factor: f64) -> ResourceVector {
        let f = factor.max(1.0);
        ResourceVector {
            cpu_mhz: (self.cpu_mhz as f64 * f).ceil() as u32,
            mem_mb: self.mem_mb,
            disk_mb: self.disk_mb,
            bw_mbps: (self.bw_mbps as f64 * f).ceil() as u32,
        }
    }

    /// The largest integer `k` such that `k × other` fits in `self`
    /// (how many machine instances `M` this vector can hold).
    pub fn instances_of(&self, unit: &ResourceVector) -> u32 {
        fn ratio(avail: u32, need: u32) -> u32 {
            avail.checked_div(need).unwrap_or(u32::MAX)
        }
        ratio(self.cpu_mhz, unit.cpu_mhz)
            .min(ratio(self.mem_mb, unit.mem_mb))
            .min(ratio(self.disk_mb, unit.disk_mb))
            .min(ratio(self.bw_mbps, unit.bw_mbps))
    }

    /// A scalar "size" used by packing heuristics: the maximum utilisation
    /// fraction across dimensions relative to `capacity` (each dimension
    /// normalised so heterogeneous units compare).
    pub fn dominant_share(&self, capacity: &ResourceVector) -> f64 {
        fn frac(x: u32, cap: u32) -> f64 {
            if cap == 0 {
                if x == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                x as f64 / cap as f64
            }
        }
        frac(self.cpu_mhz, capacity.cpu_mhz)
            .max(frac(self.mem_mb, capacity.mem_mb))
            .max(frac(self.disk_mb, capacity.disk_mb))
            .max(frac(self.bw_mbps, capacity.bw_mbps))
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, o: ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_mhz: self.cpu_mhz + o.cpu_mhz,
            mem_mb: self.mem_mb + o.mem_mb,
            disk_mb: self.disk_mb + o.disk_mb,
            bw_mbps: self.bw_mbps + o.bw_mbps,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, o: ResourceVector) {
        *self = *self + o;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    fn sub(self, o: ResourceVector) -> ResourceVector {
        self.saturating_sub(&o)
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, o: ResourceVector) {
        *self = *self - o;
    }
}

impl Mul<u32> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, k: u32) -> ResourceVector {
        ResourceVector {
            cpu_mhz: self.cpu_mhz * k,
            mem_mb: self.mem_mb * k,
            disk_mb: self.disk_mb * k,
            bw_mbps: self.bw_mbps * k,
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CPU {}MHz, Mem {}MB, Disk {}MB, BW {}Mbps",
            self.cpu_mhz, self.mem_mb, self.disk_mb, self.bw_mbps
        )
    }
}

/// Reservation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceError {
    /// The request exceeds the currently available resources.
    Insufficient {
        /// What was requested.
        requested: ResourceVector,
        /// What remained available.
        available: ResourceVector,
    },
    /// An unknown reservation id was released or queried.
    UnknownReservation(u64),
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::Insufficient {
                requested,
                available,
            } => {
                write!(
                    f,
                    "insufficient resources: requested [{requested}], available [{available}]"
                )
            }
            ResourceError::UnknownReservation(id) => write!(f, "unknown reservation id {id}"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// Per-host reservation ledger: total capacity, outstanding reservations,
/// and remaining availability. This is the state a SODA Daemon reports to
/// the SODA Master and charges slices against.
#[derive(Clone, Debug)]
pub struct ResourceLedger {
    capacity: ResourceVector,
    reserved: ResourceVector,
    next_id: u64,
    live: Vec<(u64, ResourceVector)>,
}

impl ResourceLedger {
    /// A ledger for a host with the given total capacity.
    pub fn new(capacity: ResourceVector) -> Self {
        ResourceLedger {
            capacity,
            reserved: ResourceVector::ZERO,
            next_id: 1,
            live: Vec::new(),
        }
    }

    /// Total host capacity.
    pub fn capacity(&self) -> ResourceVector {
        self.capacity
    }

    /// Currently reserved resources.
    pub fn reserved(&self) -> ResourceVector {
        self.reserved
    }

    /// Currently available resources.
    pub fn available(&self) -> ResourceVector {
        self.capacity.saturating_sub(&self.reserved)
    }

    /// Number of live reservations.
    pub fn reservation_count(&self) -> usize {
        self.live.len()
    }

    /// Reserve a slice; returns a reservation id to release later.
    pub fn reserve(&mut self, slice: ResourceVector) -> Result<u64, ResourceError> {
        let avail = self.available();
        if !avail.covers(&slice) {
            return Err(ResourceError::Insufficient {
                requested: slice,
                available: avail,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.reserved += slice;
        self.live.push((id, slice));
        Ok(id)
    }

    /// Release a reservation by id.
    pub fn release(&mut self, id: u64) -> Result<ResourceVector, ResourceError> {
        match self.live.iter().position(|&(rid, _)| rid == id) {
            Some(pos) => {
                let (_, slice) = self.live.swap_remove(pos);
                self.reserved -= slice;
                Ok(slice)
            }
            None => Err(ResourceError::UnknownReservation(id)),
        }
    }

    /// Grow or shrink a live reservation in place (service resizing).
    /// Shrinking always succeeds; growing requires headroom.
    pub fn resize(&mut self, id: u64, new_slice: ResourceVector) -> Result<(), ResourceError> {
        let pos = self
            .live
            .iter()
            .position(|&(rid, _)| rid == id)
            .ok_or(ResourceError::UnknownReservation(id))?;
        let old = self.live[pos].1;
        // Headroom check: available + old must cover new.
        let avail_plus_old = self.available() + old;
        if !avail_plus_old.covers(&new_slice) {
            return Err(ResourceError::Insufficient {
                requested: new_slice,
                available: avail_plus_old,
            });
        }
        self.reserved -= old;
        self.reserved += new_slice;
        self.live[pos].1 = new_slice;
        Ok(())
    }

    /// Look up a live reservation.
    pub fn get(&self, id: u64) -> Option<ResourceVector> {
        self.live
            .iter()
            .find(|&&(rid, _)| rid == id)
            .map(|&(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m() -> ResourceVector {
        ResourceVector::TABLE1_EXAMPLE
    }

    #[test]
    fn table1_example_values() {
        let m = m();
        assert_eq!(m.cpu_mhz, 512);
        assert_eq!(m.mem_mb, 256);
        assert_eq!(m.disk_mb, 1024);
        assert_eq!(m.bw_mbps, 10);
        assert_eq!(
            m.to_string(),
            "CPU 512MHz, Mem 256MB, Disk 1024MB, BW 10Mbps"
        );
    }

    #[test]
    fn covers_is_componentwise() {
        let big = ResourceVector::new(1000, 1000, 1000, 1000);
        let small = ResourceVector::new(999, 1000, 1, 0);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        let mixed = ResourceVector::new(1001, 1, 1, 1);
        assert!(!big.covers(&mixed)); // one dimension exceeds
        assert!(big.covers(&big)); // reflexive
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVector::new(10, 20, 30, 40);
        let b = ResourceVector::new(1, 2, 3, 4);
        assert_eq!(a + b, ResourceVector::new(11, 22, 33, 44));
        assert_eq!(a - b, ResourceVector::new(9, 18, 27, 36));
        assert_eq!(b - a, ResourceVector::ZERO); // saturating
        assert_eq!(b * 3, ResourceVector::new(3, 6, 9, 12));
    }

    #[test]
    fn inflation_hits_cpu_and_bw_only() {
        let infl = m().inflate_for_slowdown(1.5);
        assert_eq!(infl.cpu_mhz, 768);
        assert_eq!(infl.bw_mbps, 15);
        assert_eq!(infl.mem_mb, 256);
        assert_eq!(infl.disk_mb, 1024);
        // Factors below 1 clamp to no inflation.
        assert_eq!(m().inflate_for_slowdown(0.5), m());
    }

    #[test]
    fn instances_of_takes_min_dimension() {
        let host = ResourceVector::new(2600, 2048, 60_000, 100);
        // CPU allows 5, mem 8, disk 58, bw 10 → 5.
        assert_eq!(host.instances_of(&m()), 5);
        // A zero-demand dimension never constrains.
        let free_disk = ResourceVector::new(512, 256, 0, 10);
        assert_eq!(host.instances_of(&free_disk), 5);
    }

    #[test]
    fn dominant_share() {
        let cap = ResourceVector::new(1000, 1000, 1000, 100);
        let use_ = ResourceVector::new(100, 500, 250, 10);
        assert!((use_.dominant_share(&cap) - 0.5).abs() < 1e-12);
        let zero_cap = ResourceVector::new(0, 1000, 1000, 100);
        assert_eq!(
            ResourceVector::new(1, 0, 0, 0).dominant_share(&zero_cap),
            f64::INFINITY
        );
        assert_eq!(ResourceVector::ZERO.dominant_share(&zero_cap), 0.0);
    }

    #[test]
    fn ledger_reserve_release_cycle() {
        let mut l = ResourceLedger::new(ResourceVector::new(2600, 2048, 60_000, 100));
        let id1 = l.reserve(m()).unwrap();
        let id2 = l.reserve(m()).unwrap();
        assert_eq!(l.reservation_count(), 2);
        assert_eq!(l.reserved(), m() * 2);
        assert_eq!(l.available(), l.capacity() - m() * 2);
        assert_eq!(l.get(id1), Some(m()));
        assert_eq!(l.release(id1).unwrap(), m());
        assert_eq!(l.reservation_count(), 1);
        assert_eq!(l.reserved(), m());
        assert!(matches!(
            l.release(id1),
            Err(ResourceError::UnknownReservation(_))
        ));
        l.release(id2).unwrap();
        assert_eq!(l.reserved(), ResourceVector::ZERO);
    }

    #[test]
    fn ledger_rejects_oversubscription() {
        let mut l = ResourceLedger::new(m() * 2);
        l.reserve(m()).unwrap();
        l.reserve(m()).unwrap();
        let err = l.reserve(m()).unwrap_err();
        match err {
            ResourceError::Insufficient {
                requested,
                available,
            } => {
                assert_eq!(requested, m());
                assert_eq!(available, ResourceVector::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ledger_resize_up_and_down() {
        let mut l = ResourceLedger::new(m() * 4);
        let id = l.reserve(m()).unwrap();
        // Grow to 3M: fits (4M total, 1M reserved).
        l.resize(id, m() * 3).unwrap();
        assert_eq!(l.get(id), Some(m() * 3));
        assert_eq!(l.available(), m());
        // Grow to 5M: fails, reservation unchanged.
        assert!(l.resize(id, m() * 5).is_err());
        assert_eq!(l.get(id), Some(m() * 3));
        // Shrink to 1M.
        l.resize(id, m()).unwrap();
        assert_eq!(l.available(), m() * 3);
        assert!(matches!(
            l.resize(999, m()),
            Err(ResourceError::UnknownReservation(999))
        ));
    }

    proptest! {
        /// reserved + available == capacity at all times, and release
        /// restores exactly what reserve took.
        #[test]
        fn prop_ledger_conservation(ops in proptest::collection::vec((1u32..8, 1u32..8, 1u32..8, 1u32..8), 1..50)) {
            let cap = ResourceVector::new(100, 100, 100, 100);
            let mut l = ResourceLedger::new(cap);
            let mut ids = Vec::new();
            for (i, &(c, me, d, b)) in ops.iter().enumerate() {
                let v = ResourceVector::new(c, me, d, b);
                if i % 3 == 2 && !ids.is_empty() {
                    let id = ids.remove(0);
                    l.release(id).unwrap();
                } else if let Ok(id) = l.reserve(v) {
                    ids.push(id);
                }
                let sum = l.reserved() + l.available();
                prop_assert_eq!(sum, cap);
                prop_assert!(cap.covers(&l.reserved()));
            }
        }
    }
}
