//! Outbound traffic shaper.
//!
//! Section 4.2: "We are implementing a traffic shaper inside the Linux
//! host OS, which enforces the outbound bandwidth share allocated to each
//! virtual service node … based on the IP addresses of outgoing packets."
//!
//! Modelled as one token bucket per shaped address: tokens refill at the
//! allocated rate up to a burst ceiling; a packet departs as soon as
//! enough tokens have accumulated. The shaper answers *when* a given
//! packet may leave, which is all the flow-level network model needs.

use std::collections::HashMap;

use soda_sim::{Event, Labels, Obs, SimDuration, SimTime};

/// Key identifying a shaped entity. The SODA implementation keys on the
/// VSN's IP address; we keep the key generic as a `u32` (an IPv4 address
/// in host byte order) to avoid a dependency on the network crate.
pub type ShaperKey = u32;

#[derive(Clone, Debug)]
struct Bucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl Bucket {
    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
        self.last_refill = now;
    }
}

/// Per-address token-bucket shaper.
///
/// ```
/// use soda_hostos::shaper::TrafficShaper;
/// use soda_sim::{SimDuration, SimTime};
/// let mut shaper = TrafficShaper::new();
/// let t0 = SimTime::ZERO;
/// // A VSN reserved 8 Mbps (1 MB/s) with a 100 ms burst allowance.
/// shaper.configure(1, 8.0, SimDuration::from_millis(100), t0);
/// // The 100 kB burst passes immediately; the next 100 kB waits 100 ms.
/// assert_eq!(shaper.admit(1, 100_000, t0), t0);
/// let dep = shaper.admit(1, 100_000, t0);
/// assert_eq!(dep.saturating_since(t0).as_millis(), 100);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TrafficShaper {
    buckets: HashMap<ShaperKey, Bucket>,
    obs: Obs,
    host_label: u64,
}

impl TrafficShaper {
    /// A shaper with no configured addresses. Unconfigured addresses are
    /// unshaped (packets depart immediately) — matching a host OS where
    /// only VSN IPs are shaped.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach an observability handle; `host_label` identifies the host
    /// in [`Event::ShaperDrop`] events and `shaper.*` metrics.
    pub fn set_obs(&mut self, obs: Obs, host_label: u64) {
        self.obs = obs;
        self.host_label = host_label;
    }

    /// Configure (or reconfigure) the allocated outbound rate for an
    /// address. `rate_mbps` is megabits/s as in the paper's `M`;
    /// the burst allowance is one `burst` window's worth of bytes.
    pub fn configure(&mut self, key: ShaperKey, rate_mbps: f64, burst: SimDuration, now: SimTime) {
        let rate_bytes = rate_mbps.max(0.0) * 1e6 / 8.0;
        let burst_bytes = (rate_bytes * burst.as_secs_f64()).max(1500.0); // at least one MTU
        let bucket = Bucket {
            rate_bytes_per_sec: rate_bytes,
            burst_bytes,
            // A fresh bucket starts full so the first burst is not delayed.
            tokens: burst_bytes,
            last_refill: now,
        };
        self.buckets.insert(key, bucket);
    }

    /// Remove shaping for an address (VSN teardown).
    pub fn remove(&mut self, key: ShaperKey) {
        self.buckets.remove(&key);
    }

    /// True if the address is shaped.
    pub fn is_shaped(&self, key: ShaperKey) -> bool {
        self.buckets.contains_key(&key)
    }

    /// Admit `bytes` of outbound traffic from `key` at time `now`;
    /// returns the earliest departure time. Unshaped addresses depart
    /// immediately. Tokens go negative to model a queue: subsequent
    /// packets are delayed behind earlier ones.
    pub fn admit(&mut self, key: ShaperKey, bytes: u64, now: SimTime) -> SimTime {
        let Some(b) = self.buckets.get_mut(&key) else {
            return now;
        };
        b.refill(now);
        b.tokens -= bytes as f64;
        if b.tokens >= 0.0 {
            now
        } else if b.rate_bytes_per_sec <= 0.0 {
            // Zero rate: traffic never departs within any horizon we
            // simulate. Report a far-future time instead of dividing by 0.
            self.obs.record(
                now,
                Event::ShaperDrop {
                    host: self.host_label,
                    ip: key,
                },
            );
            self.obs.counter_add(
                "shaper",
                "drops",
                Labels::two("host", self.host_label, "ip", u64::from(key)),
                1,
            );
            SimTime::MAX
        } else {
            let wait = -b.tokens / b.rate_bytes_per_sec;
            now + SimDuration::from_secs_f64(wait)
        }
    }

    /// The sustainable rate configured for `key`, bytes/s.
    pub fn rate_bytes_per_sec(&self, key: ShaperKey) -> Option<f64> {
        self.buckets.get(&key).map(|b| b.rate_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS100: SimDuration = SimDuration::from_millis(100);

    #[test]
    fn unshaped_departs_immediately() {
        let mut s = TrafficShaper::new();
        let now = SimTime::from_secs(1);
        assert_eq!(s.admit(1, 1_000_000, now), now);
        assert!(!s.is_shaped(1));
    }

    #[test]
    fn burst_passes_then_rate_limits() {
        let mut s = TrafficShaper::new();
        let t0 = SimTime::ZERO;
        // 8 Mbps → 1 MB/s, burst window 100 ms → 100 kB of tokens.
        s.configure(7, 8.0, MS100, t0);
        assert_eq!(s.rate_bytes_per_sec(7), Some(1e6));
        // First 100 kB goes immediately.
        assert_eq!(s.admit(7, 100_000, t0), t0);
        // The next 100 kB must wait ~100 ms.
        let dep = s.admit(7, 100_000, t0);
        let wait = dep.saturating_since(t0);
        assert!((wait.as_secs_f64() - 0.1).abs() < 1e-6, "wait {wait}");
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut s = TrafficShaper::new();
        let t0 = SimTime::ZERO;
        s.configure(1, 10.0, MS100, t0); // 10 Mbps = 1.25 MB/s
                                         // Send 5 MB in one go at t0 after the burst: total time ≈ 4 s.
        s.admit(1, 125_000, t0); // drain the burst
        let dep = s.admit(1, 5_000_000, t0);
        let secs = dep.saturating_since(t0).as_secs_f64();
        assert!((secs - 4.0).abs() < 0.01, "took {secs}s");
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut s = TrafficShaper::new();
        let t0 = SimTime::ZERO;
        s.configure(1, 8.0, MS100, t0); // 1 MB/s, 100 kB burst
        s.admit(1, 100_000, t0); // empty the bucket
                                 // After 50 ms, 50 kB of tokens are back.
        let t1 = t0 + SimDuration::from_millis(50);
        let dep = s.admit(1, 50_000, t1);
        assert_eq!(dep, t1);
        // But 1 byte more waits.
        let dep2 = s.admit(1, 1_000, t1);
        assert!(dep2 > t1);
    }

    #[test]
    fn buckets_are_independent_per_address() {
        let mut s = TrafficShaper::new();
        let t0 = SimTime::ZERO;
        s.configure(1, 8.0, MS100, t0);
        s.configure(2, 8.0, MS100, t0);
        s.admit(1, 10_000_000, t0); // saturate address 1
                                    // Address 2 is unaffected — bandwidth isolation between VSNs.
        assert_eq!(s.admit(2, 50_000, t0), t0);
    }

    #[test]
    fn zero_rate_never_departs() {
        let mut s = TrafficShaper::new();
        let t0 = SimTime::ZERO;
        s.configure(1, 0.0, MS100, t0);
        // Burst floor (one MTU) lets a tiny packet out...
        assert_eq!(s.admit(1, 100, t0), t0);
        // ...but anything beyond the floor waits forever.
        assert_eq!(s.admit(1, 10_000, t0), SimTime::MAX);
    }

    #[test]
    fn zero_rate_drop_is_observable() {
        let mut s = TrafficShaper::new();
        let obs = Obs::enabled(16);
        s.set_obs(obs.clone(), 7);
        let t0 = SimTime::ZERO;
        s.configure(42, 0.0, MS100, t0);
        assert_eq!(s.admit(42, 10_000, t0), SimTime::MAX);
        let drained = obs.drain_events().unwrap();
        assert_eq!(drained.events.len(), 1);
        assert_eq!(
            drained.events[0].event,
            Event::ShaperDrop { host: 7, ip: 42 }
        );
        let counted = obs.with(|i| {
            i.registry
                .counter("shaper", "drops", Labels::two("host", 7, "ip", 42))
        });
        assert_eq!(counted, Some(Some(1)));
    }

    #[test]
    fn remove_unshapes() {
        let mut s = TrafficShaper::new();
        let t0 = SimTime::ZERO;
        s.configure(1, 1.0, MS100, t0);
        assert!(s.is_shaped(1));
        s.remove(1);
        assert!(!s.is_shaped(1));
        assert_eq!(s.admit(1, 10_000_000, t0), t0);
    }

    #[test]
    fn reconfigure_resets_rate() {
        let mut s = TrafficShaper::new();
        let t0 = SimTime::ZERO;
        s.configure(1, 1.0, MS100, t0);
        s.configure(1, 100.0, MS100, t0);
        assert_eq!(s.rate_bytes_per_sec(1), Some(100.0 * 1e6 / 8.0));
    }
}
