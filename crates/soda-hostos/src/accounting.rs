//! Per-uid CPU usage accounting.
//!
//! The scheduler decides who runs; this ledger remembers who *ran*. Two
//! consumers: the Figure 5 experiment (shares over time are just this
//! ledger windowed) and the usage-based billing extension — the Agent
//! can bill actual consumption instead of reservations, which is the
//! natural refinement of the paper's utility vision.

use std::collections::HashMap;

use soda_sim::{SimDuration, SimTime};

use crate::process::Uid;
use crate::sched::ProcDesc;

/// Accumulates CPU time per uid from scheduler tick grants.
#[derive(Clone, Debug, Default)]
pub struct CpuAccounting {
    used: HashMap<Uid, f64>,
    total_capacity_secs: f64,
    last_tick_at: Option<SimTime>,
}

impl CpuAccounting {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one scheduler tick: `grants[i]` of `tick` went to
    /// `procs[i]`. The slices must be parallel (as returned by
    /// [`crate::sched::CpuScheduler::allocate`]).
    pub fn record_tick(
        &mut self,
        now: SimTime,
        tick: SimDuration,
        procs: &[ProcDesc],
        grants: &[f64],
    ) {
        debug_assert_eq!(procs.len(), grants.len());
        let tick_secs = tick.as_secs_f64();
        for (p, &g) in procs.iter().zip(grants) {
            *self.used.entry(p.uid).or_insert(0.0) += g * tick_secs;
        }
        self.total_capacity_secs += tick_secs;
        self.last_tick_at = Some(now);
    }

    /// CPU-seconds consumed by a uid so far.
    pub fn used_secs(&self, uid: Uid) -> f64 {
        self.used.get(&uid).copied().unwrap_or(0.0)
    }

    /// Total CPU-seconds of capacity that have elapsed.
    pub fn capacity_secs(&self) -> f64 {
        self.total_capacity_secs
    }

    /// A uid's share of all elapsed capacity, in `[0, 1]`.
    pub fn share_of(&self, uid: Uid) -> f64 {
        if self.total_capacity_secs == 0.0 {
            0.0
        } else {
            self.used_secs(uid) / self.total_capacity_secs
        }
    }

    /// Host CPU utilisation so far, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_capacity_secs == 0.0 {
            0.0
        } else {
            self.used.values().sum::<f64>() / self.total_capacity_secs
        }
    }

    /// When the last tick was recorded.
    pub fn last_tick_at(&self) -> Option<SimTime> {
        self.last_tick_at
    }

    /// Forget a uid (VSN teardown). Returns its accumulated seconds.
    pub fn remove(&mut self, uid: Uid) -> f64 {
        self.used.remove(&uid).unwrap_or(0.0)
    }

    /// Usage-based bill for a uid at `rate_per_cpu_hour`.
    pub fn bill(&self, uid: Uid, rate_per_cpu_hour: f64) -> f64 {
        self.used_secs(uid) / 3600.0 * rate_per_cpu_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Pid;
    use crate::sched::{CpuScheduler, ProportionalShareScheduler};

    fn p(pid: u32, uid: u32, demand: f64) -> ProcDesc {
        ProcDesc {
            pid: Pid(pid),
            uid: Uid(uid),
            demand,
        }
    }

    const TICK: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn accumulates_grants() {
        let mut acc = CpuAccounting::new();
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0)];
        let grants = vec![0.75, 0.25];
        for i in 0..100u64 {
            acc.record_tick(SimTime::from_millis(10 * i), TICK, &procs, &grants);
        }
        // 1 second of capacity elapsed; uid1 used 0.75 s of it.
        assert!((acc.capacity_secs() - 1.0).abs() < 1e-9);
        assert!((acc.used_secs(Uid(1)) - 0.75).abs() < 1e-9);
        assert!((acc.share_of(Uid(1)) - 0.75).abs() < 1e-9);
        assert!((acc.share_of(Uid(2)) - 0.25).abs() < 1e-9);
        assert!((acc.utilization() - 1.0).abs() < 1e-9);
        assert_eq!(acc.last_tick_at(), Some(SimTime::from_millis(990)));
    }

    #[test]
    fn empty_ledger() {
        let acc = CpuAccounting::new();
        assert_eq!(acc.used_secs(Uid(1)), 0.0);
        assert_eq!(acc.share_of(Uid(1)), 0.0);
        assert_eq!(acc.utilization(), 0.0);
        assert_eq!(acc.last_tick_at(), None);
    }

    #[test]
    fn integrates_with_a_real_scheduler() {
        let mut sched = ProportionalShareScheduler::new(1);
        sched.set_share(Uid(1), 300);
        sched.set_share(Uid(2), 100);
        let mut acc = CpuAccounting::new();
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0)];
        for i in 0..1000u64 {
            let grants = sched.allocate(&procs);
            acc.record_tick(SimTime::from_millis(10 * i), TICK, &procs, &grants);
        }
        assert!((acc.share_of(Uid(1)) - 0.75).abs() < 1e-9);
        assert!((acc.share_of(Uid(2)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn usage_based_billing() {
        let mut acc = CpuAccounting::new();
        let procs = vec![p(1, 1, 1.0)];
        // 7200 ticks of 10 ms at half demand = 36 CPU-seconds.
        for i in 0..7200u64 {
            acc.record_tick(SimTime::from_millis(10 * i), TICK, &procs, &[0.5]);
        }
        let bill = acc.bill(Uid(1), 100.0); // 100 units per CPU-hour
        assert!((bill - 1.0).abs() < 1e-9, "{bill}");
        assert_eq!(acc.bill(Uid(9), 100.0), 0.0);
    }

    #[test]
    fn remove_returns_and_clears() {
        let mut acc = CpuAccounting::new();
        acc.record_tick(SimTime::ZERO, TICK, &[p(1, 1, 1.0)], &[1.0]);
        let secs = acc.remove(Uid(1));
        assert!((secs - 0.01).abs() < 1e-12);
        assert_eq!(acc.used_secs(Uid(1)), 0.0);
        assert_eq!(acc.remove(Uid(1)), 0.0);
    }

    #[test]
    fn idle_capacity_lowers_utilization() {
        let mut acc = CpuAccounting::new();
        let procs = vec![p(1, 1, 0.2)];
        for i in 0..100u64 {
            acc.record_tick(SimTime::from_millis(10 * i), TICK, &procs, &[0.2]);
        }
        assert!((acc.utilization() - 0.2).abs() < 1e-9);
    }
}
