//! CPU schedulers — the heart of Figure 5.
//!
//! The experiment: three virtual service nodes (*web*, *comp*, *log*) on
//! one host, each entitled to an equal CPU share, all demanding more than
//! their share. Under **unmodified Linux** the observed shares are skewed,
//! because Linux's time-share scheduler is fair *per process* — a node
//! running more runnable processes harvests more CPU, and interactivity
//! boosts add noise. SODA's enhancement is a **coarse-grain proportional
//! share scheduler keyed by userid**: first divide the tick among uids in
//! proportion to their configured shares, then divide each uid's grant
//! among its own processes.
//!
//! Both schedulers are driven in fixed ticks. For each tick the caller
//! passes the runnable process set with per-process *demand* (the fraction
//! of the tick the process would consume if unconstrained, in `[0, 1]`);
//! the scheduler returns the granted fraction per process. Both schedulers
//! are work-conserving: CPU a process cannot use is redistributed.

use std::collections::HashMap;

use soda_sim::{Event, Labels, Obs, SimTime};

use crate::process::{Pid, Uid};

/// A runnable process presented to the scheduler for one tick.
#[derive(Clone, Copy, Debug)]
pub struct ProcDesc {
    /// Process id.
    pub pid: Pid,
    /// Owning user/service id.
    pub uid: Uid,
    /// Fraction of the tick the process would consume if unconstrained,
    /// clamped to `[0, 1]` on use. A disk-bound logger that sleeps 30% of
    /// the time has demand 0.7; a spinner has demand 1.0.
    pub demand: f64,
}

/// Record one tick's scheduler allocation into the observability layer:
/// a [`Event::SchedulerShareSample`] per uid plus a `sched.uid_share`
/// gauge labeled `{host, uid}`. Schedulers have no clock of their own,
/// so the experiment driver calls this with the tick's grants (the
/// Figure 5 harness samples every tick). Branch-only no-op when `obs`
/// is disabled.
pub fn record_share_samples(
    obs: &Obs,
    now: SimTime,
    host: u64,
    procs: &[ProcDesc],
    grants: &[f64],
) {
    if !obs.is_enabled() {
        return;
    }
    // Aggregate per uid in first-seen order (matches scheduler grouping).
    let mut uid_order: Vec<Uid> = Vec::new();
    let mut shares: HashMap<Uid, f64> = HashMap::new();
    for (p, &g) in procs.iter().zip(grants.iter()) {
        if !shares.contains_key(&p.uid) {
            uid_order.push(p.uid);
        }
        *shares.entry(p.uid).or_insert(0.0) += g;
    }
    for uid in uid_order {
        let share = shares[&uid];
        obs.record(
            now,
            Event::SchedulerShareSample {
                host,
                uid: uid.0,
                share,
            },
        );
        obs.gauge_set(
            "sched",
            "uid_share",
            Labels::two("host", host, "uid", u64::from(uid.0)),
            share,
        );
    }
}

/// A tick-driven CPU scheduler.
pub trait CpuScheduler {
    /// Distribute one tick of a single CPU among `procs`. Returns the
    /// granted fraction of the tick per process, in input order. The
    /// grants satisfy `0 <= grant[i] <= demand[i]` and `Σ grant <= 1`,
    /// with equality when `Σ demand >= 1` (work conservation).
    fn allocate(&mut self, procs: &[ProcDesc]) -> Vec<f64>;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Weighted max-min fair allocation ("water-filling"): distribute
/// `capacity` among items in proportion to `weights`, capping each item at
/// its `demand` and redistributing the surplus. Runs in O(n²) worst case,
/// which is irrelevant at per-host process counts.
///
/// Exposed for testing and reuse by the network fair-share model.
///
/// ```
/// use soda_hostos::sched::water_fill;
/// // Two equal-weight items; the first only wants 10% of the CPU, so
/// // the second soaks the surplus.
/// let alloc = water_fill(1.0, &[1.0, 1.0], &[0.1, 1.0]);
/// assert!((alloc[0] - 0.1).abs() < 1e-12);
/// assert!((alloc[1] - 0.9).abs() < 1e-12);
/// ```
pub fn water_fill(capacity: f64, weights: &[f64], demands: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), demands.len());
    let n = weights.len();
    let mut alloc = vec![0.0f64; n];
    if n == 0 || capacity <= 0.0 {
        return alloc;
    }
    let demands: Vec<f64> = demands.iter().map(|d| d.clamp(0.0, f64::MAX)).collect();
    let mut saturated = vec![false; n];
    let mut remaining = capacity;
    loop {
        let active_weight: f64 = (0..n)
            .filter(|&i| !saturated[i] && weights[i] > 0.0)
            .map(|i| weights[i])
            .sum();
        if active_weight <= 0.0 || remaining <= 1e-15 {
            break;
        }
        let mut newly_saturated = false;
        // Tentative proportional grant for this round.
        let per_weight = remaining / active_weight;
        let mut granted_this_round = 0.0;
        for i in 0..n {
            if saturated[i] || weights[i] <= 0.0 {
                continue;
            }
            let want = demands[i] - alloc[i];
            let offer = per_weight * weights[i];
            if want <= offer {
                alloc[i] += want;
                granted_this_round += want;
                saturated[i] = true;
                newly_saturated = true;
            }
        }
        if newly_saturated {
            remaining -= granted_this_round;
            continue;
        }
        // No one saturates: hand out the full proportional grant and stop.
        for i in 0..n {
            if saturated[i] || weights[i] <= 0.0 {
                continue;
            }
            alloc[i] += per_weight * weights[i];
        }
        break;
    }
    alloc
}

/// Stock Linux 2.4-style time-share scheduler: fair **per process**, with
/// an interactivity bonus for processes that recently slept (low observed
/// usage). This is the Figure 5(a) baseline — it does not know about
/// uids, so a service with more runnable processes receives more CPU.
#[derive(Debug, Default)]
pub struct TimeShareScheduler {
    /// EWMA of each process's recent CPU usage, used for the
    /// interactivity bonus (sleepers gain priority, hogs lose it).
    usage_ewma: HashMap<Pid, f64>,
}

impl TimeShareScheduler {
    /// Base weight of a nice-0 process.
    const BASE_WEIGHT: f64 = 100.0;
    /// Maximum interactivity bonus (Linux 2.4 keeps half of the remaining
    /// counter across epochs; this models the resulting priority spread).
    const MAX_BONUS: f64 = 80.0;
    /// EWMA smoothing factor per tick.
    const ALPHA: f64 = 0.25;

    /// A fresh scheduler with no usage history.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CpuScheduler for TimeShareScheduler {
    fn allocate(&mut self, procs: &[ProcDesc]) -> Vec<f64> {
        let weights: Vec<f64> = procs
            .iter()
            .map(|p| {
                let ewma = self.usage_ewma.get(&p.pid).copied().unwrap_or(0.0);
                Self::BASE_WEIGHT + Self::MAX_BONUS * (1.0 - ewma)
            })
            .collect();
        let demands: Vec<f64> = procs.iter().map(|p| p.demand.clamp(0.0, 1.0)).collect();
        let grants = water_fill(1.0, &weights, &demands);
        for (p, &g) in procs.iter().zip(grants.iter()) {
            let e = self.usage_ewma.entry(p.pid).or_insert(0.0);
            *e = (1.0 - Self::ALPHA) * *e + Self::ALPHA * g;
        }
        grants
    }

    fn name(&self) -> &'static str {
        "unmodified-linux-timeshare"
    }
}

/// SODA's coarse-grain proportional-share scheduler: the tick is first
/// divided among **userids** in proportion to their configured shares
/// (set by the SODA Master at service admission), then each uid's grant
/// is divided equally among that uid's runnable processes. Surplus at
/// either level is redistributed (work-conserving). This is Figure 5(b).
#[derive(Debug, Default)]
pub struct ProportionalShareScheduler {
    shares: HashMap<Uid, u32>,
    default_share: u32,
}

impl ProportionalShareScheduler {
    /// A scheduler where unknown uids get `default_share` tickets.
    pub fn new(default_share: u32) -> Self {
        ProportionalShareScheduler {
            shares: HashMap::new(),
            default_share,
        }
    }

    /// Set the share (ticket count) for a uid. The SODA Master calls this
    /// when a virtual service node is admitted, with the share derived
    /// from the node's CPU reservation.
    pub fn set_share(&mut self, uid: Uid, share: u32) {
        self.shares.insert(uid, share);
    }

    /// Remove a uid's share (VSN teardown).
    pub fn clear_share(&mut self, uid: Uid) {
        self.shares.remove(&uid);
    }

    /// The share currently assigned to `uid`.
    pub fn share(&self, uid: Uid) -> u32 {
        self.shares.get(&uid).copied().unwrap_or(self.default_share)
    }
}

impl CpuScheduler for ProportionalShareScheduler {
    fn allocate(&mut self, procs: &[ProcDesc]) -> Vec<f64> {
        if procs.is_empty() {
            return Vec::new();
        }
        // Group process indices by uid, preserving first-seen uid order
        // for determinism.
        let mut uid_order: Vec<Uid> = Vec::new();
        let mut groups: HashMap<Uid, Vec<usize>> = HashMap::new();
        for (i, p) in procs.iter().enumerate() {
            groups.entry(p.uid).or_insert_with(|| {
                uid_order.push(p.uid);
                Vec::new()
            });
            groups.get_mut(&p.uid).expect("just inserted").push(i);
        }
        // Level 1: divide the tick among uids by share, capped by the
        // uid's aggregate demand.
        let uid_weights: Vec<f64> = uid_order.iter().map(|u| self.share(*u) as f64).collect();
        let uid_demands: Vec<f64> = uid_order
            .iter()
            .map(|u| {
                groups[u]
                    .iter()
                    .map(|&i| procs[i].demand.clamp(0.0, 1.0))
                    .sum::<f64>()
                    .min(1.0)
            })
            .collect();
        let uid_grants = water_fill(1.0, &uid_weights, &uid_demands);
        // Level 2: divide each uid's grant equally among its processes.
        let mut out = vec![0.0f64; procs.len()];
        for (gi, u) in uid_order.iter().enumerate() {
            let idxs = &groups[u];
            let weights = vec![1.0; idxs.len()];
            let demands: Vec<f64> = idxs
                .iter()
                .map(|&i| procs[i].demand.clamp(0.0, 1.0))
                .collect();
            let grants = water_fill(uid_grants[gi], &weights, &demands);
            for (&i, g) in idxs.iter().zip(grants) {
                out[i] = g;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "soda-proportional-share"
    }
}

/// Lottery scheduling (Waldspurger & Weihl) at tick granularity: each
/// tick is divided into `quanta` draws; each draw hands a quantum to a
/// uid chosen with probability proportional to its tickets (among uids
/// that can still use one). Probabilistically fair where the stride-like
/// [`ProportionalShareScheduler`] is deterministically fair — provided as
/// the ablation point for Figure 5(b): same mean shares, more variance.
#[derive(Debug)]
pub struct LotteryScheduler {
    shares: HashMap<Uid, u32>,
    default_share: u32,
    rng: soda_sim::SimRng,
    /// Quanta drawn per tick (Linux 2.4's 10 ms tick with 1 ms quanta).
    pub quanta: u32,
}

impl LotteryScheduler {
    /// A lottery scheduler with its own deterministic RNG.
    pub fn new(default_share: u32, seed: u64) -> Self {
        LotteryScheduler {
            shares: HashMap::new(),
            default_share,
            rng: soda_sim::SimRng::new(seed),
            quanta: 10,
        }
    }

    /// Set a uid's ticket count.
    pub fn set_share(&mut self, uid: Uid, share: u32) {
        self.shares.insert(uid, share);
    }

    fn share(&self, uid: Uid) -> u32 {
        self.shares.get(&uid).copied().unwrap_or(self.default_share)
    }
}

impl CpuScheduler for LotteryScheduler {
    fn allocate(&mut self, procs: &[ProcDesc]) -> Vec<f64> {
        if procs.is_empty() {
            return Vec::new();
        }
        let quantum = 1.0 / self.quanta as f64;
        let mut granted = vec![0.0f64; procs.len()];
        let demands: Vec<f64> = procs.iter().map(|p| p.demand.clamp(0.0, 1.0)).collect();
        for _ in 0..self.quanta {
            // Draw a *uid* (tickets are per service, not per process),
            // then hand the quantum to that uid's least-served runnable
            // process.
            let mut uid_order: Vec<Uid> = Vec::new();
            for p in procs {
                if !uid_order.contains(&p.uid) {
                    uid_order.push(p.uid);
                }
            }
            let runnable_uid = |uid: Uid, granted: &[f64]| {
                (0..procs.len())
                    .filter(|&i| procs[i].uid == uid && granted[i] + 1e-12 < demands[i])
                    .min_by(|&a, &b| {
                        granted[a]
                            .partial_cmp(&granted[b])
                            .expect("grants are finite")
                    })
            };
            let candidates: Vec<Uid> = uid_order
                .iter()
                .copied()
                .filter(|&u| runnable_uid(u, &granted).is_some())
                .collect();
            if candidates.is_empty() {
                break;
            }
            let total_tickets: f64 = candidates.iter().map(|&u| self.share(u) as f64).sum();
            if total_tickets <= 0.0 {
                break;
            }
            let mut draw = self.rng.f64() * total_tickets;
            let mut winner_uid = candidates[candidates.len() - 1];
            for &u in &candidates {
                draw -= self.share(u) as f64;
                if draw <= 0.0 {
                    winner_uid = u;
                    break;
                }
            }
            let i = runnable_uid(winner_uid, &granted).expect("candidate has a runnable proc");
            granted[i] += quantum.min(demands[i] - granted[i]);
        }
        granted
    }

    fn name(&self) -> &'static str {
        "lottery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(pid: u32, uid: u32, demand: f64) -> ProcDesc {
        ProcDesc {
            pid: Pid(pid),
            uid: Uid(uid),
            demand,
        }
    }

    fn total(xs: &[f64]) -> f64 {
        xs.iter().sum()
    }

    // ---- water_fill ----

    #[test]
    fn water_fill_unconstrained_is_proportional() {
        let a = water_fill(1.0, &[2.0, 1.0, 1.0], &[10.0, 10.0, 10.0]);
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[1] - 0.25).abs() < 1e-12);
        assert!((a[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn water_fill_redistributes_surplus() {
        // Item 0 only wants 0.1 of its 0.5 entitlement; the rest flows to
        // the others.
        let a = water_fill(1.0, &[1.0, 1.0], &[0.1, 10.0]);
        assert!((a[0] - 0.1).abs() < 1e-12);
        assert!((a[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn water_fill_underloaded_leaves_capacity() {
        let a = water_fill(1.0, &[1.0, 1.0], &[0.2, 0.3]);
        assert!((a[0] - 0.2).abs() < 1e-12);
        assert!((a[1] - 0.3).abs() < 1e-12);
        assert!(total(&a) < 1.0);
    }

    #[test]
    fn water_fill_edge_cases() {
        assert!(water_fill(1.0, &[], &[]).is_empty());
        let a = water_fill(0.0, &[1.0], &[1.0]);
        assert_eq!(a, vec![0.0]);
        // Zero-weight items get nothing.
        let a = water_fill(1.0, &[0.0, 1.0], &[1.0, 1.0]);
        assert_eq!(a[0], 0.0);
        assert!((a[1] - 1.0).abs() < 1e-12);
        // Negative demand treated as zero.
        let a = water_fill(1.0, &[1.0, 1.0], &[-5.0, 1.0]);
        assert_eq!(a[0], 0.0);
        assert!((a[1] - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// Water-fill never exceeds demand or capacity, and is
        /// work-conserving when the system is overloaded.
        #[test]
        fn prop_water_fill_invariants(
            cap in 0.0f64..4.0,
            items in proptest::collection::vec((0.01f64..10.0, 0.0f64..2.0), 1..20)
        ) {
            let weights: Vec<f64> = items.iter().map(|x| x.0).collect();
            let demands: Vec<f64> = items.iter().map(|x| x.1).collect();
            let a = water_fill(cap, &weights, &demands);
            let sum: f64 = a.iter().sum();
            prop_assert!(sum <= cap + 1e-9);
            for (g, d) in a.iter().zip(demands.iter()) {
                prop_assert!(*g <= d + 1e-9);
                prop_assert!(*g >= -1e-12);
            }
            let total_demand: f64 = demands.iter().sum();
            if total_demand >= cap {
                prop_assert!((sum - cap).abs() < 1e-6,
                    "not work conserving: {} vs {}", sum, cap);
            } else {
                prop_assert!((sum - total_demand).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn share_samples_aggregate_per_uid() {
        let obs = Obs::enabled(16);
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0), p(3, 2, 1.0)];
        let grants = vec![0.5, 0.25, 0.25];
        record_share_samples(&obs, SimTime::from_secs(3), 9, &procs, &grants);
        let drained = obs.drain_events().unwrap();
        assert_eq!(drained.events.len(), 2, "one sample per uid");
        assert_eq!(
            drained.events[0].event,
            Event::SchedulerShareSample {
                host: 9,
                uid: 1,
                share: 0.5
            }
        );
        let g = obs.with(|i| {
            i.registry
                .gauge("sched", "uid_share", Labels::two("host", 9, "uid", 2))
        });
        assert_eq!(g, Some(Some(0.5)));
        // Disabled handle records nothing and allocates nothing visible.
        record_share_samples(&Obs::disabled(), SimTime::ZERO, 9, &procs, &grants);
    }

    // ---- TimeShareScheduler ----

    #[test]
    fn timeshare_is_fair_per_process_not_per_uid() {
        // comp runs 3 spinners under uid 2; web runs 1 process under uid 1.
        // Stock Linux gives comp ~3/4 — the Figure 5(a) pathology.
        let mut s = TimeShareScheduler::new();
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0), p(3, 2, 1.0), p(4, 2, 1.0)];
        // Warm up the EWMA so bonuses settle.
        let mut grants = Vec::new();
        for _ in 0..50 {
            grants = s.allocate(&procs);
        }
        let web: f64 = grants[0];
        let comp: f64 = grants[1] + grants[2] + grants[3];
        assert!((total(&grants) - 1.0).abs() < 1e-9, "work conserving");
        assert!(
            comp > 2.5 * web,
            "comp {comp} vs web {web}: per-process fairness"
        );
    }

    #[test]
    fn timeshare_sleepers_gain_priority() {
        let mut s = TimeShareScheduler::new();
        // Process 2 sleeps a lot (demand 0.2): its EWMA stays low, so when
        // it does run it out-prioritises the hog — but it can never use
        // more than its demand.
        for _ in 0..50 {
            s.allocate(&[p(1, 1, 1.0), p(2, 2, 0.2)]);
        }
        let g = s.allocate(&[p(1, 1, 1.0), p(2, 2, 0.2)]);
        assert!((g[1] - 0.2).abs() < 1e-9, "sleeper gets all it asks");
        assert!((g[0] - 0.8).abs() < 1e-9, "hog gets the rest");
    }

    #[test]
    fn timeshare_empty() {
        let mut s = TimeShareScheduler::new();
        assert!(s.allocate(&[]).is_empty());
        assert_eq!(s.name(), "unmodified-linux-timeshare");
    }

    // ---- ProportionalShareScheduler ----

    #[test]
    fn propshare_enforces_uid_shares_despite_process_counts() {
        // Same pathological workload as above: equal shares must yield
        // equal halves even though uid 2 runs three processes —
        // Figure 5(b)'s fix.
        let mut s = ProportionalShareScheduler::new(1);
        s.set_share(Uid(1), 100);
        s.set_share(Uid(2), 100);
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0), p(3, 2, 1.0), p(4, 2, 1.0)];
        let g = s.allocate(&procs);
        let web = g[0];
        let comp = g[1] + g[2] + g[3];
        assert!((web - 0.5).abs() < 1e-9, "web {web}");
        assert!((comp - 0.5).abs() < 1e-9, "comp {comp}");
        // Within uid 2, the grant splits equally.
        assert!((g[1] - g[2]).abs() < 1e-12 && (g[2] - g[3]).abs() < 1e-12);
    }

    #[test]
    fn propshare_weighted_shares() {
        // seattle's web node has twice tacoma's capacity (2:1 weighting in
        // the paper's Figure 2 setup).
        let mut s = ProportionalShareScheduler::new(1);
        s.set_share(Uid(1), 200);
        s.set_share(Uid(2), 100);
        let g = s.allocate(&[p(1, 1, 1.0), p(2, 2, 1.0)]);
        assert!((g[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((g[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn propshare_redistributes_idle_uid_surplus() {
        let mut s = ProportionalShareScheduler::new(1);
        s.set_share(Uid(1), 100);
        s.set_share(Uid(2), 100);
        // uid 1 only demands 0.2 in total; uid 2 soaks the surplus.
        let g = s.allocate(&[p(1, 1, 0.2), p(2, 2, 1.0)]);
        assert!((g[0] - 0.2).abs() < 1e-9);
        assert!((g[1] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn propshare_unknown_uid_gets_default() {
        let mut s = ProportionalShareScheduler::new(50);
        s.set_share(Uid(1), 100);
        assert_eq!(s.share(Uid(1)), 100);
        assert_eq!(s.share(Uid(9)), 50);
        s.clear_share(Uid(1));
        assert_eq!(s.share(Uid(1)), 50);
        let g = s.allocate(&[p(1, 1, 1.0), p(2, 9, 1.0)]);
        assert!((g[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn propshare_empty() {
        let mut s = ProportionalShareScheduler::new(1);
        assert!(s.allocate(&[]).is_empty());
        assert_eq!(s.name(), "soda-proportional-share");
    }

    #[test]
    fn propshare_three_equal_uids_hold_thirds_under_overload() {
        // The exact Figure 5 scenario: web, comp, log each share 1/3 and
        // all demand more than 1/3.
        let mut s = ProportionalShareScheduler::new(1);
        for u in 1..=3 {
            s.set_share(Uid(u), 100);
        }
        let procs = vec![
            p(1, 1, 0.9), // web: serving requests
            p(2, 2, 1.0),
            p(3, 2, 1.0), // comp: two spinners
            p(4, 3, 0.7), // log: disk-bound
        ];
        let g = s.allocate(&procs);
        let web = g[0];
        let comp = g[1] + g[2];
        let log = g[3];
        assert!((web - 1.0 / 3.0).abs() < 1e-9, "web {web}");
        assert!((comp - 1.0 / 3.0).abs() < 1e-9, "comp {comp}");
        assert!((log - 1.0 / 3.0).abs() < 1e-9, "log {log}");
    }

    // ---- LotteryScheduler ----

    #[test]
    fn lottery_converges_to_ticket_ratios() {
        let mut s = LotteryScheduler::new(100, 7);
        s.set_share(Uid(1), 200);
        s.set_share(Uid(2), 100);
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0)];
        let mut totals = [0.0f64; 2];
        let ticks = 3000;
        for _ in 0..ticks {
            let g = s.allocate(&procs);
            totals[0] += g[0];
            totals[1] += g[1];
        }
        let frac = totals[0] / (totals[0] + totals[1]);
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn lottery_is_per_uid_not_per_process() {
        // comp's three spinners must NOT triple its odds.
        let mut s = LotteryScheduler::new(100, 11);
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0), p(3, 2, 1.0), p(4, 2, 1.0)];
        let mut web = 0.0;
        let mut comp = 0.0;
        for _ in 0..3000 {
            let g = s.allocate(&procs);
            web += g[0];
            comp += g[1] + g[2] + g[3];
        }
        let frac = web / (web + comp);
        assert!((frac - 0.5).abs() < 0.02, "web frac {frac}");
    }

    #[test]
    fn lottery_respects_demands_and_capacity() {
        let mut s = LotteryScheduler::new(100, 3);
        let procs = vec![p(1, 1, 0.2), p(2, 2, 1.0)];
        for _ in 0..100 {
            let g = s.allocate(&procs);
            assert!(g[0] <= 0.2 + 1e-9);
            let total: f64 = g.iter().sum();
            assert!(total <= 1.0 + 1e-9);
            // Overloaded system: work conserving within quantum rounding.
            assert!(total >= 1.0 - 1e-9, "total {total}");
        }
        assert!(s.allocate(&[]).is_empty());
        assert_eq!(s.name(), "lottery");
    }

    #[test]
    fn lottery_noisier_than_stride_same_mean() {
        // The ablation claim: same mean share as the deterministic
        // proportional scheduler, higher per-tick variance.
        let procs = vec![p(1, 1, 1.0), p(2, 2, 1.0)];
        let mut lot = LotteryScheduler::new(100, 5);
        let mut stride = ProportionalShareScheduler::new(100);
        let mut lot_shares = Vec::new();
        let mut stride_shares = Vec::new();
        for _ in 0..2000 {
            lot_shares.push(lot.allocate(&procs)[0]);
            stride_shares.push(stride.allocate(&procs)[0]);
        }
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(&lot_shares) > var(&stride_shares) + 1e-6);
        let lm = lot_shares.iter().sum::<f64>() / lot_shares.len() as f64;
        assert!((lm - 0.5).abs() < 0.02, "lottery mean {lm}");
    }

    proptest! {
        /// Both schedulers respect demand caps and capacity, and are
        /// work-conserving under overload.
        #[test]
        fn prop_scheduler_invariants(
            procs in proptest::collection::vec((1u32..5, 0.0f64..1.0), 1..12),
            seed in 0u32..2
        ) {
            let descs: Vec<ProcDesc> = procs
                .iter()
                .enumerate()
                .map(|(i, &(uid, d))| p(i as u32 + 1, uid, d))
                .collect();
            let grants = if seed == 0 {
                TimeShareScheduler::new().allocate(&descs)
            } else {
                let mut s = ProportionalShareScheduler::new(1);
                s.allocate(&descs)
            };
            let sum: f64 = grants.iter().sum();
            prop_assert!(sum <= 1.0 + 1e-9);
            let demand_sum: f64 = descs.iter().map(|d| d.demand).sum();
            if demand_sum >= 1.0 {
                prop_assert!((sum - 1.0).abs() < 1e-6, "work conservation");
            }
            for (g, d) in grants.iter().zip(descs.iter()) {
                prop_assert!(*g <= d.demand + 1e-9);
            }
        }
    }
}
