//! Request-trace recording and replay.
//!
//! Experiments that compare policies (the custom-policy example, the
//! placement ablation) need the *same* arrival sequence on both sides of
//! the comparison. A [`RequestTrace`] captures `(time, dataset)` pairs —
//! either synthesized or harvested from a completed run — and replays
//! them against any service on any engine.

use soda_core::service::ServiceId;
use soda_core::world::{submit_request, SodaWorld};
use soda_sim::{Engine, SimDuration, SimRng, SimTime, Zipf};

/// One traced arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Offset from the trace's origin.
    pub offset: SimDuration,
    /// Response body size requested.
    pub dataset_bytes: u64,
}

/// An ordered arrival trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestTrace {
    entries: Vec<TraceEntry>,
}

impl RequestTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an arrival; offsets must be non-decreasing.
    pub fn push(&mut self, offset: SimDuration, dataset_bytes: u64) {
        assert!(
            self.entries.last().is_none_or(|e| offset >= e.offset),
            "trace offsets must be non-decreasing"
        );
        self.entries.push(TraceEntry {
            offset,
            dataset_bytes,
        });
    }

    /// The entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total span from first to last arrival.
    pub fn span(&self) -> SimDuration {
        match (self.entries.first(), self.entries.last()) {
            (Some(a), Some(b)) => b.offset - a.offset,
            _ => SimDuration::ZERO,
        }
    }

    /// Synthesize a Poisson trace with Zipf-popular document sizes: the
    /// web-content catalog has `docs` documents, document rank `k` has
    /// size `base_bytes × k` and Zipf(s) popularity (hot documents are
    /// small and requested often).
    pub fn synth_web(
        seed: u64,
        rate_rps: f64,
        duration: SimDuration,
        docs: usize,
        zipf_s: f64,
        base_bytes: u64,
    ) -> Self {
        assert!(rate_rps > 0.0);
        let mut rng = SimRng::new(seed);
        let zipf = Zipf::new(docs, zipf_s);
        let mut out = RequestTrace::new();
        let mut t = SimDuration::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exp(1.0 / rate_rps));
            if t >= duration {
                break;
            }
            let rank = zipf.sample(&mut rng) as u64;
            out.push(t, base_bytes * rank);
        }
        out
    }

    /// Harvest a trace from a completed run's records (arrival times and
    /// dataset sizes of every completed request, relative to the first).
    pub fn from_world(world: &SodaWorld, service: ServiceId) -> Self {
        let mut records: Vec<(SimTime, u64)> = world
            .completed
            .iter()
            .filter(|r| r.service == service)
            .map(|r| (r.issued, r.dataset))
            .collect();
        records.sort();
        let mut out = RequestTrace::new();
        if let Some(&(t0, _)) = records.first() {
            for (t, bytes) in records {
                out.push(t - t0, bytes);
            }
        }
        out
    }

    /// Replay the trace against `service`, with arrivals starting at
    /// `start`.
    pub fn replay(&self, engine: &mut Engine<SodaWorld>, service: ServiceId, start: SimTime) {
        for e in &self.entries {
            let dataset = e.dataset_bytes;
            engine.schedule_at(start + e.offset, move |w: &mut SodaWorld, ctx| {
                submit_request(w, ctx, service, dataset);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::httpgen::PoissonGenerator;
    use soda_core::service::ServiceSpec;
    use soda_core::world::create_service_driven;
    use soda_hostos::resources::ResourceVector;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn web_engine(seed: u64) -> (Engine<SodaWorld>, ServiceId) {
        let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
        let spec = ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: 3,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        };
        let svc = create_service_driven(&mut engine, spec, "webco").unwrap();
        engine.run_until(SimTime::from_secs(120));
        (engine, svc)
    }

    #[test]
    fn synth_properties() {
        let t = RequestTrace::synth_web(1, 50.0, SimDuration::from_secs(20), 100, 1.0, 1000);
        // ~1000 arrivals expected.
        assert!((800..1200).contains(&t.len()), "{}", t.len());
        assert!(t.span() <= SimDuration::from_secs(20));
        // Offsets non-decreasing, sizes in catalog range.
        for w in t.entries().windows(2) {
            assert!(w[1].offset >= w[0].offset);
        }
        for e in t.entries() {
            assert!(e.dataset_bytes >= 1000 && e.dataset_bytes <= 100_000);
        }
        // Zipf: small (hot) documents dominate.
        let small = t
            .entries()
            .iter()
            .filter(|e| e.dataset_bytes <= 10_000)
            .count();
        assert!(small * 2 > t.len(), "{small}/{}", t.len());
        // Deterministic.
        let t2 = RequestTrace::synth_web(1, 50.0, SimDuration::from_secs(20), 100, 1.0, 1000);
        assert_eq!(t, t2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unordered_push_panics() {
        let mut t = RequestTrace::new();
        t.push(SimDuration::from_secs(2), 1);
        t.push(SimDuration::from_secs(1), 1);
    }

    #[test]
    fn replay_reproduces_served_counts() {
        let trace = RequestTrace::synth_web(7, 20.0, SimDuration::from_secs(10), 50, 0.8, 2000);
        let run = |seed| {
            let (mut engine, svc) = web_engine(seed);
            let t0 = engine.now();
            trace.replay(&mut engine, svc, t0);
            engine.run_until(t0 + SimDuration::from_secs(120));
            (
                engine.state().completed.len(),
                engine.state().master.switch(svc).unwrap().served_counts(),
            )
        };
        let (n1, counts1) = run(100);
        let (n2, counts2) = run(200); // different engine seed, same trace
        assert_eq!(n1, trace.len());
        assert_eq!(n1, n2, "same trace, same arrivals");
        assert_eq!(counts1, counts2, "switch decisions replay identically");
    }

    #[test]
    fn harvest_round_trip() {
        let (mut engine, svc) = web_engine(3);
        let t0 = engine.now();
        PoissonGenerator {
            service: svc,
            dataset_bytes: 10_000,
            rate_rps: 10.0,
            start: t0,
            end: t0 + SimDuration::from_secs(10),
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(60));
        let harvested = RequestTrace::from_world(engine.state(), svc);
        assert_eq!(harvested.len(), engine.state().completed.len());
        assert!(!harvested.is_empty());
        assert_eq!(harvested.entries()[0].offset, SimDuration::ZERO);
        // Replaying the harvest yields the same number of completions.
        let (mut engine2, svc2) = web_engine(3);
        let t0 = engine2.now();
        harvested.replay(&mut engine2, svc2, t0);
        engine2.run_until(t0 + SimDuration::from_secs(120));
        assert_eq!(engine2.state().completed.len(), harvested.len());
    }

    #[test]
    fn from_world_unknown_service_is_empty() {
        let (engine, _) = web_engine(4);
        let t = RequestTrace::from_world(engine.state(), ServiceId(999));
        assert!(t.is_empty());
        assert_eq!(t.span(), SimDuration::ZERO);
    }
}
