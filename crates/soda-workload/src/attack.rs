//! Attack drivers: the ghttpd exploit campaign and the DDoS flood.
//!
//! §2.1: "one known attack to ghttpd is: a malicious packet is sent as
//! an HTTP request, causing buffer overflow to bind a shell on a certain
//! port. Then the attacker can remotely log in using the port, and run a
//! remote shell!" §5 runs a honeypot that "is constantly attacked and
//! crashed" while the co-hosted web service continues unharmed.

use soda_core::service::ServiceId;
use soda_core::world::{attack_node, ddos_switch_host, revive_node, SodaWorld};
use soda_sim::{Ctx, Engine, SimDuration, SimTime};
use soda_vmm::isolation::FaultKind;
use soda_vmm::vsn::VsnId;

/// A repeating exploit campaign against one node: every `period` the
/// attacker fires the buffer-overflow, crashes the node, and SODA
/// re-primes it (the honeypot's purpose is to be attacked again).
#[derive(Clone, Copy, Debug)]
pub struct AttackCampaign {
    /// The victim service.
    pub service: ServiceId,
    /// The victim node.
    pub vsn: VsnId,
    /// Time between attack attempts.
    pub period: SimDuration,
    /// First attack.
    pub start: SimTime,
    /// No attacks at or after this.
    pub end: SimTime,
    /// Re-prime the node after each successful crash?
    pub revive: bool,
}

impl AttackCampaign {
    /// Install the campaign on the engine.
    pub fn start(self, engine: &mut Engine<SodaWorld>) {
        engine.schedule_at(self.start, move |w: &mut SodaWorld, ctx| self.fire(w, ctx));
    }

    fn fire(self, world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
        if ctx.now() >= self.end {
            return;
        }
        let blast = attack_node(
            world,
            ctx,
            self.service,
            self.vsn,
            FaultKind::RootCompromise,
        );
        if blast.service_down && self.revive {
            // SODA re-primes the honeypot so it can be attacked again.
            let _ = revive_node(world, ctx, self.service, self.vsn);
        }
        let next = ctx.now() + self.period;
        if next < self.end {
            ctx.schedule_at(next, move |w: &mut SodaWorld, ctx| self.fire(w, ctx));
        }
    }
}

/// A repeating DDoS flood against a service's switch host: every
/// `period`, `flows_per_wave` elephant flows of `bytes_each` land on
/// the victim host's NIC.
#[derive(Clone, Copy, Debug)]
pub struct DdosFlood {
    /// The service whose switch is targeted.
    pub service: ServiceId,
    /// Flows per wave.
    pub flows_per_wave: u32,
    /// Bytes per flow.
    pub bytes_each: u64,
    /// Time between waves.
    pub period: SimDuration,
    /// First wave.
    pub start: SimTime,
    /// No waves at or after this.
    pub end: SimTime,
}

impl DdosFlood {
    /// Install the flood on the engine.
    pub fn start(self, engine: &mut Engine<SodaWorld>) {
        engine.schedule_at(self.start, move |w: &mut SodaWorld, ctx| self.fire(w, ctx));
    }

    fn fire(self, world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
        if ctx.now() >= self.end {
            return;
        }
        let _ = ddos_switch_host(
            world,
            ctx,
            self.service,
            self.flows_per_wave,
            self.bytes_each,
        );
        let next = ctx.now() + self.period;
        if next < self.end {
            ctx.schedule_at(next, move |w: &mut SodaWorld, ctx| self.fire(w, ctx));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_core::service::ServiceSpec;
    use soda_core::world::create_service_driven;
    use soda_hostos::resources::ResourceVector;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn honeypot_engine() -> (Engine<SodaWorld>, ServiceId, VsnId) {
        let mut engine = Engine::with_seed(SodaWorld::testbed(), 9);
        let spec = ServiceSpec {
            name: "honeypot".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 80,
        };
        let svc = create_service_driven(&mut engine, spec, "seclab").unwrap();
        engine.run_until(SimTime::from_secs(60));
        assert_eq!(engine.state().creations.len(), 1);
        let vsn = engine.state().master.service(svc).unwrap().nodes[0].vsn;
        (engine, svc, vsn)
    }

    #[test]
    fn campaign_crashes_repeatedly_with_revival() {
        let (mut engine, svc, vsn) = honeypot_engine();
        let t0 = engine.now();
        AttackCampaign {
            service: svc,
            vsn,
            period: SimDuration::from_secs(60),
            start: t0 + SimDuration::from_secs(1),
            end: t0 + SimDuration::from_secs(301),
            revive: true,
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(600));
        let w = engine.state();
        let host = w.master.service(svc).unwrap().nodes[0].host;
        let d = w.daemons.iter().find(|d| d.host.id == host).unwrap();
        // 5 waves fired (t+1, 61, 121, 181, 241), each crashing once.
        // Bootstrap (~3–5 s) finishes well inside each 60 s period.
        assert_eq!(d.vsn(vsn).unwrap().crash_count, 5);
        assert!(
            d.vsn(vsn).unwrap().is_running(),
            "revived after last attack"
        );
    }

    #[test]
    fn campaign_without_revival_crashes_once() {
        let (mut engine, svc, vsn) = honeypot_engine();
        let t0 = engine.now();
        AttackCampaign {
            service: svc,
            vsn,
            period: SimDuration::from_secs(10),
            start: t0,
            end: t0 + SimDuration::from_secs(100),
            revive: false,
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(200));
        let w = engine.state();
        let host = w.master.service(svc).unwrap().nodes[0].host;
        let d = w.daemons.iter().find(|d| d.host.id == host).unwrap();
        // First attack crashes it; later attacks find it already down.
        assert_eq!(d.vsn(vsn).unwrap().crash_count, 1);
        assert!(!d.vsn(vsn).unwrap().is_running());
    }

    #[test]
    fn ddos_flood_loads_the_nic() {
        let (mut engine, svc, _) = honeypot_engine();
        let t0 = engine.now();
        DdosFlood {
            service: svc,
            flows_per_wave: 5,
            bytes_each: 10_000_000,
            period: SimDuration::from_secs(5),
            start: t0,
            end: t0 + SimDuration::from_secs(11),
        }
        .start(&mut engine);
        // Run a moment past the waves: flows are in flight on the NIC.
        engine.run_until(t0 + SimDuration::from_secs(6));
        let w = engine.state();
        let host = w.master.service(svc).unwrap().nodes[0].host;
        assert!(w.nics[&host].active_flows() > 0, "flood occupies the NIC");
    }
}
