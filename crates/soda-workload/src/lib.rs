//! # soda-workload
//!
//! Client workload generators for the SODA experiments.
//!
//! The paper's load generator is `siege`, an HTTP request generator run
//! from LAN machines, with the request arrival rate reduced as the
//! dataset size grows (§5). We substitute deterministic-seed open-loop
//! generators (Poisson and paced) driving the [`soda_core::world`]
//! request pipeline — the measured quantity (mean response time per
//! node at a controlled arrival rate) is the same.
//!
//! * [`datasets`] — the Figure 4/6 dataset-size sweep and its rate
//!   schedule.
//! * [`httpgen`] — open-loop Poisson and fixed-pace request generators.
//! * [`loads`] — the Figure 5 *web*/*comp*/*log* CPU demand profiles.
//! * [`attack`] — the ghttpd exploit campaign and DDoS flood drivers.

pub mod attack;
pub mod datasets;
pub mod httpgen;
pub mod loads;
pub mod trace;

pub use attack::{AttackCampaign, DdosFlood};
pub use datasets::{DatasetPoint, FIG4_SWEEP, FIG6_SWEEP};
pub use httpgen::{ClosedLoopGenerator, PacedGenerator, PoissonGenerator};
pub use loads::{Fig5Workload, LoadKind};
pub use trace::{RequestTrace, TraceEntry};
