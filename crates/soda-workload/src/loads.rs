//! The Figure 5 CPU workloads.
//!
//! §5 "Resource isolation": three virtual service nodes on *tacoma* —
//! *web* (serving requests), *comp* ("computation-intensive jobs with
//! infinite loop of dummy arithmetic operations") and *log* ("logging
//! via continuous disk writes") — each allocated an equal CPU share but
//! all demanding more. This module produces their per-tick process
//! demand vectors; the experiment feeds them to either scheduler and
//! plots the granted shares over time.

use soda_hostos::process::{Pid, Uid};
use soda_hostos::sched::ProcDesc;
use soda_sim::SimRng;

/// Which Figure 5 workload a node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadKind {
    /// Request serving: a couple of worker processes whose demand
    /// fluctuates with the request stream.
    Web,
    /// CPU hog: several spinner processes at full demand.
    Comp,
    /// Disk-bound logger: one process that blocks on writes part of
    /// each tick.
    Log,
}

impl LoadKind {
    /// Number of runnable processes this workload keeps.
    pub fn process_count(self) -> usize {
        match self {
            LoadKind::Web => 2,
            LoadKind::Comp => 3,
            LoadKind::Log => 1,
        }
    }

    /// Draw this workload's per-process demand for one tick.
    fn demand(self, rng: &mut SimRng) -> f64 {
        match self {
            // Serving load is bursty: a worker may be waiting on the
            // network for most of a tick or flat out. The bursts are
            // what make the stock scheduler's shares fluctuate
            // (Figure 5(a)'s jitter): a briefly idle worker trips the
            // per-process fair-share boundary and the surplus sloshes to
            // the hogs.
            LoadKind::Web => 0.05 + 0.55 * rng.f64(),
            // Spinners always want the whole CPU.
            LoadKind::Comp => 1.0,
            // The logger sleeps in the disk queue 20–40% of each tick.
            LoadKind::Log => 0.6 + 0.2 * rng.f64(),
        }
    }
}

/// One node's workload instance.
#[derive(Clone, Debug)]
struct NodeLoad {
    uid: Uid,
    kind: LoadKind,
    pids: Vec<Pid>,
}

/// The three-node Figure 5 workload generator.
#[derive(Clone, Debug)]
pub struct Fig5Workload {
    nodes: Vec<NodeLoad>,
    rng: SimRng,
}

impl Fig5Workload {
    /// The standard setup: *web*, *comp*, *log* under uids 1, 2, 3.
    pub fn standard(seed: u64) -> Self {
        Self::custom(
            seed,
            &[
                (Uid(1), LoadKind::Web),
                (Uid(2), LoadKind::Comp),
                (Uid(3), LoadKind::Log),
            ],
        )
    }

    /// A custom mix.
    pub fn custom(seed: u64, mix: &[(Uid, LoadKind)]) -> Self {
        let mut next_pid = 1u32;
        let nodes = mix
            .iter()
            .map(|&(uid, kind)| {
                let pids = (0..kind.process_count())
                    .map(|_| {
                        let p = Pid(next_pid);
                        next_pid += 1;
                        p
                    })
                    .collect();
                NodeLoad { uid, kind, pids }
            })
            .collect();
        Fig5Workload {
            nodes,
            rng: SimRng::new(seed),
        }
    }

    /// Uids in declaration order.
    pub fn uids(&self) -> Vec<Uid> {
        self.nodes.iter().map(|n| n.uid).collect()
    }

    /// Produce the runnable set for one scheduler tick.
    pub fn tick(&mut self) -> Vec<ProcDesc> {
        let mut out = Vec::new();
        for node in &self.nodes {
            for &pid in &node.pids {
                let demand = node.kind.demand(&mut self.rng);
                out.push(ProcDesc {
                    pid,
                    uid: node.uid,
                    demand,
                });
            }
        }
        out
    }

    /// Sum of demand per uid for one produced tick — test helper and
    /// overload check.
    pub fn demand_by_uid(descs: &[ProcDesc], uid: Uid) -> f64 {
        descs
            .iter()
            .filter(|p| p.uid == uid)
            .map(|p| p.demand)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout() {
        let mut w = Fig5Workload::standard(1);
        let descs = w.tick();
        // 2 web + 3 comp + 1 log processes.
        assert_eq!(descs.len(), 6);
        assert_eq!(w.uids(), vec![Uid(1), Uid(2), Uid(3)]);
        assert_eq!(descs.iter().filter(|p| p.uid == Uid(2)).count(), 3);
    }

    #[test]
    fn every_node_overloads_its_equal_share_on_average() {
        // The experiment premise: each node's load exceeds its 1/3
        // share. Web is bursty, so the premise holds in the mean.
        let mut w = Fig5Workload::standard(2);
        let mut sums = [0.0f64; 3];
        let ticks = 300;
        for _ in 0..ticks {
            let descs = w.tick();
            for (i, uid) in [Uid(1), Uid(2), Uid(3)].into_iter().enumerate() {
                sums[i] += Fig5Workload::demand_by_uid(&descs, uid);
            }
        }
        for (i, s) in sums.iter().enumerate() {
            let mean = s / ticks as f64;
            assert!(mean > 1.0 / 3.0, "uid {} mean demand {mean}", i + 1);
        }
    }

    #[test]
    fn demands_are_in_range_and_comp_is_saturated() {
        let mut w = Fig5Workload::standard(3);
        for _ in 0..50 {
            for p in w.tick() {
                assert!((0.0..=1.0).contains(&p.demand));
                if p.uid == Uid(2) {
                    assert_eq!(p.demand, 1.0, "spinners never sleep");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Fig5Workload::standard(7);
        let mut b = Fig5Workload::standard(7);
        for _ in 0..20 {
            let da: Vec<f64> = a.tick().iter().map(|p| p.demand).collect();
            let db: Vec<f64> = b.tick().iter().map(|p| p.demand).collect();
            assert_eq!(da, db);
        }
        let mut c = Fig5Workload::standard(8);
        let dc: Vec<f64> = c.tick().iter().map(|p| p.demand).collect();
        let da: Vec<f64> = a.tick().iter().map(|p| p.demand).collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn pids_are_unique_across_nodes() {
        let w = Fig5Workload::standard(1);
        let mut pids: Vec<Pid> = w.nodes.iter().flat_map(|n| n.pids.clone()).collect();
        let before = pids.len();
        pids.sort();
        pids.dedup();
        assert_eq!(pids.len(), before);
    }
}
