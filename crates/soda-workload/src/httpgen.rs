//! HTTP request generators (the `siege` substitute).
//!
//! Both generators drive [`soda_core::world::submit_request`] on an
//! [`Engine<SodaWorld>`]; arrivals self-schedule, so a generator started
//! once keeps firing until its configured end time.

use soda_core::service::ServiceId;
use soda_core::world::{submit_request, submit_request_with_callback, SodaWorld};
use soda_sim::{Ctx, Engine, SimDuration, SimTime};

/// Open-loop Poisson arrivals at a fixed mean rate.
#[derive(Clone, Copy, Debug)]
pub struct PoissonGenerator {
    /// Target service.
    pub service: ServiceId,
    /// Response body size per request.
    pub dataset_bytes: u64,
    /// Mean arrival rate, requests/second (> 0).
    pub rate_rps: f64,
    /// First arrival no earlier than this.
    pub start: SimTime,
    /// No arrivals at or after this.
    pub end: SimTime,
}

impl PoissonGenerator {
    /// Install the generator on the engine. Arrival times are drawn from
    /// the engine's deterministic RNG.
    pub fn start(self, engine: &mut Engine<SodaWorld>) {
        assert!(self.rate_rps > 0.0, "rate must be positive");
        let first = {
            let gap = engine.rng_mut().exp(1.0 / self.rate_rps);
            self.start + SimDuration::from_secs_f64(gap)
        };
        engine.schedule_at_as("client_arrival", first, move |w: &mut SodaWorld, ctx| {
            self.fire(w, ctx)
        });
    }

    fn fire(self, world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
        if ctx.now() >= self.end {
            return;
        }
        submit_request(world, ctx, self.service, self.dataset_bytes);
        let gap = ctx.rng().exp(1.0 / self.rate_rps);
        let next = ctx.now() + SimDuration::from_secs_f64(gap);
        if next < self.end {
            ctx.schedule_at_as("client_arrival", next, move |w: &mut SodaWorld, ctx| {
                self.fire(w, ctx)
            });
        }
    }
}

/// Deterministic fixed-interval arrivals (exactly `rate_rps` requests
/// per second) — useful when run-to-run noise must be zero.
#[derive(Clone, Copy, Debug)]
pub struct PacedGenerator {
    /// Target service.
    pub service: ServiceId,
    /// Response body size per request.
    pub dataset_bytes: u64,
    /// Arrival rate, requests/second (> 0).
    pub rate_rps: f64,
    /// First arrival.
    pub start: SimTime,
    /// No arrivals at or after this.
    pub end: SimTime,
}

impl PacedGenerator {
    /// Install the generator on the engine.
    pub fn start(self, engine: &mut Engine<SodaWorld>) {
        assert!(self.rate_rps > 0.0, "rate must be positive");
        engine.schedule_at_as(
            "client_arrival",
            self.start,
            move |w: &mut SodaWorld, ctx| self.fire(w, ctx),
        );
    }

    fn fire(self, world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
        if ctx.now() >= self.end {
            return;
        }
        submit_request(world, ctx, self.service, self.dataset_bytes);
        let next = ctx.now() + SimDuration::from_secs_f64(1.0 / self.rate_rps);
        if next < self.end {
            ctx.schedule_at_as("client_arrival", next, move |w: &mut SodaWorld, ctx| {
                self.fire(w, ctx)
            });
        }
    }
}

/// Closed-loop clients, the way `siege` actually works: `clients`
/// virtual users each keep exactly one request outstanding, waiting for
/// the response and then thinking for an exponentially distributed pause
/// before the next request. Throughput self-adjusts to the service's
/// speed — the property that distinguishes closed-loop from open-loop
/// load.
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoopGenerator {
    /// Target service.
    pub service: ServiceId,
    /// Response body size per request.
    pub dataset_bytes: u64,
    /// Number of concurrent virtual users (`siege -c`).
    pub clients: u32,
    /// Mean think time between a response and the next request.
    pub mean_think: SimDuration,
    /// First requests at this time.
    pub start: SimTime,
    /// Clients stop issuing at this time (in-flight responses drain).
    pub end: SimTime,
}

impl ClosedLoopGenerator {
    /// Install the generator: each client's first request fires at
    /// `start` plus a small deterministic stagger.
    pub fn start(self, engine: &mut Engine<SodaWorld>) {
        assert!(self.clients > 0, "need at least one client");
        for i in 0..self.clients {
            // Stagger client start-ups over one mean think time so the
            // first wave is not a synchronized burst.
            let stagger = SimDuration::from_nanos(
                self.mean_think.as_nanos().saturating_mul(i as u64) / self.clients as u64,
            );
            engine.schedule_at_as(
                "client_arrival",
                self.start + stagger,
                move |w: &mut SodaWorld, ctx| {
                    self.fire(w, ctx);
                },
            );
        }
    }

    fn fire(self, world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
        if ctx.now() >= self.end {
            return;
        }
        submit_request_with_callback(
            world,
            ctx,
            self.service,
            self.dataset_bytes,
            Some(Box::new(move |_w: &mut SodaWorld, ctx, outcome| {
                // Whether served or dropped, the client thinks and
                // retries (a dropped request costs a full think time,
                // like a user hitting reload).
                let _ = outcome;
                let think = ctx.rng().exp(self.mean_think.as_secs_f64());
                let next = ctx.now() + SimDuration::from_secs_f64(think);
                if next < self.end {
                    ctx.schedule_at_as("client_arrival", next, move |w: &mut SodaWorld, ctx| {
                        self.fire(w, ctx)
                    });
                }
            })),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_core::service::ServiceSpec;
    use soda_core::world::create_service_driven;
    use soda_hostos::resources::ResourceVector;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn web_engine() -> (Engine<SodaWorld>, ServiceId) {
        let mut engine = Engine::with_seed(SodaWorld::testbed(), 42);
        let spec = ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: 3,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        };
        let svc = create_service_driven(&mut engine, spec, "webco").unwrap();
        engine.run_until(SimTime::from_secs(120));
        assert_eq!(engine.state().creations.len(), 1);
        (engine, svc)
    }

    #[test]
    fn paced_generator_fires_exactly_rate_times_duration() {
        let (mut engine, svc) = web_engine();
        let t0 = engine.now();
        PacedGenerator {
            service: svc,
            dataset_bytes: 10_000,
            rate_rps: 10.0,
            start: t0,
            end: t0 + SimDuration::from_secs(10),
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(60));
        // 10 rps × 10 s = 100 requests, all completed.
        assert_eq!(engine.state().completed.len(), 100);
        assert_eq!(engine.state().dropped, 0);
    }

    #[test]
    fn poisson_generator_hits_mean_rate() {
        let (mut engine, svc) = web_engine();
        let t0 = engine.now();
        PoissonGenerator {
            service: svc,
            dataset_bytes: 10_000,
            rate_rps: 20.0,
            start: t0,
            end: t0 + SimDuration::from_secs(60),
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(200));
        let n = engine.state().completed.len() as f64;
        // 20 rps × 60 s = 1200 expected; Poisson σ ≈ 35.
        assert!((1050.0..1350.0).contains(&n), "completed {n}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let run = || {
            let (mut engine, svc) = web_engine();
            let t0 = engine.now();
            PoissonGenerator {
                service: svc,
                dataset_bytes: 10_000,
                rate_rps: 5.0,
                start: t0,
                end: t0 + SimDuration::from_secs(20),
            }
            .start(&mut engine);
            engine.run_until(t0 + SimDuration::from_secs(100));
            engine
                .state()
                .completed
                .iter()
                .map(|r| r.completed.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn closed_loop_keeps_bounded_outstanding() {
        let (mut engine, svc) = web_engine();
        let t0 = engine.now();
        let clients = 8;
        ClosedLoopGenerator {
            service: svc,
            dataset_bytes: 50_000,
            clients,
            mean_think: SimDuration::from_millis(200),
            start: t0,
            end: t0 + SimDuration::from_secs(30),
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(90));
        let w = engine.state();
        let n = w.completed.len();
        // Rough throughput sanity: ≤ clients / (think) requests per
        // second (response time adds on top), and well above zero.
        assert!(n > 200, "completed {n}");
        assert!(
            n as f64 <= clients as f64 * 30.0 / 0.2 * 1.2,
            "completed {n}"
        );
        // Closed loop: at no instant can more than `clients` requests be
        // outstanding, so the 2:1 split still holds approximately.
        let counts = w.master.switch(svc).unwrap().served_counts();
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!((1.6..2.4).contains(&ratio), "{counts:?}");
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let run = || {
            let (mut engine, svc) = web_engine();
            let t0 = engine.now();
            ClosedLoopGenerator {
                service: svc,
                dataset_bytes: 20_000,
                clients: 3,
                mean_think: SimDuration::from_millis(100),
                start: t0,
                end: t0 + SimDuration::from_secs(10),
            }
            .start(&mut engine);
            engine.run_until(t0 + SimDuration::from_secs(60));
            engine.state().completed.len()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn generators_respect_the_2_1_split() {
        let (mut engine, svc) = web_engine();
        let t0 = engine.now();
        PacedGenerator {
            service: svc,
            dataset_bytes: 50_000,
            rate_rps: 30.0,
            start: t0,
            end: t0 + SimDuration::from_secs(10),
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(60));
        let counts = engine.state().master.switch(svc).unwrap().served_counts();
        // 30 rps × 10 s ≈ 300 (± 1 from nanosecond truncation of the
        // 1/30 s interval).
        let total = counts.iter().sum::<u64>();
        assert!((300..=301).contains(&total), "total {total}");
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (1.95..2.05).contains(&ratio),
            "seattle serves 2×: {counts:?}"
        );
    }
}
