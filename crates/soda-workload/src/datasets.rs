//! Dataset sizes and arrival-rate schedule.
//!
//! Figure 4 measures mean response time "under six different dataset
//! sizes" and "we reduce the request arrival rate with the increase in
//! dataset size". The exact sizes are not printed in the paper; we use a
//! geometric-ish sweep from 10 kB to 1 MB, with rates chosen to keep the
//! service moderately loaded at every size (per-node utilisation well
//! below saturation, so the equal-response-time property is visible).

/// One sweep point: dataset size and the offered request rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetPoint {
    /// Response body size, bytes.
    pub dataset_bytes: u64,
    /// Offered load, requests per second (across the whole service).
    pub rate_rps: f64,
}

/// The Figure 4 sweep: six sizes, rate decreasing with size.
pub const FIG4_SWEEP: [DatasetPoint; 6] = [
    DatasetPoint {
        dataset_bytes: 10_000,
        rate_rps: 60.0,
    },
    DatasetPoint {
        dataset_bytes: 50_000,
        rate_rps: 40.0,
    },
    DatasetPoint {
        dataset_bytes: 100_000,
        rate_rps: 24.0,
    },
    DatasetPoint {
        dataset_bytes: 200_000,
        rate_rps: 12.0,
    },
    DatasetPoint {
        dataset_bytes: 500_000,
        rate_rps: 5.0,
    },
    DatasetPoint {
        dataset_bytes: 1_000_000,
        rate_rps: 2.5,
    },
];

/// The Figure 6 sweep: same sizes, lighter load ("the service load in
/// this experiment is lighter than in the previous experiments",
/// footnote 6).
pub const FIG6_SWEEP: [DatasetPoint; 6] = [
    DatasetPoint {
        dataset_bytes: 10_000,
        rate_rps: 20.0,
    },
    DatasetPoint {
        dataset_bytes: 50_000,
        rate_rps: 14.0,
    },
    DatasetPoint {
        dataset_bytes: 100_000,
        rate_rps: 8.0,
    },
    DatasetPoint {
        dataset_bytes: 200_000,
        rate_rps: 4.0,
    },
    DatasetPoint {
        dataset_bytes: 500_000,
        rate_rps: 1.6,
    },
    DatasetPoint {
        dataset_bytes: 1_000_000,
        rate_rps: 0.8,
    },
];

/// Offered bandwidth of a sweep point, bits per second — used to check
/// the schedule keeps load sane.
pub fn offered_bps(p: &DatasetPoint) -> f64 {
    p.rate_rps * p.dataset_bytes as f64 * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_points_rate_decreasing_size_increasing() {
        for sweep in [&FIG4_SWEEP, &FIG6_SWEEP] {
            assert_eq!(sweep.len(), 6);
            for w in sweep.windows(2) {
                assert!(w[1].dataset_bytes > w[0].dataset_bytes);
                assert!(
                    w[1].rate_rps < w[0].rate_rps,
                    "rate must fall as size grows"
                );
            }
        }
    }

    #[test]
    fn offered_load_stays_under_service_bandwidth() {
        // The web service has 3 M of capacity → 30 Mbps nominal. Every
        // Figure 4 point must offer less than that (the switch spreads
        // 2:1, so each node also stays under its own share).
        for p in &FIG4_SWEEP {
            assert!(
                offered_bps(p) < 30e6 * 0.9,
                "{}B @ {}rps offers {:.1} Mbps",
                p.dataset_bytes,
                p.rate_rps,
                offered_bps(p) / 1e6
            );
        }
    }

    #[test]
    fn fig6_is_lighter_than_fig4() {
        for (a, b) in FIG4_SWEEP.iter().zip(FIG6_SWEEP.iter()) {
            assert_eq!(a.dataset_bytes, b.dataset_bytes);
            assert!(b.rate_rps < a.rate_rps);
        }
    }
}
