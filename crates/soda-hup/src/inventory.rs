//! The SODA Master's resource inventory.
//!
//! "The SODA Master collects resource information from SODA Daemons
//! running in each HUP host." (§3.2) — an eventually fresh view of
//! per-host availability, with staleness tracking so a wide-area
//! federation can discount old reports.

use std::collections::BTreeMap;

use soda_hostos::resources::ResourceVector;
use soda_sim::{SimDuration, SimTime};

use crate::host::HostId;

/// One host's last report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostReport {
    /// Resources available on the host at report time.
    pub available: ResourceVector,
    /// When the report was received.
    pub reported_at: SimTime,
}

/// The Master-side inventory of HUP host availability.
#[derive(Clone, Debug, Default)]
pub struct ResourceInventory {
    reports: BTreeMap<HostId, HostReport>,
}

impl ResourceInventory {
    /// An empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a Daemon's report.
    pub fn update(&mut self, host: HostId, available: ResourceVector, now: SimTime) {
        self.reports.insert(
            host,
            HostReport {
                available,
                reported_at: now,
            },
        );
    }

    /// Remove a host (decommissioned or federated away).
    pub fn remove(&mut self, host: HostId) -> Option<HostReport> {
        self.reports.remove(&host)
    }

    /// The last report for one host.
    pub fn get(&self, host: HostId) -> Option<&HostReport> {
        self.reports.get(&host)
    }

    /// Drop every report whose host fails the predicate (e.g. hosts
    /// outside a placement cell).
    pub fn retain<F: FnMut(HostId) -> bool>(&mut self, mut keep: F) {
        self.reports.retain(|&h, _| keep(h));
    }

    /// All hosts with reports, in id order (deterministic placement).
    pub fn hosts(&self) -> impl Iterator<Item = (HostId, &HostReport)> {
        self.reports.iter().map(|(&id, r)| (id, r))
    }

    /// Number of known hosts.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Lowest reported host id, if any.
    pub fn first_host(&self) -> Option<HostId> {
        self.reports.keys().next().copied()
    }

    /// Highest reported host id, if any.
    pub fn last_host(&self) -> Option<HostId> {
        self.reports.keys().next_back().copied()
    }

    /// True iff no host has reported.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Aggregate availability across hosts no staler than `max_age`.
    pub fn total_available(&self, now: SimTime, max_age: SimDuration) -> ResourceVector {
        let mut total = ResourceVector::ZERO;
        for r in self.reports.values() {
            if now.saturating_since(r.reported_at) <= max_age {
                total += r.available;
            }
        }
        total
    }

    /// Hosts whose report can satisfy `slice`, freshest first then by id
    /// (the Master's candidate list).
    pub fn candidates(
        &self,
        slice: &ResourceVector,
        now: SimTime,
        max_age: SimDuration,
    ) -> Vec<HostId> {
        let mut out: Vec<(HostId, SimTime)> = self
            .reports
            .iter()
            .filter(|(_, r)| {
                now.saturating_since(r.reported_at) <= max_age && r.available.covers(slice)
            })
            .map(|(&id, r)| (id, r.reported_at))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.into_iter().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(cpu: u32) -> ResourceVector {
        ResourceVector::new(cpu, 512, 1024, 10)
    }

    #[test]
    fn update_and_get() {
        let mut inv = ResourceInventory::new();
        assert!(inv.is_empty());
        inv.update(HostId(1), v(1000), SimTime::from_secs(1));
        inv.update(HostId(2), v(2000), SimTime::from_secs(2));
        assert_eq!(inv.len(), 2);
        assert_eq!(inv.get(HostId(1)).unwrap().available, v(1000));
        // Updates replace.
        inv.update(HostId(1), v(500), SimTime::from_secs(3));
        assert_eq!(inv.get(HostId(1)).unwrap().available, v(500));
        assert_eq!(
            inv.get(HostId(1)).unwrap().reported_at,
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn total_respects_staleness() {
        let mut inv = ResourceInventory::new();
        inv.update(HostId(1), v(1000), SimTime::from_secs(0));
        inv.update(HostId(2), v(2000), SimTime::from_secs(90));
        let now = SimTime::from_secs(100);
        let fresh_only = inv.total_available(now, SimDuration::from_secs(30));
        assert_eq!(fresh_only.cpu_mhz, 2000);
        let all = inv.total_available(now, SimDuration::from_secs(1000));
        assert_eq!(all.cpu_mhz, 3000);
    }

    #[test]
    fn candidates_filter_and_order() {
        let mut inv = ResourceInventory::new();
        inv.update(HostId(1), v(1000), SimTime::from_secs(10));
        inv.update(HostId(2), v(300), SimTime::from_secs(20));
        inv.update(HostId(3), v(1000), SimTime::from_secs(20));
        let now = SimTime::from_secs(21);
        let c = inv.candidates(&v(500), now, SimDuration::from_secs(60));
        // Host 2 cannot fit; 3 is fresher than 1.
        assert_eq!(c, vec![HostId(3), HostId(1)]);
        // At the age boundary both still qualify (age <= max_age).
        let c2 = inv.candidates(&v(500), SimTime::from_secs(70), SimDuration::from_secs(60));
        assert_eq!(c2, vec![HostId(3), HostId(1)]);
        let c3 = inv.candidates(&v(500), SimTime::from_secs(300), SimDuration::from_secs(60));
        assert!(c3.is_empty());
    }

    #[test]
    fn remove_host() {
        let mut inv = ResourceInventory::new();
        inv.update(HostId(1), v(1000), SimTime::ZERO);
        assert!(inv.remove(HostId(1)).is_some());
        assert!(inv.remove(HostId(1)).is_none());
        assert!(inv.is_empty());
    }

    #[test]
    fn hosts_iterates_in_id_order() {
        let mut inv = ResourceInventory::new();
        inv.update(HostId(3), v(1), SimTime::ZERO);
        inv.update(HostId(1), v(2), SimTime::ZERO);
        let ids: Vec<HostId> = inv.hosts().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![HostId(1), HostId(3)]);
    }
}
