//! A HUP host.
//!
//! Bundles every host-OS mechanism a virtual service node touches: the
//! resource ledger the Daemon reserves slices in, the memory manager
//! (UML `mem=` caps), the traffic shaper, the bridging module, the IP
//! pool, the process table and the CPU scheduler. The paper's two
//! testbed machines are provided as presets.

use soda_hostos::memory::MemoryManager;
use soda_hostos::process::ProcessTable;
use soda_hostos::resources::{ResourceLedger, ResourceVector};
use soda_hostos::sched::{CpuScheduler, ProportionalShareScheduler};
use soda_hostos::shaper::TrafficShaper;
use soda_net::bridge::Bridge;
use soda_net::pool::IpPool;
use soda_vmm::bootstrap::BootstrapHostProfile;

/// Identifier of a HUP host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

/// One physical machine of the HUP.
pub struct HupHost {
    /// Host id (unique across the HUP).
    pub id: HostId,
    /// Code name, e.g. `"seattle"`.
    pub name: String,
    /// Hardware profile used by the bootstrap and syscall models.
    pub profile: BootstrapHostProfile,
    /// Reservation ledger over the host's allocatable capacity.
    pub ledger: ResourceLedger,
    /// Host memory manager (per-VSN caps).
    pub mem: MemoryManager,
    /// Outbound traffic shaper (per-VSN IP).
    pub shaper: TrafficShaper,
    /// Bridging module (UML↔IP map).
    pub bridge: Bridge,
    /// The Daemon's pool of assignable addresses.
    pub ip_pool: IpPool,
    /// Host-wide process table.
    pub processes: ProcessTable,
    /// The CPU scheduler in force. SODA installs its proportional-share
    /// scheduler; the Figure 5 baseline swaps in the stock time-share
    /// one.
    pub scheduler: Box<dyn CpuScheduler + Send>,
    /// Whole-host failure flag (power loss, kernel panic): a failed host
    /// reports no capacity and runs no processes.
    pub failed: bool,
}

impl HupHost {
    /// Build a host from its parts.
    pub fn new(
        id: HostId,
        name: impl Into<String>,
        profile: BootstrapHostProfile,
        capacity: ResourceVector,
        ip_pool: IpPool,
    ) -> Self {
        let mem_total = capacity.mem_mb;
        HupHost {
            id,
            name: name.into(),
            profile,
            ledger: ResourceLedger::new(capacity),
            mem: MemoryManager::new(mem_total),
            shaper: TrafficShaper::new(),
            bridge: Bridge::new(),
            ip_pool,
            processes: ProcessTable::new(),
            scheduler: Box::new(ProportionalShareScheduler::new(100)),
            failed: false,
        }
    }

    /// *seattle*: Dell PowerEdge, 2.6 GHz Xeon, 2 GB RAM, 100 Mbps NIC.
    /// Allocatable capacity keeps ~10% of CPU and memory for the host OS
    /// and the SODA Daemon itself.
    pub fn seattle(id: HostId, ip_pool: IpPool) -> Self {
        HupHost::new(
            id,
            "seattle",
            BootstrapHostProfile::seattle(),
            ResourceVector::new(2340, 1843, 60_000, 100),
            ip_pool,
        )
    }

    /// *tacoma*: Dell desktop, 1.8 GHz Pentium 4, 768 MB RAM,
    /// 100 Mbps NIC.
    pub fn tacoma(id: HostId, ip_pool: IpPool) -> Self {
        HupHost::new(
            id,
            "tacoma",
            BootstrapHostProfile::tacoma(),
            ResourceVector::new(1620, 691, 40_000, 100),
            ip_pool,
        )
    }

    /// Resources currently available for new slices (none once failed).
    pub fn available(&self) -> ResourceVector {
        if self.failed {
            ResourceVector::ZERO
        } else {
            self.ledger.available()
        }
    }

    /// Fail the host outright: every process dies, no capacity remains
    /// until the host is repaired.
    pub fn fail(&mut self) {
        self.failed = true;
        let pids: Vec<_> = self.processes.ps_all().map(|p| p.pid).collect();
        for pid in pids {
            self.processes.kill(pid);
        }
    }

    /// Bring a failed host back (rebooted, empty): capacity is placeable
    /// again. VSNs that died with the host stay dead until torn down or
    /// re-primed by whoever owns them.
    pub fn repair(&mut self) {
        self.failed = false;
    }

    /// Total allocatable capacity.
    pub fn capacity(&self) -> ResourceVector {
        self.ledger.capacity()
    }

    /// Swap the CPU scheduler (the Figure 5 ablation).
    pub fn set_scheduler(&mut self, s: Box<dyn CpuScheduler + Send>) {
        self.scheduler = s;
    }
}

impl std::fmt::Debug for HupHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HupHost")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("capacity", &self.capacity())
            .field("available", &self.available())
            .field("scheduler", &self.scheduler.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_hostos::sched::TimeShareScheduler;

    fn pool(base: &str) -> IpPool {
        IpPool::new(base.parse().unwrap(), 8)
    }

    #[test]
    fn presets_match_testbed() {
        let s = HupHost::seattle(HostId(1), pool("128.10.9.120"));
        let t = HupHost::tacoma(HostId(2), pool("128.10.9.128"));
        assert_eq!(s.name, "seattle");
        assert_eq!(s.profile.cpu.freq_mhz, 2600);
        assert_eq!(t.profile.cpu.freq_mhz, 1800);
        assert!(s.capacity().cpu_mhz > t.capacity().cpu_mhz);
        assert!(s.capacity().mem_mb > t.capacity().mem_mb);
        // Both can hold at least one Table 1 machine instance, inflated.
        let m = ResourceVector::TABLE1_EXAMPLE.inflate_for_slowdown(1.5);
        assert!(s.available().covers(&m));
        assert!(t.available().covers(&m));
    }

    #[test]
    fn seattle_holds_twice_tacomas_instances() {
        // The Figure 2 setup gives seattle's web node twice the capacity
        // of tacoma's; the hardware must support that.
        let s = HupHost::seattle(HostId(1), pool("128.10.9.120"));
        let t = HupHost::tacoma(HostId(2), pool("128.10.9.128"));
        let m = ResourceVector::TABLE1_EXAMPLE.inflate_for_slowdown(1.5);
        assert!(s.capacity().instances_of(&m) >= 2);
        assert!(t.capacity().instances_of(&m) >= 1);
    }

    #[test]
    fn default_scheduler_is_proportional() {
        let s = HupHost::seattle(HostId(1), pool("10.0.0.0"));
        assert_eq!(s.scheduler.name(), "soda-proportional-share");
    }

    #[test]
    fn scheduler_can_be_swapped() {
        let mut s = HupHost::seattle(HostId(1), pool("10.0.0.0"));
        s.set_scheduler(Box::new(TimeShareScheduler::new()));
        assert_eq!(s.scheduler.name(), "unmodified-linux-timeshare");
    }

    #[test]
    fn debug_renders() {
        let s = HupHost::seattle(HostId(1), pool("10.0.0.0"));
        let d = format!("{s:?}");
        assert!(d.contains("seattle"));
        assert!(d.contains("soda-proportional-share"));
    }
}
