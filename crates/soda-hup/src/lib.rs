//! # soda-hup
//!
//! The Hosting Utility Platform substrate: physical HUP hosts and the
//! per-host **SODA Daemon**.
//!
//! "A SODA Daemon is running in each HUP host as a host OS process. It
//! reports resource availability to the SODA Master. And it performs
//! *service priming*, i.e. the creation of a virtual service node, at the
//! command of the SODA Master." (§3.3)
//!
//! * [`host`] — a HUP host: hardware profile, resource ledger, memory
//!   manager, traffic shaper, bridge, IP pool, process table, CPU
//!   scheduler. Presets for the paper's testbed (*seattle*, *tacoma*).
//! * [`daemon`] — the SODA Daemon: slice reservation, IP assignment,
//!   image download sizing, VSN creation/boot/crash/teardown/resize.
//! * [`inventory`] — the Master's view of per-host availability.

pub mod daemon;
pub mod host;
pub mod inventory;

pub use daemon::{daemon_for, daemon_for_mut, PrimingError, PrimingTicket, SodaDaemon};
pub use host::{HostId, HupHost};
pub use inventory::ResourceInventory;
