//! The SODA Daemon.
//!
//! §3.3: "Upon receiving the command to create a virtual service node,
//! the SODA Daemon will contact the underlying host OS and make resource
//! reservations for the virtual service node. After reserving a 'slice'
//! of the HUP host, the SODA Daemon will download the service image from
//! the location specified by the ASP, and bootstrap the virtual service
//! node (first the guest OS, then the service). … During the
//! bootstrapping, the SODA Daemon will also assign an IP address to the
//! virtual service node … and notify the bridging module … of the new
//! 'UML-IP' mapping."
//!
//! The Daemon here is synchronous-with-durations: `begin_priming`
//! performs all host-OS bookkeeping immediately and returns a
//! [`PrimingTicket`] carrying the download size and the bootstrap stage
//! timings; the simulation driver (the SODA Master's world) schedules
//! those durations on the event engine and then calls
//! `complete_priming`. "Once the service is started, the SODA Daemon
//! will *not* interfere with the interactions between the virtual
//! service node and the host OS."

use std::collections::BTreeMap;
use std::fmt;

use soda_hostos::process::Uid;
use soda_hostos::resources::{ResourceError, ResourceVector};
use soda_net::addr::Ipv4Addr;
use soda_net::bridge::PortTag;
use soda_net::pool::PoolError;
use soda_sim::{Event, Labels, Obs, SimDuration, SimTime};
use soda_vmm::bootstrap::{BootstrapModel, BootstrapTiming};
use soda_vmm::guest::GuestOs;
use soda_vmm::rootfs::RootFsImage;
use soda_vmm::sysservices::{StartupClass, SystemServiceId};
use soda_vmm::vsn::VsnState;
use soda_vmm::vsn::{VirtualServiceNode, VsnError, VsnId};

use crate::host::{HostId, HupHost};

/// Shaper burst window granted to each VSN.
const SHAPER_BURST: SimDuration = SimDuration::from_millis(100);

/// Why priming (or another daemon operation) failed.
#[derive(Debug)]
pub enum PrimingError {
    /// Slice reservation failed.
    Resources(ResourceError),
    /// No IP address available in the pool.
    Pool(PoolError),
    /// VSN state machine rejected the transition.
    Vsn(VsnError),
    /// Unknown VSN id.
    UnknownVsn(VsnId),
    /// A VSN with this id already exists on this host.
    DuplicateVsn(VsnId),
    /// The host is failed: nothing can prime or boot on it.
    HostDown(HostId),
    /// The VSN reached boot with no IP assigned (its priming was
    /// interrupted before address assignment).
    NoAddress(VsnId),
}

impl fmt::Display for PrimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimingError::Resources(e) => write!(f, "resource reservation failed: {e}"),
            PrimingError::Pool(e) => write!(f, "IP assignment failed: {e}"),
            PrimingError::Vsn(e) => write!(f, "VSN transition failed: {e}"),
            PrimingError::UnknownVsn(id) => write!(f, "unknown VSN {id}"),
            PrimingError::DuplicateVsn(id) => write!(f, "duplicate VSN {id}"),
            PrimingError::HostDown(id) => write!(f, "host {id} is down"),
            PrimingError::NoAddress(id) => write!(f, "VSN {id} has no IP address"),
        }
    }
}

impl std::error::Error for PrimingError {}

impl From<ResourceError> for PrimingError {
    fn from(e: ResourceError) -> Self {
        PrimingError::Resources(e)
    }
}

impl From<PoolError> for PrimingError {
    fn from(e: PoolError) -> Self {
        PrimingError::Pool(e)
    }
}

impl From<VsnError> for PrimingError {
    fn from(e: VsnError) -> Self {
        PrimingError::Vsn(e)
    }
}

/// What `begin_priming` hands back for the driver to schedule.
#[derive(Clone, Debug)]
pub struct PrimingTicket {
    /// The node being primed.
    pub vsn: VsnId,
    /// The node's assigned address (already bridged).
    pub ip: Ipv4Addr,
    /// Bytes to download from the ASP's image repository.
    pub download_bytes: u64,
    /// Bootstrap stage timings (applied after the download completes).
    pub timing: BootstrapTiming,
}

/// Blueprint kept per VSN so a crashed node can be re-primed.
#[derive(Clone, Debug)]
struct Blueprint {
    hostname: String,
    app_command: String,
    kept_services: std::collections::BTreeSet<SystemServiceId>,
    timing: BootstrapTiming,
}

/// The per-host SODA Daemon.
pub struct SodaDaemon {
    /// The host this daemon manages.
    pub host: HupHost,
    model: BootstrapModel,
    vsns: BTreeMap<VsnId, VirtualServiceNode>,
    blueprints: BTreeMap<VsnId, Blueprint>,
    /// Bumped by every operation that can change what
    /// [`SodaDaemon::report_resources`] reports (slice reserve, release,
    /// resize, host failure and repair). The Master's admission index
    /// compares this against its cached value to resync only the hosts
    /// that actually changed between admissions.
    resource_gen: u64,
    obs: Obs,
}

impl SodaDaemon {
    /// A daemon managing `host` with the default bootstrap calibration.
    pub fn new(host: HupHost) -> Self {
        SodaDaemon {
            host,
            model: BootstrapModel::new(),
            vsns: BTreeMap::new(),
            blueprints: BTreeMap::new(),
            resource_gen: 0,
            obs: Obs::disabled(),
        }
    }

    /// Generation counter of this host's reported availability; changes
    /// whenever `report_resources` may have changed.
    pub fn resource_gen(&self) -> u64 {
        self.resource_gen
    }

    /// Attach an observability handle. Propagates to the host's traffic
    /// shaper so its drop events carry this host's id.
    pub fn set_obs(&mut self, obs: Obs) {
        self.host
            .shaper
            .set_obs(obs.clone(), u64::from(self.host.id.0));
        self.obs = obs;
    }

    /// This host's id as an event/metric label.
    fn host_label(&self) -> u64 {
        u64::from(self.host.id.0)
    }

    /// Resource availability, as reported to the SODA Master.
    pub fn report_resources(&self) -> ResourceVector {
        self.host.available()
    }

    /// Whole-host failure: the host loses power; every VSN on it crashes
    /// at once. Returns the ids of the nodes that went down.
    pub fn fail_host(&mut self, now: SimTime) -> Vec<VsnId> {
        self.host.fail();
        self.resource_gen += 1;
        let mut downed = Vec::new();
        for vsn in self.vsns.values_mut() {
            if vsn.is_running() && vsn.crash().is_ok() {
                downed.push(vsn.id);
            }
        }
        let host = u64::from(self.host.id.0);
        self.obs.record(now, Event::HostFailure { host });
        for vsn in &downed {
            self.obs.record(now, Event::VsnCrash { vsn: vsn.0, host });
        }
        self.obs
            .counter_add("daemon", "host_failures", Labels::one("host", host), 1);
        downed
    }

    /// Repair the host after a failure (power restored, ledger intact).
    /// Routed through the daemon rather than `host.repair()` directly so
    /// the availability generation advances — a repaired host's capacity
    /// reappears to the Master's admission index.
    pub fn repair_host(&mut self) {
        self.host.repair();
        self.resource_gen += 1;
    }

    /// Is the host down?
    pub fn is_failed(&self) -> bool {
        self.host.failed
    }

    /// The daemon's periodic liveness report: `None` when the host is
    /// down (a dead daemon sends nothing), otherwise the ids of the VSNs
    /// currently Running, sorted. Whether the report actually reaches
    /// the Master is the network's business, not the daemon's.
    pub fn heartbeat(&self) -> Option<Vec<VsnId>> {
        if self.host.failed {
            return None;
        }
        Some(
            self.vsns
                .values()
                .filter(|v| v.is_running())
                .map(|v| v.id)
                .collect(),
        )
    }

    /// The re-registration handshake a warm-standby Master performs
    /// after taking over. Unlike [`SodaDaemon::heartbeat`] (running ids
    /// only), the daemon reports *every* VSN it still holds together
    /// with its lifecycle state, so the standby can adopt running
    /// nodes, leave in-flight primings to finish, and scrub crashed
    /// ones. A failed host cannot answer — `None`, exactly like a
    /// missed heartbeat.
    pub fn re_register(&self) -> Option<Vec<(VsnId, VsnState)>> {
        if self.host.failed {
            return None;
        }
        Some(
            self.vsns
                .values()
                .filter(|v| !matches!(v.state(), VsnState::TornDown))
                .map(|v| (v.id, *v.state()))
                .collect(),
        )
    }

    /// The bootstrap model in use.
    pub fn bootstrap_model(&self) -> &BootstrapModel {
        &self.model
    }

    /// Host-side uid a VSN's processes bear.
    pub fn uid_of(vsn: VsnId) -> Uid {
        Uid(1000 + vsn.0 as u32)
    }

    /// Reserve a slice, assign an IP, configure isolation mechanisms and
    /// compute the bootstrap plan for a new VSN. All bookkeeping is
    /// rolled back on failure.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_priming(
        &mut self,
        vsn_id: VsnId,
        capacity_m: u32,
        slice: ResourceVector,
        image: &RootFsImage,
        required_services: &[&str],
        app_class: StartupClass,
        service_name: &str,
        now: SimTime,
    ) -> Result<PrimingTicket, PrimingError> {
        if self.vsns.contains_key(&vsn_id) {
            return Err(PrimingError::DuplicateVsn(vsn_id));
        }
        if self.host.failed {
            return Err(PrimingError::Resources(ResourceError::Insufficient {
                requested: slice,
                available: ResourceVector::ZERO,
            }));
        }
        let reservation = self.host.ledger.reserve(slice)?;
        self.resource_gen += 1;
        let ip = match self.host.ip_pool.allocate() {
            Ok(ip) => ip,
            Err(e) => {
                let _ = self.host.ledger.release(reservation);
                return Err(e.into());
            }
        };
        // Bridge mapping: the pool guarantees uniqueness, so this cannot
        // conflict.
        self.host
            .bridge
            .map(ip, PortTag(vsn_id.0))
            .expect("pool-allocated address cannot already be bridged");
        let uid = Self::uid_of(vsn_id);
        self.host.mem.register(uid, slice.mem_mb);
        self.host
            .shaper
            .configure(ip.as_u32(), slice.bw_mbps as f64, SHAPER_BURST, now);

        let (tailored, timing) =
            self.model
                .timing(&self.host.profile, image, required_services, app_class);

        let mut vsn = VirtualServiceNode::allocated(vsn_id, uid, capacity_m, reservation);
        vsn.ip = Some(ip);
        vsn.start_priming()
            .expect("allocated -> priming is always legal");
        self.vsns.insert(vsn_id, vsn);
        self.blueprints.insert(
            vsn_id,
            Blueprint {
                hostname: service_name.to_string(),
                app_command: format!("{service_name}d"),
                kept_services: tailored.kept,
                timing,
            },
        );
        Ok(PrimingTicket {
            vsn: vsn_id,
            ip,
            download_bytes: image.total_bytes(),
            timing,
        })
    }

    /// Finish priming: boot the guest, spawn its processes, mark the
    /// node Running. Returns the node's IP (what the Daemon reports back
    /// to the Master).
    ///
    /// The Table 2 bootstrap stages are replayed into the observability
    /// layer retroactively — reconstructed backwards from `now` using the
    /// blueprint's timing — so instrumentation adds no engine events and
    /// the deterministic event order is untouched.
    pub fn complete_priming(
        &mut self,
        vsn_id: VsnId,
        now: SimTime,
    ) -> Result<Ipv4Addr, PrimingError> {
        if self.host.failed {
            return Err(PrimingError::HostDown(self.host.id));
        }
        let vsn = self
            .vsns
            .get_mut(&vsn_id)
            .ok_or(PrimingError::UnknownVsn(vsn_id))?;
        let bp = self
            .blueprints
            .get(&vsn_id)
            .ok_or(PrimingError::UnknownVsn(vsn_id))?;
        let uid = vsn.uid;
        let ip = vsn.ip.ok_or(PrimingError::NoAddress(vsn_id))?;
        let guest = GuestOs::boot(bp.hostname.clone(), uid, bp.kept_services.clone());
        guest.spawn_initial_processes(&mut self.host.processes, self.model.catalog().services());
        self.host.processes.spawn(uid, bp.app_command.clone());
        let timing = bp.timing;
        vsn.booted(guest, ip, now)?;
        self.replay_boot_phases(vsn_id, timing, now);
        Ok(ip)
    }

    /// Record the five bootstrap phases as timed events and
    /// `daemon.<phase>` spans, ending at `now` (when the boot finished).
    fn replay_boot_phases(&self, vsn_id: VsnId, timing: BootstrapTiming, now: SimTime) {
        if !self.obs.is_enabled() {
            return;
        }
        let host = self.host_label();
        // Walk the phase windows forward from when the boot began so the
        // events appear in execution order.
        let mut t = now - timing.total();
        for (phase, dur) in timing.phases() {
            let end = t + dur;
            self.obs.record(
                t,
                Event::BootPhaseEntered {
                    vsn: vsn_id.0,
                    host,
                    phase,
                },
            );
            self.obs.record(
                end,
                Event::BootPhaseCompleted {
                    vsn: vsn_id.0,
                    host,
                    phase,
                },
            );
            self.obs
                .span_record("daemon", phase, Labels::one("host", host), t, end);
            t = end;
        }
        self.obs
            .counter_add("daemon", "boots", Labels::one("host", host), 1);
    }

    /// Crash a running VSN (fault or successful attack): its processes
    /// die, its state flips to Crashed. The host OS, the other VSNs,
    /// their reservations and their traffic are untouched — this method
    /// deliberately has no access to anything but the one node.
    pub fn crash_vsn(&mut self, vsn_id: VsnId, now: SimTime) -> Result<(), PrimingError> {
        let vsn = self
            .vsns
            .get_mut(&vsn_id)
            .ok_or(PrimingError::UnknownVsn(vsn_id))?;
        vsn.crash()?;
        self.host.processes.kill_uid(vsn.uid);
        let host = u64::from(self.host.id.0);
        self.obs.record(
            now,
            Event::VsnCrash {
                vsn: vsn_id.0,
                host,
            },
        );
        self.obs
            .counter_add("daemon", "vsn_crashes", Labels::one("host", host), 1);
        Ok(())
    }

    /// Re-prime a crashed VSN from its stored blueprint (the image is
    /// already on local disk, so there is no download). Returns the
    /// bootstrap timing to schedule.
    pub fn begin_repriming(&mut self, vsn_id: VsnId) -> Result<BootstrapTiming, PrimingError> {
        if self.host.failed {
            return Err(PrimingError::HostDown(self.host.id));
        }
        let vsn = self
            .vsns
            .get_mut(&vsn_id)
            .ok_or(PrimingError::UnknownVsn(vsn_id))?;
        vsn.start_priming()?;
        let bp = self
            .blueprints
            .get(&vsn_id)
            .ok_or(PrimingError::UnknownVsn(vsn_id))?;
        Ok(bp.timing)
    }

    /// Tear a VSN down: kill its processes and release every resource
    /// the Daemon acquired for it.
    pub fn teardown_vsn(&mut self, vsn_id: VsnId) -> Result<(), PrimingError> {
        let vsn = self
            .vsns
            .get_mut(&vsn_id)
            .ok_or(PrimingError::UnknownVsn(vsn_id))?;
        vsn.teardown()?;
        let uid = vsn.uid;
        let reservation = vsn.reservation;
        let ip = vsn.ip;
        self.host.processes.kill_uid(uid);
        self.host.mem.unregister(uid);
        let _ = self.host.ledger.release(reservation);
        self.resource_gen += 1;
        if let Some(ip) = ip {
            let _ = self.host.bridge.unmap(ip);
            let _ = self.host.ip_pool.release(ip);
            self.host.shaper.remove(ip.as_u32());
        }
        self.vsns.remove(&vsn_id);
        self.blueprints.remove(&vsn_id);
        Ok(())
    }

    /// Resize a VSN's slice in place (service resizing, §3.4): adjust
    /// ledger, memory cap and bandwidth share. Fails without side
    /// effects if the host lacks headroom.
    pub fn resize_vsn(
        &mut self,
        vsn_id: VsnId,
        new_capacity_m: u32,
        new_slice: ResourceVector,
        now: SimTime,
    ) -> Result<(), PrimingError> {
        let vsn = self
            .vsns
            .get_mut(&vsn_id)
            .ok_or(PrimingError::UnknownVsn(vsn_id))?;
        self.host.ledger.resize(vsn.reservation, new_slice)?;
        self.resource_gen += 1;
        vsn.capacity = new_capacity_m.max(1);
        self.host.mem.register(vsn.uid, new_slice.mem_mb);
        if let Some(ip) = vsn.ip {
            self.host
                .shaper
                .configure(ip.as_u32(), new_slice.bw_mbps as f64, SHAPER_BURST, now);
        }
        Ok(())
    }

    /// Look up a VSN.
    pub fn vsn(&self, id: VsnId) -> Option<&VirtualServiceNode> {
        self.vsns.get(&id)
    }

    /// Mutable VSN access.
    pub fn vsn_mut(&mut self, id: VsnId) -> Option<&mut VirtualServiceNode> {
        self.vsns.get_mut(&id)
    }

    /// All VSNs on this host.
    pub fn vsns(&self) -> impl Iterator<Item = &VirtualServiceNode> {
        self.vsns.values()
    }

    /// Number of VSNs (any state) on this host.
    pub fn vsn_count(&self) -> usize {
        self.vsns.len()
    }
}

/// Locate the daemon managing `host` in a roster.
///
/// Rosters are assembled in ascending host-id order at world
/// construction and never reordered afterwards, so the common case is
/// one binary search over 100k hosts instead of a linear sweep per
/// node operation. An `Ok` probe is always a genuine hit (the probe
/// compared equal); only a miss can be spurious on an out-of-order
/// roster, so a miss falls back to the sweep.
pub fn daemon_for(daemons: &[SodaDaemon], host: HostId) -> Option<&SodaDaemon> {
    match daemons.binary_search_by_key(&host, |d| d.host.id) {
        Ok(i) => Some(&daemons[i]),
        Err(_) => daemons.iter().find(|d| d.host.id == host),
    }
}

/// [`daemon_for`], mutably.
pub fn daemon_for_mut(daemons: &mut [SodaDaemon], host: HostId) -> Option<&mut SodaDaemon> {
    match daemons.binary_search_by_key(&host, |d| d.host.id) {
        Ok(i) => Some(&mut daemons[i]),
        Err(_) => daemons.iter_mut().find(|d| d.host.id == host),
    }
}

impl fmt::Debug for SodaDaemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SodaDaemon")
            .field("host", &self.host.name)
            .field("vsns", &self.vsns.len())
            .field("available", &self.report_resources())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostId;
    use soda_net::pool::IpPool;
    use soda_vmm::rootfs::RootFsCatalog;

    fn daemon() -> SodaDaemon {
        let pool = IpPool::new("128.10.9.125".parse().unwrap(), 4);
        SodaDaemon::new(HupHost::seattle(HostId(1), pool))
    }

    fn slice() -> ResourceVector {
        ResourceVector::TABLE1_EXAMPLE.inflate_for_slowdown(1.5)
    }

    fn prime(d: &mut SodaDaemon, id: u64) -> PrimingTicket {
        let img = RootFsCatalog::new().base_1_0();
        d.begin_priming(
            VsnId(id),
            1,
            slice(),
            &img,
            &["network", "syslogd"],
            StartupClass::Light,
            "web",
            SimTime::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn priming_reserves_everything() {
        let mut d = daemon();
        let before = d.report_resources();
        let ticket = prime(&mut d, 1);
        assert_eq!(ticket.ip.to_string(), "128.10.9.125");
        assert_eq!(ticket.download_bytes, 29_300_000);
        assert!(ticket.timing.total() > SimDuration::from_secs(1));
        // Ledger charged, bridge mapped, shaper configured, memory capped.
        assert_eq!(d.report_resources(), before - slice());
        assert!(d.host.bridge.lookup(ticket.ip).is_some());
        assert!(d.host.shaper.is_shaped(ticket.ip.as_u32()));
        assert_eq!(
            d.host.mem.cap_of(SodaDaemon::uid_of(VsnId(1))),
            Some(slice().mem_mb)
        );
        assert_eq!(d.vsn(VsnId(1)).unwrap().state(), &VsnState::Priming);
    }

    #[test]
    fn complete_priming_boots_guest_and_processes() {
        let mut d = daemon();
        let t = prime(&mut d, 1);
        let ip = d.complete_priming(VsnId(1), SimTime::from_secs(5)).unwrap();
        assert_eq!(ip, t.ip);
        let vsn = d.vsn(VsnId(1)).unwrap();
        assert!(vsn.is_running());
        assert_eq!(vsn.running_since, Some(SimTime::from_secs(5)));
        // Guest kernel threads + services + the app daemon.
        let uid = SodaDaemon::uid_of(VsnId(1));
        let procs: Vec<_> = d.host.processes.ps_uid(uid).collect();
        assert!(procs.iter().any(|p| p.command == "webd"));
        assert!(procs.iter().any(|p| p.command == "[kswapd]"));
        assert!(procs.len() >= 5);
    }

    #[test]
    fn duplicate_vsn_rejected() {
        let mut d = daemon();
        prime(&mut d, 1);
        let img = RootFsCatalog::new().base_1_0();
        let err = d
            .begin_priming(
                VsnId(1),
                1,
                slice(),
                &img,
                &["network"],
                StartupClass::Light,
                "x",
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, PrimingError::DuplicateVsn(VsnId(1))));
    }

    #[test]
    fn failed_reservation_rolls_back() {
        let mut d = daemon();
        let huge = ResourceVector::new(999_999, 999_999, 999_999, 999_999);
        let img = RootFsCatalog::new().base_1_0();
        let before_free_ips = d.host.ip_pool.free();
        let err = d
            .begin_priming(
                VsnId(9),
                1,
                huge,
                &img,
                &["network"],
                StartupClass::Light,
                "x",
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, PrimingError::Resources(_)));
        assert_eq!(d.host.ip_pool.free(), before_free_ips);
        assert_eq!(d.vsn_count(), 0);
    }

    #[test]
    fn ip_exhaustion_rolls_back_reservation() {
        let mut d = daemon();
        // Exhaust the 4-address pool with slices tiny enough that the
        // ledger never runs out first.
        let img0 = RootFsCatalog::new().base_1_0();
        for i in 1..=4 {
            d.begin_priming(
                VsnId(i),
                1,
                ResourceVector::new(10, 10, 10, 1),
                &img0,
                &["network"],
                StartupClass::Light,
                "web",
                SimTime::ZERO,
            )
            .unwrap();
        }
        let img = RootFsCatalog::new().tomsrtbt();
        let reserved_before = d.host.ledger.reserved();
        let err = d
            .begin_priming(
                VsnId(5),
                1,
                ResourceVector::new(10, 10, 10, 1),
                &img,
                &["network"],
                StartupClass::Light,
                "x",
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, PrimingError::Pool(PoolError::Exhausted)));
        assert_eq!(d.host.ledger.reserved(), reserved_before);
    }

    #[test]
    fn crash_kills_only_that_vsns_processes() {
        let mut d = daemon();
        prime(&mut d, 1);
        prime(&mut d, 2);
        d.complete_priming(VsnId(1), SimTime::ZERO).unwrap();
        d.complete_priming(VsnId(2), SimTime::ZERO).unwrap();
        let uid1 = SodaDaemon::uid_of(VsnId(1));
        let uid2 = SodaDaemon::uid_of(VsnId(2));
        let n2_before = d.host.processes.count_uid(uid2);
        d.crash_vsn(VsnId(1), SimTime::ZERO).unwrap();
        // VSN 1 dead, VSN 2 untouched: attack isolation.
        assert_eq!(d.host.processes.count_uid(uid1), 0);
        assert_eq!(d.host.processes.count_uid(uid2), n2_before);
        assert_eq!(d.vsn(VsnId(1)).unwrap().state(), &VsnState::Crashed);
        assert!(d.vsn(VsnId(2)).unwrap().is_running());
        // Resources remain reserved for the crashed node.
        assert_eq!(d.host.ledger.reservation_count(), 2);
    }

    #[test]
    fn reprime_crashed_vsn() {
        let mut d = daemon();
        prime(&mut d, 1);
        d.complete_priming(VsnId(1), SimTime::ZERO).unwrap();
        d.crash_vsn(VsnId(1), SimTime::ZERO).unwrap();
        let timing = d.begin_repriming(VsnId(1)).unwrap();
        assert!(timing.total() > SimDuration::ZERO);
        d.complete_priming(VsnId(1), SimTime::from_secs(60))
            .unwrap();
        assert!(d.vsn(VsnId(1)).unwrap().is_running());
        assert_eq!(d.vsn(VsnId(1)).unwrap().crash_count, 1);
    }

    #[test]
    fn teardown_releases_everything() {
        let mut d = daemon();
        let before = d.report_resources();
        let free_ips = d.host.ip_pool.free();
        let t = prime(&mut d, 1);
        d.complete_priming(VsnId(1), SimTime::ZERO).unwrap();
        d.teardown_vsn(VsnId(1)).unwrap();
        assert_eq!(d.report_resources(), before);
        assert_eq!(d.host.ip_pool.free(), free_ips);
        assert!(d.host.bridge.lookup(t.ip).is_none());
        assert!(!d.host.shaper.is_shaped(t.ip.as_u32()));
        assert_eq!(d.host.processes.count_uid(SodaDaemon::uid_of(VsnId(1))), 0);
        assert_eq!(d.vsn_count(), 0);
        // Tearing down again is an error.
        assert!(matches!(
            d.teardown_vsn(VsnId(1)),
            Err(PrimingError::UnknownVsn(_))
        ));
    }

    #[test]
    fn resize_adjusts_ledger_and_caps() {
        let mut d = daemon();
        prime(&mut d, 1);
        d.complete_priming(VsnId(1), SimTime::ZERO).unwrap();
        let doubled = slice() * 2;
        d.resize_vsn(VsnId(1), 2, doubled, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(d.vsn(VsnId(1)).unwrap().capacity, 2);
        assert_eq!(
            d.host.mem.cap_of(SodaDaemon::uid_of(VsnId(1))),
            Some(doubled.mem_mb)
        );
        assert_eq!(d.host.ledger.reserved(), doubled);
        // Oversized resize fails atomically.
        let huge = slice() * 100;
        assert!(d
            .resize_vsn(VsnId(1), 100, huge, SimTime::from_secs(2))
            .is_err());
        assert_eq!(d.vsn(VsnId(1)).unwrap().capacity, 2);
        assert_eq!(d.host.ledger.reserved(), doubled);
    }

    #[test]
    fn unknown_vsn_operations_fail() {
        let mut d = daemon();
        assert!(matches!(
            d.crash_vsn(VsnId(9), SimTime::ZERO),
            Err(PrimingError::UnknownVsn(_))
        ));
        assert!(matches!(
            d.complete_priming(VsnId(9), SimTime::ZERO),
            Err(PrimingError::UnknownVsn(_))
        ));
        assert!(matches!(
            d.begin_repriming(VsnId(9)),
            Err(PrimingError::UnknownVsn(_))
        ));
        assert!(d.vsn(VsnId(9)).is_none());
    }
}
