//! Criterion benches over the same entry points the experiment binaries
//! use — one group per paper artifact, plus substrate microbenches.
//!
//! Absolute wall-clock here measures the *simulator*, not the 2003
//! testbed; the regenerated tables/figures come from the `exp_*`
//! binaries. These benches guard the harness's own performance and give
//! `cargo bench --workspace` one target per table and figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use soda_bench::experiments::{download, fig4, fig5, fig6, placement, table2, table4};
use soda_core::policy::{SwitchPolicy, WeightedRoundRobin};
use soda_core::service::ServiceId;
use soda_core::switch::ServiceSwitch;
use soda_hostos::sched::{
    water_fill, CpuScheduler, ProportionalShareScheduler, TimeShareScheduler,
};
use soda_net::link::{LinkSpec, ProcessorSharingLink};
use soda_sim::{SimDuration, SimTime};
use soda_vmm::intercept::InterceptCostModel;
use soda_vmm::vsn::VsnId;
use soda_workload::datasets::{FIG4_SWEEP, FIG6_SWEEP};
use soda_workload::loads::Fig5Workload;

fn bench_table2_bootstrap(c: &mut Criterion) {
    c.bench_function("table2/bootstrap_model_all_rows", |b| {
        b.iter(|| black_box(table2::run()))
    });
}

fn bench_table4_syscalls(c: &mut Criterion) {
    let model = InterceptCostModel::new();
    c.bench_function("table4/intercept_model_all_rows", |b| {
        b.iter(|| black_box(table4::run()))
    });
    c.bench_function("table4/uml_cycles_single_call", |b| {
        b.iter(|| black_box(model.uml_cycles(soda_hostos::syscall::Syscall::Getpid)))
    });
}

fn bench_fig4_point(c: &mut Criterion) {
    c.bench_function("fig4/one_sweep_point_20s_load", |b| {
        b.iter(|| black_box(fig4::run_point(&FIG4_SWEEP[0], 20, 1)))
    });
}

fn bench_fig5_schedulers(c: &mut Criterion) {
    c.bench_function("fig5/stock_scheduler_10s", |b| {
        b.iter(|| black_box(fig5::run_stock(10, 1)))
    });
    c.bench_function("fig5/proportional_scheduler_10s", |b| {
        b.iter(|| black_box(fig5::run_proportional(10, 1)))
    });
    // Single-tick allocation microbenches.
    let mut workload = Fig5Workload::standard(1);
    let procs = workload.tick();
    c.bench_function("fig5/timeshare_allocate_tick", |b| {
        let mut s = TimeShareScheduler::new();
        b.iter(|| black_box(s.allocate(&procs)))
    });
    c.bench_function("fig5/propshare_allocate_tick", |b| {
        let mut s = ProportionalShareScheduler::new(100);
        b.iter(|| black_box(s.allocate(&procs)))
    });
}

fn bench_fig6_cell(c: &mut Criterion) {
    c.bench_function("fig6/one_cell_40_requests", |b| {
        b.iter(|| {
            black_box(fig6::run_cell(
                fig6::Scenario::VsnWithSwitch,
                &FIG6_SWEEP[0],
                40,
                1,
            ))
        })
    });
}

fn bench_download(c: &mut Criterion) {
    c.bench_function("download/six_image_sweep", |b| {
        b.iter(|| black_box(download::run()))
    });
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("placement/ablation_6_hosts_20_requests", |b| {
        b.iter(|| black_box(placement::run(6, 20, 7)))
    });
}

fn bench_substrate(c: &mut Criterion) {
    // The switch's routing hot path.
    c.bench_function("substrate/switch_route_complete", |b| {
        let mut sw = ServiceSwitch::new(ServiceId(1), VsnId(1));
        sw.add_backend(VsnId(1), "10.0.0.1".parse().expect("valid"), 80, 2);
        sw.add_backend(VsnId(2), "10.0.0.2".parse().expect("valid"), 80, 1);
        b.iter(|| {
            let i = sw.route(SimTime::ZERO).expect("healthy");
            let vsn = sw.backends()[i].vsn;
            sw.complete(vsn, SimDuration::from_millis(5), SimTime::ZERO);
        })
    });
    // Same hot path at utility scale: a wide service (64 backends), the
    // shape the alloc-free view cache exists for.
    c.bench_function("substrate/switch_route_complete_64_backends", |b| {
        let mut sw = ServiceSwitch::new(ServiceId(1), VsnId(1));
        for i in 0..64u32 {
            let ip = format!("10.0.{}.{}", i / 256, i % 256 + 1);
            sw.add_backend(
                VsnId(u64::from(i) + 1),
                ip.parse().expect("valid"),
                80,
                1 + i % 4,
            );
        }
        b.iter(|| {
            let i = sw.route(SimTime::ZERO).expect("healthy");
            let vsn = sw.backends()[i].vsn;
            sw.complete(vsn, SimDuration::from_millis(5), SimTime::ZERO);
        })
    });
    // Smooth WRR pick alone.
    c.bench_function("substrate/wrr_pick_8_backends", |b| {
        let mut p = WeightedRoundRobin::new();
        let views: Vec<soda_core::policy::BackendView> = (0..8)
            .map(|i| soda_core::policy::BackendView {
                capacity: i + 1,
                healthy: true,
                outstanding: 0,
                ewma_response: 0.0,
            })
            .collect();
        b.iter(|| black_box(p.pick(&views)))
    });
    // Water-filling.
    c.bench_function("substrate/water_fill_32_items", |b| {
        let weights: Vec<f64> = (1..=32).map(|i| i as f64).collect();
        let demands: Vec<f64> = (1..=32).map(|i| (i % 7) as f64 / 7.0).collect();
        b.iter(|| black_box(water_fill(1.0, &weights, &demands)))
    });
    // Processor-sharing link churn.
    c.bench_function("substrate/ps_link_100_flows", |b| {
        b.iter_batched(
            || ProcessorSharingLink::new(LinkSpec::lan_100mbps()),
            |mut link| {
                for i in 0..100u64 {
                    link.add_flow(50_000 + i * 1000, SimTime::from_millis(i));
                }
                link.advance(SimTime::from_secs(3600));
                black_box(link.take_completed())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table2_bootstrap,
        bench_table4_syscalls,
        bench_fig4_point,
        bench_fig5_schedulers,
        bench_fig6_cell,
        bench_download,
        bench_placement,
        bench_substrate
}
criterion_main!(benches);
