//! Event-queue microbenches: hierarchical timer wheel vs binary-heap
//! oracle.
//!
//! Two probes per depth (1k / 100k / 1M pending events):
//!
//! * `churn` — steady-state pop-one/push-one at constant depth, the
//!   shape a running simulation exercises every event. Pushed times are
//!   drawn from a mixed near/far horizon distribution (most events land
//!   within microseconds, a tail lands seconds-to-minutes out), so the
//!   wheel's cascade and overflow paths are all on the clock.
//! * `drain` — build-then-empty, measuring ordered drain throughput.
//!
//! Before the timed benches, a counting allocator reports how many
//! first-use allocations each implementation makes while absorbing a
//! 100k-event burst, with and without a capacity hint (`reserve`), which
//! is the satellite measurement behind `Engine::reserve_events`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

use soda_sim::{EventQueue, QueueKind, SimTime};

// ---------------------------------------------------------------------
// Counting allocator (thread-local, same scheme as tests/route_no_alloc)
// ---------------------------------------------------------------------

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn allocations_here() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

// ---------------------------------------------------------------------
// Deterministic mixed-horizon time source
// ---------------------------------------------------------------------

/// xorshift64* — cheap, deterministic, good enough for horizon draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A delay mixing near wheel levels with a far tail: ~70% land within
/// 64 µs (levels 0–2), ~25% within 70 ms (levels 3–4), ~5% seconds to
/// minutes out (levels 5–6 and, rarely, the overflow heap).
fn mixed_delay(rng: &mut Rng) -> u64 {
    let r = rng.next();
    match r % 20 {
        0..=13 => r % (1 << 16),  // ≤ 65 µs
        14..=18 => r % (1 << 26), // ≤ 67 ms
        _ => r % (1 << 38),       // ≤ 4.6 min (past-horizon tail)
    }
}

fn prefill(kind: QueueKind, depth: usize, seed: u64) -> (EventQueue<u64>, Rng, u64) {
    let mut q = EventQueue::with_kind(kind);
    let mut rng = Rng(seed | 1);
    let mut now = 0u64;
    for i in 0..depth {
        q.push(SimTime::from_nanos(now + mixed_delay(&mut rng)), i as u64);
        // Creep the clock so entries spread over the wheel as they would
        // in a live run.
        now += rng.next() % 128;
    }
    (q, rng, now)
}

// ---------------------------------------------------------------------
// Allocation-count report (satellite: capacity hints)
// ---------------------------------------------------------------------

fn count_burst_allocations(kind: QueueKind, hint: Option<usize>, burst: usize) -> u64 {
    let mut rng = Rng(0x5eed | 1);
    let times: Vec<u64> = (0..burst).map(|_| mixed_delay(&mut rng)).collect();
    let mut q: EventQueue<u64> = match hint {
        Some(cap) => EventQueue::with_capacity_and_kind(cap, kind),
        None => EventQueue::with_kind(kind),
    };
    let before = allocations_here();
    for (i, &t) in times.iter().enumerate() {
        q.push(SimTime::from_nanos(t), i as u64);
    }
    let after = allocations_here();
    black_box(q.len());
    after - before
}

fn report_first_allocations() {
    const BURST: usize = 100_000;
    println!("-- first-use allocations while absorbing a {BURST}-event burst --");
    for (kind, name) in [(QueueKind::Wheel, "wheel"), (QueueKind::Heap, "heap")] {
        let cold = count_burst_allocations(kind, None, BURST);
        let hinted = count_burst_allocations(kind, Some(BURST), BURST);
        println!("queue/{name:<5} cold {cold:>6} allocs | with capacity hint {hinted:>6} allocs");
    }
}

// ---------------------------------------------------------------------
// Timed benches
// ---------------------------------------------------------------------

fn bench_churn(c: &mut Criterion) {
    for depth in [1_000usize, 100_000, 1_000_000] {
        for (kind, name) in [(QueueKind::Wheel, "wheel"), (QueueKind::Heap, "heap")] {
            let (mut q, mut rng, _) = prefill(kind, depth, 0xdead_beef);
            let mut i = depth as u64;
            // Warm to steady state so the wheel's first big cascades (an
            // amortized cost the prefill deferred) are off the clock.
            for _ in 0..10_000 {
                let (t, _) = q.pop().expect("never empties");
                q.push(SimTime::from_nanos(t.as_nanos() + mixed_delay(&mut rng)), i);
                i += 1;
            }
            c.bench_function(&format!("queue/churn_{name}_{depth}"), |b| {
                b.iter(|| {
                    let (t, payload) = q.pop().expect("never empties");
                    q.push(SimTime::from_nanos(t.as_nanos() + mixed_delay(&mut rng)), i);
                    i += 1;
                    black_box(payload)
                })
            });
        }
    }
}

fn bench_drain(c: &mut Criterion) {
    // Build-then-empty at the two smaller depths (a 1M drain per sample
    // would dominate the bench wall clock without adding information).
    for depth in [1_000usize, 100_000] {
        for (kind, name) in [(QueueKind::Wheel, "wheel"), (QueueKind::Heap, "heap")] {
            c.bench_function(&format!("queue/drain_{name}_{depth}"), |b| {
                b.iter_batched(
                    || prefill(kind, depth, 0xfeed_f00d).0,
                    |mut q| {
                        let mut last = 0u64;
                        while let Some((t, _)) = q.pop() {
                            last = t.as_nanos();
                        }
                        black_box(last)
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
}

fn bench_alloc_report(c: &mut Criterion) {
    // Not a timed bench — runs once so `cargo bench` output always
    // carries the allocation counts next to the latency numbers.
    let _ = c;
    report_first_allocations();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alloc_report, bench_churn, bench_drain
}
criterion_main!(benches);
