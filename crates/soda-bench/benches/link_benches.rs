//! Fluid-link microbenches: virtual-time indexed `ProcessorSharingLink`
//! vs the preserved O(n) scan (`link::oracle`), on identical schedules.
//!
//! Two probes per depth:
//!
//! * `churn` (1k / 10k / 100k active flows) — steady-state
//!   advance-a-little / cancel-one / add-one at constant depth, the
//!   shape a contended NIC sees under fan-in load. The oracle pays O(n)
//!   per mutation (partial advance touches every flow, cancel scans the
//!   vector); the index pays O(log n) for the mutations and O(1) for
//!   the partial advance, so its per-event cost should stay flat as
//!   depth grows while the oracle's grows linearly.
//! * `complete_100` (1k / 10k) — hop boundary-to-boundary through 100
//!   flow completions. Per completion the oracle re-scans every
//!   remaining flow; the index pops the minimum threshold. 100k is
//!   omitted: a single oracle sample would dominate the bench wall
//!   clock without adding information (the 1k→10k slope already shows
//!   the O(n) term).
//!
//! Before the timed benches, a counting allocator reports steady-state
//! churn allocations for both implementations (the index allocates tree
//! nodes on insert; the warm completion path allocates nothing).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

use soda_net::link::{oracle, FlowId, LinkSpec, ProcessorSharingLink};
use soda_sim::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// Counting allocator (thread-local, same scheme as tests/route_no_alloc)
// ---------------------------------------------------------------------

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn allocations_here() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// xorshift64* — cheap, deterministic size/churn draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Elephant flows (50–150 MB): at 100 Mbps shared N ways nothing
/// completes during a churn window, so the depth stays constant.
fn elephant(rng: &mut Rng) -> u64 {
    50_000_000 + rng.next() % 100_000_000
}

// ---------------------------------------------------------------------
// Steady-state churn at constant depth
// ---------------------------------------------------------------------

/// Drives one churn iteration against either implementation via the
/// shared closure shape: advance 10 µs, cancel the oldest live flow,
/// add a replacement.
macro_rules! churn_bench {
    ($c:expr, $name:literal, $depth:expr, $mk:expr) => {{
        let mut rng = Rng(0x1ab_5eed | 1);
        let mut link = $mk;
        let mut live: std::collections::VecDeque<FlowId> = (0..$depth)
            .map(|_| link.add_flow(elephant(&mut rng), SimTime::ZERO))
            .collect();
        let mut now = SimTime::ZERO;
        $c.bench_function(&format!("link/churn_{}_{}", $name, $depth), |b| {
            b.iter(|| {
                now = now + SimDuration::from_micros(10);
                link.advance(now);
                let victim = live.pop_front().expect("depth is constant");
                assert!(link.cancel(victim, now), "elephants never complete");
                live.push_back(link.add_flow(elephant(&mut rng), now));
                black_box(link.next_completion())
            })
        });
    }};
}

fn bench_churn(c: &mut Criterion) {
    for depth in [1_000usize, 10_000, 100_000] {
        churn_bench!(
            c,
            "indexed",
            depth,
            ProcessorSharingLink::new(LinkSpec::lan_100mbps())
        );
        churn_bench!(
            c,
            "oracle",
            depth,
            oracle::ProcessorSharingLink::new(LinkSpec::lan_100mbps())
        );
    }
}

// ---------------------------------------------------------------------
// Completion throughput: 100 boundary hops from depth N
// ---------------------------------------------------------------------

/// Distinct sizes → distinct thresholds → one completion per boundary.
fn prefill_indexed(depth: usize) -> ProcessorSharingLink {
    let mut l = ProcessorSharingLink::new(LinkSpec::lan_100mbps());
    for i in 0..depth {
        l.add_flow(10_000 + 64 * i as u64, SimTime::ZERO);
    }
    l
}

fn prefill_oracle(depth: usize) -> oracle::ProcessorSharingLink {
    let mut l = oracle::ProcessorSharingLink::new(LinkSpec::lan_100mbps());
    for i in 0..depth {
        l.add_flow(10_000 + 64 * i as u64, SimTime::ZERO);
    }
    l
}

macro_rules! complete_bench {
    ($c:expr, $name:literal, $depth:expr, $prefill:expr) => {{
        let warm = $prefill;
        $c.bench_function(&format!("link/complete100_{}_{}", $name, $depth), |b| {
            b.iter_batched(
                || warm.clone(),
                |mut l| {
                    for _ in 0..100 {
                        let t = l.next_completion().expect("flows remain");
                        l.advance(t);
                    }
                    black_box(l.take_completed().len())
                },
                BatchSize::LargeInput,
            )
        });
    }};
}

fn bench_complete(c: &mut Criterion) {
    for depth in [1_000usize, 10_000] {
        complete_bench!(c, "indexed", depth, prefill_indexed(depth));
        complete_bench!(c, "oracle", depth, prefill_oracle(depth));
    }
}

// ---------------------------------------------------------------------
// Allocation report (satellite: warm-path allocation behaviour)
// ---------------------------------------------------------------------

fn report_churn_allocations() {
    const DEPTH: usize = 10_000;
    const OPS: usize = 10_000;
    println!("-- allocations over {OPS} churn ops at {DEPTH} active flows --");

    macro_rules! count {
        ($name:literal, $mk:expr) => {{
            let mut rng = Rng(0xa110c | 1);
            let mut link = $mk;
            let mut live: std::collections::VecDeque<FlowId> = (0..DEPTH)
                .map(|_| link.add_flow(elephant(&mut rng), SimTime::ZERO))
                .collect();
            let mut now = SimTime::ZERO;
            let before = allocations_here();
            for _ in 0..OPS {
                now = now + SimDuration::from_micros(10);
                link.advance(now);
                let victim = live.pop_front().expect("constant depth");
                link.cancel(victim, now);
                live.push_back(link.add_flow(elephant(&mut rng), now));
            }
            let after = allocations_here();
            println!("link/{:<8} {:>6} allocs", $name, after - before);
        }};
    }

    count!(
        "indexed",
        ProcessorSharingLink::new(LinkSpec::lan_100mbps())
    );
    count!(
        "oracle",
        oracle::ProcessorSharingLink::new(LinkSpec::lan_100mbps())
    );
}

fn bench_alloc_report(c: &mut Criterion) {
    // Not a timed bench — runs once so `cargo bench` output always
    // carries the allocation counts next to the latency numbers.
    let _ = c;
    report_churn_allocations();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alloc_report, bench_churn, bench_complete
}
criterion_main!(benches);
