//! X-PLC — placement ablation (§3.2's "simplified resource allocation
//! algorithm"): admission yield of first-fit vs best-fit vs worst-fit
//! under a randomized stream of service requests on a larger HUP.

use serde::Serialize;
use soda_core::master::SodaMaster;
use soda_core::placement::{BestFit, FirstFit, PlacementPolicy, WorstFit};
use soda_core::service::ServiceSpec;
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::pool::IpPool;
use soda_sim::{SimRng, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;

/// Ablation result for one policy.
#[derive(Clone, Debug, Serialize)]
pub struct PolicyResult {
    /// Policy name.
    pub policy: &'static str,
    /// Requests admitted out of the stream.
    pub admitted: u32,
    /// Requests rejected.
    pub rejected: u32,
    /// Machine instances placed in total.
    pub instances_placed: u32,
    /// Nodes (VSNs) created — lower means less switch fan-out.
    pub nodes_created: u32,
    /// Standard deviation of per-host CPU utilisation at the end
    /// (lower = better balance).
    pub cpu_util_std: f64,
}

fn fresh_hup(hosts: u32) -> Vec<SodaDaemon> {
    (0..hosts)
        .map(|i| {
            let mk = if i % 2 == 0 {
                HupHost::seattle
            } else {
                HupHost::tacoma
            };
            SodaDaemon::new(mk(
                HostId(i),
                IpPool::new(format!("10.9.{i}.0").parse().expect("valid"), 32),
            ))
        })
        .collect()
}

/// A randomized request stream: `count` requests with n drawn from
/// {1..=4}, identical across policies (same seed).
fn request_stream(count: u32, seed: u64) -> Vec<u32> {
    let mut rng = SimRng::new(seed);
    (0..count).map(|_| rng.range_u64(1..5) as u32).collect()
}

/// Run the ablation for one policy.
pub fn run_policy(
    policy: Box<dyn PlacementPolicy>,
    name: &'static str,
    hosts: u32,
    requests: u32,
    seed: u64,
) -> PolicyResult {
    let mut master = SodaMaster::new();
    master.set_placement(policy);
    let mut daemons = fresh_hup(hosts);
    let stream = request_stream(requests, seed);
    let image = RootFsCatalog::new().base_1_0();
    let mut admitted = 0;
    let mut rejected = 0;
    let mut instances = 0;
    for (i, &n) in stream.iter().enumerate() {
        let spec = ServiceSpec {
            name: format!("svc{i}"),
            image: image.clone(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: n,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        };
        match master.create_service_now(spec, "asp", &mut daemons, SimTime::ZERO) {
            Ok(_) => {
                admitted += 1;
                instances += n;
            }
            Err(_) => rejected += 1,
        }
    }
    let nodes_created: u32 = daemons.iter().map(|d| d.vsn_count() as u32).sum();
    let utils: Vec<f64> = daemons
        .iter()
        .map(|d| {
            let cap = d.host.capacity().cpu_mhz as f64;
            let used = d.host.ledger.reserved().cpu_mhz as f64;
            used / cap
        })
        .collect();
    let mean = utils.iter().sum::<f64>() / utils.len() as f64;
    let var = utils.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / utils.len() as f64;
    PolicyResult {
        policy: name,
        admitted,
        rejected,
        instances_placed: instances,
        nodes_created,
        cpu_util_std: var.sqrt(),
    }
}

/// Run all three policies on the same stream.
pub fn run(hosts: u32, requests: u32, seed: u64) -> Vec<PolicyResult> {
    vec![
        run_policy(Box::new(FirstFit), "first-fit", hosts, requests, seed),
        run_policy(Box::new(BestFit), "best-fit", hosts, requests, seed),
        run_policy(Box::new(WorstFit), "worst-fit", hosts, requests, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_comparable_results() {
        let results = run(6, 20, 7);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.admitted + r.rejected, 20);
            assert!(r.admitted > 0, "{}: nothing admitted", r.policy);
            assert!(r.nodes_created >= r.admitted, "{}", r.policy);
        }
        // Worst-fit spreads: its utilisation imbalance is no worse than
        // first-fit's.
        let ff = results.iter().find(|r| r.policy == "first-fit").unwrap();
        let wf = results.iter().find(|r| r.policy == "worst-fit").unwrap();
        assert!(
            wf.cpu_util_std <= ff.cpu_util_std + 1e-9,
            "worst-fit {} vs first-fit {}",
            wf.cpu_util_std,
            ff.cpu_util_std
        );
    }

    #[test]
    fn same_stream_across_policies() {
        assert_eq!(request_stream(10, 3), request_stream(10, 3));
        assert_ne!(request_stream(10, 3), request_stream(10, 4));
    }
}
