//! Table 4 — syscall completion cycles in UML vs the host OS.

use serde::Serialize;
use soda_hostos::syscall::Syscall;
use soda_vmm::intercept::{InterceptCostModel, UmlMode};

/// Paper-reported (call, uml cycles, host cycles).
pub const PAPER_CYCLES: [(&str, u64, u64); 6] = [
    ("dup2", 27_276, 1_208),
    ("getpid", 26_648, 1_064),
    ("geteuid", 26_904, 1_084),
    ("mmap", 27_864, 1_208),
    ("mmap_munmap", 27_044, 1_200),
    ("gettimeofday", 37_004, 1_368),
];

/// One reproduced row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Syscall label.
    pub call: &'static str,
    /// Modelled cycles in UML.
    pub uml_cycles: u64,
    /// Modelled cycles natively.
    pub host_cycles: u64,
    /// Penalty factor.
    pub penalty: f64,
}

/// Reproduce the table (tt mode, as measured in 2003).
pub fn run() -> Vec<Row> {
    run_mode(UmlMode::Tt)
}

/// The same table under a chosen UML mode — `Skas` is the ablation for
/// the mode UML grew after the paper.
pub fn run_mode(mode: UmlMode) -> Vec<Row> {
    let model = InterceptCostModel::for_mode(mode);
    Syscall::TABLE4
        .iter()
        .map(|&call| Row {
            call: call.label(),
            uml_cycles: model.uml_cycles(call),
            host_cycles: model.native.native_cycles(call),
            penalty: model.penalty(call),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table4_within_15_percent() {
        let rows = run();
        assert_eq!(rows.len(), 6);
        for (row, (label, uml, host)) in rows.iter().zip(PAPER_CYCLES) {
            assert_eq!(row.call, label);
            let uml_err = (row.uml_cycles as f64 - uml as f64).abs() / uml as f64;
            let host_err = (row.host_cycles as f64 - host as f64).abs() / host as f64;
            assert!(uml_err < 0.15, "{label} uml {} vs {uml}", row.uml_cycles);
            assert!(
                host_err < 0.05,
                "{label} host {} vs {host}",
                row.host_cycles
            );
            assert!(row.penalty > 15.0 && row.penalty < 35.0);
        }
        // gettimeofday is the worst in UML.
        let worst = rows.iter().max_by_key(|r| r.uml_cycles).unwrap();
        assert_eq!(worst.call, "gettimeofday");
    }

    #[test]
    fn skas_ablation_cuts_every_row() {
        let tt = run_mode(UmlMode::Tt);
        let skas = run_mode(UmlMode::Skas);
        for (t, s) in tt.iter().zip(&skas) {
            assert_eq!(t.call, s.call);
            assert!(s.uml_cycles < t.uml_cycles, "{}", t.call);
            assert_eq!(s.host_cycles, t.host_cycles, "native path unchanged");
            assert!(s.penalty > 5.0, "interception still costs: {}", s.penalty);
        }
    }
}
