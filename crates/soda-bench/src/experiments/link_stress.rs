//! X-LINK — fan-in stress on one processor-sharing NIC.
//!
//! The utility failure mode the virtual-time link exists for: thousands
//! of flows contending one host's NIC (image-download storms, DDoS
//! floods, §3.5's isolation violation). This experiment drives a single
//! `ProcessorSharingLink` with a Poisson arrival process of mixed-size
//! flows plus random cancellations, hopping event-to-event exactly like
//! `SodaWorld`'s NIC pump (advance to the earlier of next-arrival /
//! next-completion, drain into a reused buffer), and reports peak
//! active flows, completion/cancellation counts, wall time, and an
//! FNV-1a fingerprint of the full `(FlowId, finish)` completion
//! sequence.
//!
//! The fingerprint is the differential hook: `run_oracle` replays the
//! identical schedule against the preserved O(n) `link::oracle`, and
//! the in-module test requires bit-identical fingerprints — the same
//! completion sequence on the nanosecond grid — while the CI perf-smoke
//! job gates the indexed run's wall clock.

use serde::Serialize;
use soda_net::link::{oracle, FlowId, LinkSpec, ProcessorSharingLink};
use soda_sim::{SimDuration, SimRng, SimTime};

/// One stress run's parameters.
#[derive(Clone, Copy, Debug)]
pub struct StressConfig {
    /// Flow arrivals to push through the link.
    pub flows: u64,
    /// RNG seed (arrivals, sizes, cancellations).
    pub seed: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            flows: 200_000,
            seed: 1303,
        }
    }
}

/// Measurements from one stress run.
#[derive(Clone, Debug, Serialize)]
pub struct StressResult {
    /// Flow arrivals pushed through the link.
    pub flows: u64,
    /// Flows that ran to completion.
    pub completions: u64,
    /// Flows cancelled mid-transfer.
    pub cancellations: u64,
    /// High-water mark of concurrently active flows.
    pub peak_active: u64,
    /// Virtual time when the link finally drained.
    pub sim_secs: f64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Link events: arrivals + completions + cancellations.
    pub events: u64,
    /// Link events per wall-clock second.
    pub events_per_sec: f64,
    /// FNV-1a over the `(FlowId, finish_ns)` completion sequence.
    pub fingerprint: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut fp: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(FNV_PRIME);
    }
    fp
}

/// The deterministic schedule both implementations replay: exponential
/// inter-arrivals (mean 250 µs — far faster than the mean flow drains,
/// so contention builds), log-uniform-ish sizes from 4 kB to 4 MB, and
/// a 10% chance per arrival of cancelling the oldest live flow.
struct Schedule {
    rng: SimRng,
}

impl Schedule {
    fn new(seed: u64) -> Self {
        Schedule {
            rng: SimRng::new(seed),
        }
    }

    fn next_gap(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.exp(250e-6))
    }

    fn next_bytes(&mut self) -> u64 {
        // Three size decades, uniform within each: mice, mid, elephants.
        match self.rng.index(3) {
            0 => self.rng.range_u64(4_000..40_000),
            1 => self.rng.range_u64(40_000..400_000),
            _ => self.rng.range_u64(400_000..4_000_000),
        }
    }

    fn cancels(&mut self) -> bool {
        self.rng.bool(0.10)
    }
}

/// Generic driver over either link implementation (the two expose the
/// same inherent API; a tiny adapter trait keeps the schedule replay
/// byte-for-byte identical).
trait Link {
    fn advance(&mut self, now: SimTime);
    fn add_flow(&mut self, bytes: u64, now: SimTime) -> FlowId;
    fn cancel(&mut self, id: FlowId, now: SimTime) -> bool;
    fn next_completion(&self) -> Option<SimTime>;
    fn active_flows(&self) -> usize;
    fn drain_into(&mut self, out: &mut Vec<(FlowId, SimTime)>);
}

impl Link for ProcessorSharingLink {
    fn advance(&mut self, now: SimTime) {
        ProcessorSharingLink::advance(self, now)
    }
    fn add_flow(&mut self, bytes: u64, now: SimTime) -> FlowId {
        ProcessorSharingLink::add_flow(self, bytes, now)
    }
    fn cancel(&mut self, id: FlowId, now: SimTime) -> bool {
        ProcessorSharingLink::cancel(self, id, now)
    }
    fn next_completion(&self) -> Option<SimTime> {
        ProcessorSharingLink::next_completion(self)
    }
    fn active_flows(&self) -> usize {
        ProcessorSharingLink::active_flows(self)
    }
    fn drain_into(&mut self, out: &mut Vec<(FlowId, SimTime)>) {
        self.drain_completed_into(out);
    }
}

impl Link for oracle::ProcessorSharingLink {
    fn advance(&mut self, now: SimTime) {
        oracle::ProcessorSharingLink::advance(self, now)
    }
    fn add_flow(&mut self, bytes: u64, now: SimTime) -> FlowId {
        oracle::ProcessorSharingLink::add_flow(self, bytes, now)
    }
    fn cancel(&mut self, id: FlowId, now: SimTime) -> bool {
        oracle::ProcessorSharingLink::cancel(self, id, now)
    }
    fn next_completion(&self) -> Option<SimTime> {
        oracle::ProcessorSharingLink::next_completion(self)
    }
    fn active_flows(&self) -> usize {
        oracle::ProcessorSharingLink::active_flows(self)
    }
    fn drain_into(&mut self, out: &mut Vec<(FlowId, SimTime)>) {
        out.extend(self.take_completed());
    }
}

fn drive(link: &mut dyn Link, cfg: &StressConfig) -> StressResult {
    let wall_start = std::time::Instant::now();
    let mut sched = Schedule::new(cfg.seed);
    let mut now = SimTime::ZERO;
    let mut next_arrival = now + sched.next_gap();
    let mut arrived = 0u64;
    let mut completions = 0u64;
    let mut cancellations = 0u64;
    let mut peak_active = 0u64;
    let mut fp = FNV_OFFSET;
    // The oldest-first cancellation queue: ids enter at arrival; a
    // cancel pops until it finds one the link still considers active.
    let mut live: std::collections::VecDeque<FlowId> = std::collections::VecDeque::new();
    let mut drained: Vec<(FlowId, SimTime)> = Vec::new();

    loop {
        let next_completion = link.next_completion();
        // Event-driven hop: earlier of next arrival / next completion.
        let at_arrival = match (arrived < cfg.flows, next_completion) {
            (true, Some(c)) => next_arrival <= c,
            (true, None) => true,
            (false, Some(_)) => false,
            (false, None) => break,
        };
        if at_arrival {
            now = next_arrival;
            link.advance(now);
            let id = link.add_flow(sched.next_bytes(), now);
            live.push_back(id);
            arrived += 1;
            next_arrival = now + sched.next_gap();
            if sched.cancels() {
                while let Some(victim) = live.pop_front() {
                    if link.cancel(victim, now) {
                        cancellations += 1;
                        break;
                    }
                }
            }
        } else {
            now = next_completion.expect("checked");
            link.advance(now);
        }
        link.drain_into(&mut drained);
        for &(id, t) in &drained {
            fp = fnv_bytes(fp, &id.0.to_le_bytes());
            fp = fnv_bytes(fp, &t.as_nanos().to_le_bytes());
        }
        completions += drained.len() as u64;
        drained.clear();
        peak_active = peak_active.max(link.active_flows() as u64);
    }
    debug_assert_eq!(link.active_flows(), 0);

    let wall_secs = wall_start.elapsed().as_secs_f64();
    let events = arrived + completions + cancellations;
    StressResult {
        flows: cfg.flows,
        completions,
        cancellations,
        peak_active,
        sim_secs: now.as_secs_f64(),
        wall_secs,
        events,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        fingerprint: fp,
    }
}

/// Run the stress schedule against the virtual-time indexed link.
pub fn run(cfg: &StressConfig) -> StressResult {
    let mut link = ProcessorSharingLink::new(LinkSpec::lan_100mbps());
    drive(&mut link, cfg)
}

/// Replay the identical schedule against the preserved O(n) oracle.
pub fn run_oracle(cfg: &StressConfig) -> StressResult {
    let mut link = oracle::ProcessorSharingLink::new(LinkSpec::lan_100mbps());
    drive(&mut link, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the experiment's fingerprint: the indexed link
    /// and the O(n) oracle replay the same contended schedule to the
    /// same completion sequence, bit for bit — and conservation holds
    /// (every arrival either completes or is cancelled).
    #[test]
    fn indexed_and_oracle_fingerprints_match() {
        let cfg = StressConfig {
            flows: 3_000,
            seed: 7,
        };
        let fast = run(&cfg);
        let slow = run_oracle(&cfg);
        assert_eq!(fast.fingerprint, slow.fingerprint);
        assert_eq!(fast.completions, slow.completions);
        assert_eq!(fast.cancellations, slow.cancellations);
        assert_eq!(fast.peak_active, slow.peak_active);
        assert_eq!(fast.sim_secs, slow.sim_secs);
        assert_eq!(fast.completions + fast.cancellations, cfg.flows);
        assert!(fast.peak_active > 100, "schedule must actually contend");
    }

    #[test]
    fn stress_run_is_deterministic() {
        let cfg = StressConfig {
            flows: 2_000,
            seed: 1303,
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.peak_active, b.peak_active);
        let c = run(&StressConfig { seed: 1304, ..cfg });
        assert_ne!(a.fingerprint, c.fingerprint, "seeds must matter");
    }
}
