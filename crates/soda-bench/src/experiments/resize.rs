//! X-RSZ — `SODA_service_resizing` (§3.4/§4.1): latency and correctness
//! of growing and shrinking a service, and the effect on load balance.

use serde::Serialize;
use soda_core::service::ServiceSpec;
use soda_core::world::SodaWorld;
use soda_hostos::resources::ResourceVector;
use soda_sim::{Engine, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;

/// One resize step's record.
#[derive(Clone, Debug, Serialize)]
pub struct ResizeStep {
    /// Requested `n_new`.
    pub target_instances: u32,
    /// Capacity after the step.
    pub placed_after: u32,
    /// Nodes after the step.
    pub nodes_after: usize,
    /// Nodes widened/narrowed in place.
    pub in_place: usize,
    /// Nodes removed.
    pub removed: usize,
    /// Nodes freshly placed (each pays a bootstrap).
    pub added: usize,
    /// Bootstrap seconds paid for added nodes (0 for pure in-place).
    pub added_bootstrap_secs: f64,
}

/// Walk a service through a resize schedule, returning one record per
/// step.
pub fn run(schedule: &[u32], seed: u64) -> Vec<ResizeStep> {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: schedule.first().copied().unwrap_or(1),
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let world = engine.state_mut();
    let mut daemons = std::mem::take(&mut world.daemons);
    let reply = world
        .master
        .create_service_now(spec, "webco", &mut daemons, SimTime::ZERO)
        .expect("admitted");
    world.daemons = daemons;
    let svc = reply.service;
    let mut out = Vec::new();
    for (i, &target) in schedule.iter().enumerate().skip(1) {
        let now = SimTime::from_secs(60 * i as u64);
        let world = engine.state_mut();
        let mut daemons = std::mem::take(&mut world.daemons);
        let outcome = world
            .master
            .resize(svc, target, &mut daemons, now)
            .expect("resize ok");
        // Finish any freshly placed nodes immediately (image cached).
        let mut bootstrap_secs = 0.0f64;
        for (_, ticket) in &outcome.tickets {
            bootstrap_secs = bootstrap_secs.max(ticket.timing.total().as_secs_f64());
            world
                .master
                .resize_node_ready(svc, ticket.vsn, &mut daemons, now)
                .expect("node ready");
        }
        world.daemons = daemons;
        let rec = world.master.service(svc).expect("exists");
        out.push(ResizeStep {
            target_instances: target,
            placed_after: rec.placed_capacity(),
            nodes_after: rec.nodes.len(),
            in_place: outcome.resized.len(),
            removed: outcome.removed.len(),
            added: outcome.tickets.len(),
            added_bootstrap_secs: bootstrap_secs,
        });
        // Invariant: the switch's config file always matches.
        let total = world
            .master
            .switch(svc)
            .expect("switch")
            .config()
            .total_capacity();
        assert_eq!(total, rec.placed_capacity(), "config file tracks capacity");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_shrink_cycle_is_exact() {
        let steps = run(&[1, 3, 5, 2, 1], 1);
        let placed: Vec<u32> = steps.iter().map(|s| s.placed_after).collect();
        assert_eq!(placed, vec![3, 5, 2, 1]);
        // Growing to 3 fits in place on seattle (headroom 2 more).
        assert_eq!(steps[0].added, 0);
        assert!(steps[0].in_place > 0);
        assert_eq!(steps[0].added_bootstrap_secs, 0.0);
        // Growing to 5 exceeds seattle: a new node is placed (bootstrap
        // paid).
        assert!(steps[1].added > 0);
        assert!(steps[1].added_bootstrap_secs > 1.0);
        // Shrinking to 2 removes and/or narrows.
        assert!(steps[2].removed + steps[2].in_place > 0);
    }

    #[test]
    fn in_place_resize_is_instant() {
        let steps = run(&[2, 3, 2], 2);
        for s in &steps {
            if s.added == 0 {
                assert_eq!(s.added_bootstrap_secs, 0.0, "in-place pays no bootstrap");
            }
        }
    }
}
