//! X-HOST — whole-host failure and self-healing failover (an
//! extension: the paper explicitly scopes SODA as *jailing* faults, not
//! surviving them; this shows what the architecture's pieces —
//! heartbeats, inventory, placement, priming, switch health — buy when
//! composed into a recovery loop).
//!
//! Scenario: a three-host HUP runs the web service on two nodes. The
//! host carrying the big node loses power mid-experiment — and nobody
//! tells the Master. Its heartbeat monitor notices the silence, drains
//! the dead backends, re-places the lost capacity on the spare host,
//! re-fetches the image, bootstraps, and the service returns to full
//! capacity. Requests routed to the dead node during the detection
//! window are honestly counted as dropped.

use serde::Serialize;
use soda_core::recovery::{self, RecoveryConfig};
use soda_core::service::ServiceSpec;
use soda_core::world::{crash_host, create_service_driven, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::pool::IpPool;
use soda_sim::{Engine, SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_workload::httpgen::PoissonGenerator;

/// Result of the failover run.
#[derive(Clone, Debug, Serialize)]
pub struct FailoverResult {
    /// Nodes downed by the host failure.
    pub nodes_downed: usize,
    /// Seconds from the crash to the heartbeat monitor declaring the
    /// host down.
    pub detection_secs: f64,
    /// Seconds from failure to full capacity restored.
    pub recovery_secs: f64,
    /// Requests dropped across the whole run.
    pub dropped: u64,
    /// Requests completed across the whole run.
    pub completed: u64,
    /// Capacity (machine instances) after recovery.
    pub final_capacity: u32,
    /// Mean response before the failure, seconds.
    pub mean_before: f64,
    /// Mean response during the degraded window, seconds.
    pub mean_degraded: f64,
}

/// Run the scenario.
pub fn run(seed: u64) -> FailoverResult {
    // Two seattles carry the service (worst-fit puts 2M on host 1 and
    // 1M on host 2); the smaller tacoma is the idle spare that the
    // failover lands on.
    let daemons: Vec<SodaDaemon> = vec![
        SodaDaemon::new(HupHost::seattle(
            HostId(1),
            IpPool::new("10.0.1.0".parse().expect("valid"), 8),
        )),
        SodaDaemon::new(HupHost::seattle(
            HostId(2),
            IpPool::new("10.0.2.0".parse().expect("valid"), 8),
        )),
        SodaDaemon::new(HupHost::tacoma(
            HostId(3),
            IpPool::new("10.0.3.0".parse().expect("valid"), 8),
        )),
    ];
    let mut engine = Engine::with_seed(SodaWorld::new(daemons), seed);
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let svc = create_service_driven(&mut engine, spec, "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 1, "creation finishes");

    // Arm the self-healing loop: detection and recovery from here on
    // are the Master's own doing, not the experiment script's.
    let t0 = engine.now();
    let total_secs = 240u64;
    let horizon = t0 + SimDuration::from_secs(total_secs + 120);
    recovery::start_self_healing(&mut engine, RecoveryConfig::default(), horizon);

    // Continuous load for the whole run.
    PoissonGenerator {
        service: svc,
        dataset_bytes: 30_000,
        rate_rps: 20.0,
        start: t0,
        end: t0 + SimDuration::from_secs(total_secs),
    }
    .start(&mut engine);

    // Let it serve for 60 s, then pull the plug on the host with the
    // largest node. No master notification, no scripted failover.
    let fail_at = t0 + SimDuration::from_secs(60);
    let victim_host = engine.state().master.service(svc).expect("exists").nodes[0].host;
    engine.schedule_at(fail_at, move |w: &mut SodaWorld, ctx| {
        crash_host(w, ctx, victim_host);
    });
    engine.run_until(horizon);

    let w = engine.state();
    let rec = w.master.service(svc).expect("exists");
    let stats = &w.recovery.stats;
    let detection_secs = stats
        .detections
        .first()
        .map(|&(_, at)| at.saturating_since(fail_at).as_secs_f64())
        .unwrap_or(f64::INFINITY);
    // Full capacity is restored when the replacement finishes booting.
    let recovery_done = rec
        .nodes
        .iter()
        .filter_map(|n| {
            let d = w.daemons.iter().find(|d| d.host.id == n.host)?;
            d.vsn(n.vsn)?.running_since
        })
        .max()
        .unwrap_or(fail_at);
    let mean_before = {
        let recs: Vec<f64> = w
            .completed
            .iter()
            .filter(|r| r.issued < fail_at)
            .map(|r| r.response_time().as_secs_f64())
            .collect();
        recs.iter().sum::<f64>() / recs.len().max(1) as f64
    };
    let mean_degraded = {
        let recs: Vec<f64> = w
            .completed
            .iter()
            .filter(|r| r.issued >= fail_at && r.issued < recovery_done)
            .map(|r| r.response_time().as_secs_f64())
            .collect();
        recs.iter().sum::<f64>() / recs.len().max(1) as f64
    };
    FailoverResult {
        nodes_downed: 1,
        detection_secs,
        recovery_secs: recovery_done.saturating_since(fail_at).as_secs_f64(),
        dropped: w.dropped,
        completed: w.completed.len() as u64,
        final_capacity: rec.placed_capacity(),
        mean_before,
        mean_degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_restores_full_capacity() {
        let r = run(17);
        assert_eq!(r.final_capacity, 3, "capacity restored");
        // Detection = heartbeat timeout (3.5 s) rounded up to the next
        // 1 s heartbeat tick.
        assert!(
            (3.0..6.0).contains(&r.detection_secs),
            "{}",
            r.detection_secs
        );
        // Recovery = detection + image download (~2.4 s) + bootstrap
        // (~2.5 s).
        assert!(
            (4.0..30.0).contains(&r.recovery_secs),
            "{}",
            r.recovery_secs
        );
        // Requests routed to the dead node before detection are real
        // drops now — but the window is a few seconds at 20 rps.
        assert!(r.dropped > 0, "detection window must cost something");
        assert!(r.dropped < 500, "{}", r.dropped);
        assert!(r.completed > 1000);
        assert!(r.mean_before > 0.0);
        assert!(r.mean_degraded > 0.0);
    }
}
