//! X-INFL — footnote 2: "we set the slow-down factor to be 1.5".
//!
//! Sensitivity of admission yield to the inflation factor: higher
//! inflation wastes capacity on headroom (fewer services fit); factors
//! below the *measured* slowdown under-reserve, which would violate the
//! promised capacity. The experiment sweeps the factor and reports both
//! the yield and whether the reservation covers the measured need.

use serde::Serialize;
use soda_core::master::SodaMaster;
use soda_core::service::ServiceSpec;
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::pool::IpPool;
use soda_sim::SimTime;
use soda_vmm::intercept::{InterceptCostModel, SlowdownFactors};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;

/// One sweep point.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// The inflation factor in force at admission.
    pub factor: f64,
    /// Single-instance services admitted before the HUP fills.
    pub admitted: u32,
    /// Does the reservation cover the measured web-workload slowdown?
    pub covers_measured: bool,
}

/// The factors swept.
pub const FACTORS: [f64; 5] = [1.0, 1.2, 1.5, 2.0, 3.0];

/// Run the sweep.
pub fn run() -> Vec<Row> {
    let measured = SlowdownFactors::measured_web(&InterceptCostModel::new()).cpu;
    FACTORS
        .iter()
        .map(|&factor| {
            let mut master = SodaMaster::new();
            master.slowdown_inflation = factor;
            let mut daemons = vec![
                SodaDaemon::new(HupHost::seattle(
                    HostId(1),
                    IpPool::new("10.0.0.0".parse().expect("valid"), 32),
                )),
                SodaDaemon::new(HupHost::tacoma(
                    HostId(2),
                    IpPool::new("10.0.1.0".parse().expect("valid"), 32),
                )),
            ];
            let image = RootFsCatalog::new().base_1_0();
            let mut admitted = 0u32;
            loop {
                let spec = ServiceSpec {
                    name: format!("svc{admitted}"),
                    image: image.clone(),
                    required_services: vec!["network"],
                    app_class: StartupClass::Light,
                    instances: 1,
                    machine: ResourceVector::TABLE1_EXAMPLE,
                    port: 8080,
                };
                if master
                    .create_service_now(spec, "asp", &mut daemons, SimTime::ZERO)
                    .is_err()
                {
                    break;
                }
                admitted += 1;
                if admitted > 1000 {
                    unreachable!("HUP capacity is finite");
                }
            }
            Row {
                factor,
                admitted,
                covers_measured: factor >= measured,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_is_monotone_decreasing_in_factor() {
        let rows = run();
        assert_eq!(rows.len(), FACTORS.len());
        for w in rows.windows(2) {
            assert!(w[1].admitted <= w[0].admitted, "{w:?}");
        }
        // Some spread must exist between no inflation and 3×.
        assert!(rows[0].admitted > rows.last().unwrap().admitted);
    }

    #[test]
    fn paper_factor_covers_measured_slowdown() {
        let rows = run();
        let at_1_5 = rows.iter().find(|r| r.factor == 1.5).unwrap();
        assert!(
            at_1_5.covers_measured,
            "1.5 must cover the ~1.19 measured factor"
        );
        let at_1_0 = rows.iter().find(|r| r.factor == 1.0).unwrap();
        assert!(!at_1_0.covers_measured, "no inflation under-reserves");
    }
}
