//! X-SCALE — hot-path throughput sweep over a utility-scale HUP.
//!
//! The paper's testbed is two hosts; the ROADMAP's north star is a
//! utility "serving heavy traffic from millions of users". This
//! experiment measures the gap: it builds a fleet of N identical hosts,
//! fills it wall-to-wall with services (20 single-instance machine
//! slices per host — the worst-fit index places every last instance),
//! then pushes a fixed request count through the switches, CPU stages,
//! shapers and NICs, reporting wall-clock, events/second, peak RSS and
//! the event-queue high-water mark.
//!
//! Two fingerprints make the run comparable across processes and
//! optimisation levels:
//!
//! * `trajectory_fingerprint` — FNV-1a over every completed request's
//!   `(service, vsn, issued, completed, dataset)` plus the drop count.
//!   Computed whether or not observability is on; the indexed hot paths
//!   must not move it.
//! * `event_fingerprint` — FNV-1a over the rendered observability event
//!   log (0 when `obs` is off), the same scheme X-CHAOS uses.

use serde::Serialize;
use soda_core::service::{ServiceId, ServiceSpec};
use soda_core::shard::ControlPlaneKind;
use soda_core::world::{create_service_driven, submit_request, SodaWorld};
use soda_core::WorldStorageKind;
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::addr::Ipv4Addr;
use soda_net::pool::IpPool;
use soda_sim::{Engine, QueueKind, SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use std::rc::Rc;

/// Services created per host. Each service is `<4, M_SCALE>`, so a full
/// fleet carries `hosts × SERVICES_PER_HOST × 4` virtual service nodes
/// (20 per host — 1,000 hosts ⇒ 20,000 VSNs).
pub const SERVICES_PER_HOST: u32 = 5;

/// The scale-run machine instance: sized so exactly 20 inflated
/// instances fill one *seattle* host's CPU (20 × ceil(75 × 1.5) = 2260
/// of 2340 MHz), with slack in every other dimension.
const M_SCALE: ResourceVector = ResourceVector {
    cpu_mhz: 75,
    mem_mb: 80,
    disk_mb: 500,
    bw_mbps: 2,
};

/// One grid point of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Fleet size.
    pub hosts: u32,
    /// Client requests to push through the fleet.
    pub requests: u64,
    /// Engine seed (workload interleaving is fully deterministic).
    pub seed: u64,
    /// Record observability events/metrics during the run.
    pub obs: bool,
    /// Run the engine self-profiler (wall-clock cost per event kind).
    /// Profiling reads the host clock around every handler, so it is
    /// off for fingerprint-bearing CI runs and on for `exp_scale
    /// profile` investigations; it must never move the trajectory.
    pub profile: bool,
    /// Event-queue implementation; the determinism suite replays runs on
    /// both kinds and requires identical fingerprints.
    pub queue: QueueKind,
    /// Control plane driving the run: the monolithic Master, or `n`
    /// placement cells coordinated by messages. The differential suite
    /// requires `Sharded(1)` to fingerprint identically to `Monolith`.
    pub kind: ControlPlaneKind,
    /// VSN instances per service (4 in the canonical grid — 20 VSNs per
    /// host; the xl tier runs 2 so 100k hosts carry exactly 1M VSNs
    /// without changing the per-service spec shape).
    pub instances: u32,
    /// World-state storage backend. `Arena` (the default) is the dense
    /// slab data plane; `Map` is the ordered-map oracle the
    /// differential suite replays against.
    pub storage: WorldStorageKind,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            hosts: 10,
            requests: 10_000,
            seed: 42,
            obs: false,
            profile: false,
            queue: QueueKind::default(),
            kind: ControlPlaneKind::Monolith,
            instances: 4,
            storage: WorldStorageKind::default(),
        }
    }
}

/// Measurements from one scale run.
#[derive(Clone, Debug, Serialize)]
pub struct ScaleResult {
    /// Fleet size.
    pub hosts: u32,
    /// Services created (all admitted, or the run panics).
    pub services: u32,
    /// Virtual service nodes running after creation.
    pub vsns: u32,
    /// Requests submitted.
    pub requests: u64,
    /// Requests completed (delivered responses).
    pub completed: u64,
    /// Requests dropped.
    pub dropped: u64,
    /// Whether observability was enabled.
    pub obs: bool,
    /// Event-queue implementation the run used (`"wheel"` / `"heap"`).
    pub queue: String,
    /// Control plane the run used (`"monolith"` / `"sharded-N"`).
    pub control_plane: String,
    /// Storage backend the run used (`"arena"` / `"map"`).
    pub storage: String,
    /// Placement cells in the control plane (1 for the monolith).
    pub shards: u32,
    /// Creations re-placed over the whole fleet after their home cell
    /// was full.
    pub shard_spills: u64,
    /// Inter-shard messages sent / dropped as stale.
    pub shard_msgs_sent: u64,
    /// Inter-shard messages dropped because the destination's journal
    /// epoch moved while they were in flight.
    pub shard_msgs_stale: u64,
    /// Engine events executed, creation phase included.
    pub events: u64,
    /// Host wall-clock for the whole run, seconds.
    pub wall_secs: f64,
    /// Virtual time simulated, seconds.
    pub sim_secs: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Event-queue high-water mark.
    pub peak_queue_depth: usize,
    /// High-water mark of concurrently active NIC flows fleet-wide.
    pub peak_live_flows: u64,
    /// High-water mark of in-flight (admitted, unanswered) requests.
    pub peak_open_requests: u64,
    /// Per-event-kind wall-clock cost table (empty unless
    /// [`ScaleConfig::profile`] was set).
    pub profile: Vec<soda_sim::ProfileEntry>,
    /// Process peak RSS in kB (`VmHWM`; 0 where unavailable). Process-
    /// wide and monotonic, so within one sweep only the largest grid
    /// point's value is meaningful.
    pub peak_rss_kb: u64,
    /// Peak heap bytes (counting-allocator mark when the binary
    /// installs one, `VmHWM` otherwise — see `soda_bench::memtrack`).
    /// Process-wide and monotonic like `peak_rss_kb`.
    pub peak_rss_bytes: u64,
    /// FNV-1a over completed-request tuples + the drop count.
    pub trajectory_fingerprint: u64,
    /// FNV-1a over the rendered event log (0 with `obs` off).
    pub event_fingerprint: u64,
}

fn spec(name: &str, instances: u32) -> ServiceSpec {
    ServiceSpec {
        name: name.into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances,
        machine: M_SCALE,
        port: 8080,
    }
}

/// Per-host IP pool base. Fleets up to 60,000 hosts keep the historic
/// `10.{i/250}.{i%250}.0` dotted formula verbatim — the committed
/// fingerprints depend on these addresses — and larger fleets (the xl
/// tier) switch to flat arithmetic in 10/8: host `i` owns the 32
/// addresses starting at `10.0.0.0 + i·64`. The formulas never mix
/// within one run, and 100,000 × 64 stays far inside the /8.
pub fn host_ip(i: u32, hosts: u32) -> Ipv4Addr {
    if hosts <= 60_000 {
        format!("10.{}.{}.0", i / 250, i % 250)
            .parse()
            .expect("valid dotted quad below 60k hosts")
    } else {
        Ipv4Addr(0x0a00_0000 + i * 64)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(fp: u64, bytes: &[u8]) -> u64 {
    let mut fp = fp;
    for &b in bytes {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(FNV_PRIME);
    }
    fp
}

/// Peak resident-set size in kB from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        return kb.parse().unwrap_or(0);
                    }
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Run one grid point.
pub fn run(cfg: &ScaleConfig) -> ScaleResult {
    assert!(cfg.instances >= 1, "services need at least one instance");
    let wall_start = std::time::Instant::now();
    let daemons: Vec<SodaDaemon> = (1..=cfg.hosts)
        .map(|i| {
            SodaDaemon::new(HupHost::seattle(
                HostId(i),
                IpPool::new(host_ip(i, cfg.hosts), 32),
            ))
        })
        .collect();
    let mut world = SodaWorld::new(daemons);
    world.configure_storage(cfg.storage);
    let mut engine = Engine::with_seed_queue(world, cfg.seed, cfg.queue);
    engine.state_mut().configure_shards(cfg.kind);
    // Workload-derived capacity hint: the queue high-water mark tracks the
    // in-flight request population, itself bounded by the issue batch size
    // times the pipeline depth. Pre-paying the growth keeps re-allocation
    // out of the measured request phase.
    engine.reserve_events(
        usize::try_from(cfg.requests / 4)
            .unwrap_or(usize::MAX)
            .clamp(1024, 1 << 20),
    );
    if cfg.obs {
        engine.state_mut().enable_obs(1 << 16);
    }
    if cfg.profile {
        engine.enable_profiler();
    }

    // Fill the utility: every admission succeeds because the fleet's
    // instance capacity equals total demand exactly.
    let n_services = cfg.hosts * SERVICES_PER_HOST;
    let services: Vec<ServiceId> = (0..n_services)
        .map(|s| {
            create_service_driven(
                &mut engine,
                spec(&format!("svc{s}"), cfg.instances),
                "scaleco",
            )
            .expect("fleet sized to admit every service")
        })
        .collect();
    // Image downloads + bootstraps; ~20 concurrent downloads per NIC.
    let t_ready = SimTime::from_secs(300);
    engine.run_until(t_ready);
    assert_eq!(
        engine.state().creations.len(),
        n_services as usize,
        "every creation completes within the priming horizon"
    );
    let vsns = cfg.instances * n_services;

    // Request phase: a deterministic driver issues a fixed batch every
    // 10 ms, round-robin over services, until the budget is spent.
    let tick = SimDuration::from_millis(10);
    let ticks: u64 = 10_000; // 100 s of virtual time
    let batch = cfg.requests.div_ceil(ticks).max(1);
    let services = Rc::new(services);
    struct Driver {
        services: Rc<Vec<ServiceId>>,
        next: u64,
        remaining: u64,
        batch: u64,
        tick: SimDuration,
    }
    impl Driver {
        fn fire(mut self, w: &mut SodaWorld, ctx: &mut soda_sim::Ctx<SodaWorld>) {
            let n = self.batch.min(self.remaining);
            for _ in 0..n {
                let svc = self.services[(self.next % self.services.len() as u64) as usize];
                submit_request(w, ctx, svc, 2_000);
                self.next += 1;
            }
            self.remaining -= n;
            if self.remaining > 0 {
                let tick = self.tick;
                ctx.schedule_in_as("client_arrival", tick, move |w, ctx| self.fire(w, ctx));
            }
        }
    }
    let driver = Driver {
        services: Rc::clone(&services),
        next: 0,
        remaining: cfg.requests,
        batch,
        tick,
    };
    engine.schedule_at_as("client_arrival", t_ready, move |w, ctx| driver.fire(w, ctx));
    // Budget ÷ batch ticks of issue plus drain time.
    engine.run_until(t_ready + SimDuration::from_secs(200));

    let events = engine.events_executed();
    let peak_queue_depth = engine.peak_events_pending();
    let sim_secs = engine.now().as_secs_f64();
    let profile = engine.profile_report();
    let w = engine.state_mut();
    assert_eq!(
        w.completed.len() as u64 + w.dropped,
        cfg.requests,
        "every request completes or is counted dropped"
    );

    let mut fp = FNV_OFFSET;
    for r in &w.completed {
        fp = fnv_bytes(fp, &r.service.0.to_le_bytes());
        fp = fnv_bytes(fp, &r.vsn.0.to_le_bytes());
        fp = fnv_bytes(fp, &r.issued.as_nanos().to_le_bytes());
        fp = fnv_bytes(fp, &r.completed.as_nanos().to_le_bytes());
        fp = fnv_bytes(fp, &r.dataset.to_le_bytes());
    }
    fp = fnv_bytes(fp, &w.dropped.to_le_bytes());
    let trajectory_fingerprint = fp;

    let mut event_fingerprint = 0;
    if cfg.obs {
        let mut fp = FNV_OFFSET;
        if let Some(drained) = w.obs.drain_events() {
            for ev in &drained.events {
                fp = fnv_bytes(fp, ev.to_string().as_bytes());
            }
        }
        event_fingerprint = fp;
    }

    let wall_secs = wall_start.elapsed().as_secs_f64();
    ScaleResult {
        hosts: cfg.hosts,
        services: n_services,
        vsns,
        requests: cfg.requests,
        completed: w.completed.len() as u64,
        dropped: w.dropped,
        obs: cfg.obs,
        queue: match cfg.queue {
            QueueKind::Wheel => "wheel".to_string(),
            QueueKind::Heap => "heap".to_string(),
        },
        control_plane: cfg.kind.label(),
        storage: cfg.storage.label().to_string(),
        shards: w.shard_count(),
        shard_spills: w.shards.spills,
        shard_msgs_sent: w.shards.msgs_sent,
        shard_msgs_stale: w.shards.msgs_stale,
        events,
        wall_secs,
        sim_secs,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        requests_per_sec: cfg.requests as f64 / wall_secs.max(1e-9),
        peak_queue_depth,
        peak_live_flows: w.peak_live_flows as u64,
        peak_open_requests: w.peak_open_requests,
        profile,
        peak_rss_kb: peak_rss_kb(),
        peak_rss_bytes: crate::memtrack::peak_rss_bytes(),
        trajectory_fingerprint,
        event_fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_point_fills_fleet_and_serves_everything() {
        let r = run(&ScaleConfig {
            hosts: 4,
            requests: 2_000,
            ..ScaleConfig::default()
        });
        assert_eq!(r.services, 4 * SERVICES_PER_HOST);
        assert_eq!(r.vsns, 4 * r.services);
        assert_eq!(r.completed + r.dropped, 2_000);
        assert_eq!(r.dropped, 0, "unsaturated fleet drops nothing");
        assert!(r.peak_queue_depth > 0);
        assert_eq!(r.event_fingerprint, 0, "obs off");
    }

    #[test]
    fn same_seed_same_trajectory() {
        let cfg = ScaleConfig {
            hosts: 3,
            requests: 1_000,
            seed: 9,
            ..ScaleConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.trajectory_fingerprint, b.trajectory_fingerprint);
        assert_eq!(a.events, b.events);
    }

    /// The self-profiler only reads the host clock around handlers: a
    /// profiled run must walk the exact trajectory of a plain one, and
    /// its cost table must account for every event executed.
    #[test]
    fn profiler_is_trajectory_transparent_and_buckets_kinds() {
        let cfg = ScaleConfig {
            hosts: 3,
            requests: 1_000,
            seed: 5,
            ..ScaleConfig::default()
        };
        let plain = run(&cfg);
        let profiled = run(&ScaleConfig {
            profile: true,
            ..cfg
        });
        assert_eq!(
            plain.trajectory_fingerprint,
            profiled.trajectory_fingerprint
        );
        assert_eq!(plain.events, profiled.events);
        assert!(plain.profile.is_empty(), "profiler off by default");
        let counted: u64 = profiled.profile.iter().map(|e| e.count).sum();
        assert_eq!(counted, profiled.events, "every event lands in a bucket");
        for kind in ["client_arrival", "cpu_done", "nic_pump", "response_depart"] {
            assert!(
                profiled.profile.iter().any(|e| e.kind == kind),
                "expected event kind {kind} in the cost table"
            );
        }
    }

    /// One placement cell IS the monolith: a `Sharded(1)` run must walk
    /// the exact trajectory (and event log) of the `Monolith` oracle.
    #[test]
    fn sharded_one_cell_is_the_monolith() {
        let cfg = ScaleConfig {
            hosts: 4,
            requests: 2_000,
            seed: 23,
            obs: true,
            ..ScaleConfig::default()
        };
        let mono = run(&cfg);
        let one = run(&ScaleConfig {
            kind: ControlPlaneKind::Sharded(1),
            ..cfg
        });
        assert_eq!(mono.trajectory_fingerprint, one.trajectory_fingerprint);
        assert_eq!(mono.event_fingerprint, one.event_fingerprint);
        assert_eq!(mono.events, one.events);
        assert_eq!(one.shards, 1);
        assert_eq!(one.shard_spills, 0);
    }

    /// Four cells keep the conservation law and the admission totals of
    /// the monolith: every service admits, every request completes or
    /// is counted dropped.
    #[test]
    fn sharded_four_cells_conserve_requests() {
        let cfg = ScaleConfig {
            hosts: 4,
            requests: 2_000,
            seed: 23,
            kind: ControlPlaneKind::Sharded(4),
            ..ScaleConfig::default()
        };
        let r = run(&cfg);
        assert_eq!(r.shards, 4);
        assert_eq!(r.services, 4 * SERVICES_PER_HOST);
        assert_eq!(r.vsns, 4 * r.services);
        assert_eq!(r.completed + r.dropped, cfg.requests);
        assert_eq!(r.dropped, 0, "unsaturated fleet drops nothing");
    }

    /// The dense arena backend IS the ordered-map oracle: a full scale
    /// run on each must fingerprint (trajectory AND event log)
    /// identically, event for event.
    #[test]
    fn arena_and_map_storage_fingerprint_identically() {
        let cfg = ScaleConfig {
            hosts: 4,
            requests: 2_000,
            seed: 23,
            obs: true,
            storage: WorldStorageKind::Arena,
            ..ScaleConfig::default()
        };
        let arena = run(&cfg);
        let map = run(&ScaleConfig {
            storage: WorldStorageKind::Map,
            ..cfg
        });
        assert_eq!(arena.storage, "arena");
        assert_eq!(map.storage, "map");
        assert_eq!(arena.trajectory_fingerprint, map.trajectory_fingerprint);
        assert_eq!(arena.event_fingerprint, map.event_fingerprint);
        assert_eq!(arena.events, map.events);
    }

    /// The xl addressing formula stays verbatim-compatible below the
    /// 60k-host threshold and injective (with room for a /27 per host)
    /// above it.
    #[test]
    fn host_ip_formulas_agree_on_ranges() {
        assert_eq!(host_ip(1, 100), "10.0.1.0".parse().unwrap());
        assert_eq!(host_ip(251, 10_000), "10.1.1.0".parse().unwrap());
        assert_eq!(host_ip(60_000, 60_000), "10.240.0.0".parse().unwrap());
        assert_eq!(host_ip(1, 100_000), Ipv4Addr(0x0a00_0000 + 64));
        assert_eq!(
            host_ip(100_000, 100_000),
            Ipv4Addr(0x0a00_0000 + 100_000 * 64)
        );
    }

    /// The wheel and the heap are trajectory-identical end to end, not
    /// just at the queue API: a full scale run on each must fingerprint
    /// the same.
    #[test]
    fn queue_kinds_are_trajectory_identical() {
        let cfg = ScaleConfig {
            hosts: 3,
            requests: 1_000,
            seed: 17,
            obs: true,
            ..ScaleConfig::default()
        };
        let wheel = run(&cfg);
        let heap = run(&ScaleConfig {
            queue: QueueKind::Heap,
            ..cfg
        });
        assert_eq!(wheel.trajectory_fingerprint, heap.trajectory_fingerprint);
        assert_eq!(wheel.event_fingerprint, heap.event_fingerprint);
        assert_eq!(wheel.events, heap.events);
    }
}
