//! X-FAILOVER — Master crash with in-flight placements, warm-standby
//! recovery via checkpoint ⊕ journal replay.
//!
//! The scenario stacks the nastiest control-plane interleaving the
//! design must survive: a resize is mid-flight (image downloads on the
//! wire), a host has just been crashed (a recovery episode is active),
//! and *then* the Master process dies. While it is down, the data
//! plane keeps serving, an admission attempt is honestly refused, and
//! node boots that land find nobody listening. The warm standby
//! rebuilds from the journal, reconciles against daemon re-registration
//! (adopting survivors, scrubbing the dead into fresh epoch-stamped
//! episodes, re-driving the orphaned boots), and the refused admission
//! is retried successfully after takeover.
//!
//! Gates (all driver-checked, CI-enforced):
//! - exactly one takeover completes, with a non-empty journal replay;
//! - zero routed-to-dead-VSN violations across the whole run;
//! - drop accounting conserved: every issued request is either
//!   completed or counted dropped once the run quiesces;
//! - the full event log is bit-identical when the run repeats from the
//!   same seed.

use serde::Serialize;
use soda_core::recovery::{self, RecoveryConfig};
use soda_core::service::ServiceSpec;
use soda_core::world::{apply_fault, create_service_driven, resize_service_driven, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::pool::IpPool;
use soda_sim::{Engine, FaultPlan, FaultSpec, SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_workload::httpgen::PoissonGenerator;

/// Result of one failover run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MasterFailoverResult {
    /// The seed everything derives from.
    pub seed: u64,
    /// When the Master was crashed, seconds.
    pub crashed_at_secs: f64,
    /// When the standby finished takeover, seconds.
    pub recovered_at_secs: f64,
    /// Crash → takeover-complete latency, seconds.
    pub failover_secs: f64,
    /// Takeovers completed (the gate requires exactly 1).
    pub failovers: usize,
    /// Journal entries replayed on top of the checkpoint.
    pub replayed: usize,
    /// Checkpoint sequence the replay started from.
    pub checkpoint_seq: u64,
    /// Service records rebuilt from the journal.
    pub restored: usize,
    /// Running nodes adopted as-is at reconciliation.
    pub adopted: usize,
    /// Dead nodes scrubbed into fresh epoch-stamped episodes.
    pub scrubbed: usize,
    /// Daemon-side VSNs unknown to the rebuilt state, torn down.
    pub duplicates: usize,
    /// Boots buffered during the outage and re-driven at takeover.
    pub orphaned_boots: usize,
    /// Master epoch after takeover (starts at 1, so this is ≥ 2).
    pub epoch: u64,
    /// Whether the creation admitted just before the crash completed
    /// after takeover (its boots were orphaned, then re-driven).
    pub late_creation_done: bool,
    /// Admission attempts refused while the Master was down.
    pub refused_while_down: usize,
    /// Whether the refused admission succeeded on retry after takeover.
    pub requeued_admission_ok: bool,
    /// Journal entries appended over the run.
    pub journal_appended: u64,
    /// Compactions taken by the journal.
    pub checkpoints_taken: u64,
    /// Client requests completed.
    pub completed: u64,
    /// Client requests dropped (dead backends during the episode).
    pub dropped: u64,
    /// Requests issued by the generator.
    pub issued: u64,
    /// Routing-invariant violations (must be zero).
    pub invariant_violations: u64,
    /// Engine events executed.
    pub events: u64,
    /// Virtual time simulated, seconds.
    pub sim_secs: f64,
    /// FNV-1a fingerprint over the rendered event log.
    pub event_fingerprint: u64,
}

fn spec(name: &str, instances: u32) -> ServiceSpec {
    ServiceSpec {
        name: name.into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

/// Run the scenario once.
pub fn run(seed: u64) -> MasterFailoverResult {
    let daemons: Vec<SodaDaemon> = (1u32..=4)
        .map(|i| {
            SodaDaemon::new(HupHost::seattle(
                HostId(i),
                IpPool::new(format!("10.1.{i}.0").parse().expect("valid"), 8),
            ))
        })
        .collect();
    let mut engine = Engine::with_seed(SodaWorld::new(daemons), seed);
    engine.reserve_events(8 * 1024);
    engine.state_mut().enable_obs(1 << 16);

    let horizon = SimTime::from_secs(180);
    let web = create_service_driven(&mut engine, spec("web", 3), "webco").expect("admitted");
    let batch = create_service_driven(&mut engine, spec("batch", 2), "batchco").expect("admitted");
    engine.run_until(SimTime::from_secs(30));
    assert_eq!(engine.state().creations.len(), 2, "both creations finish");

    recovery::start_self_healing(&mut engine, RecoveryConfig::default(), horizon);
    engine.state_mut().recovery.set_priority(web, 10);
    engine.state_mut().recovery.set_priority(batch, 0);

    PoissonGenerator {
        service: web,
        dataset_bytes: 30_000,
        rate_rps: 15.0,
        start: SimTime::from_secs(30),
        end: SimTime::from_secs(150),
    }
    .start(&mut engine);

    // A deliberately slow standby (10 s watchdog) so the outage spans
    // the in-flight resize boots — they must land while nobody is
    // listening and be re-driven at takeover.
    engine.state_mut().failover.detection_delay = SimDuration::from_secs(10);

    // t=60: crash host 2 — a recovery episode will be mid-flight.
    // t=61.5: crash the Master while that episode (and the resize
    // below) are in the air.
    let plan = FaultPlan::new()
        .inject(SimTime::from_secs(60), FaultSpec::HostCrash { host: 2 })
        .inject(
            SimTime::from_secs(60) + SimDuration::from_millis(1_500),
            FaultSpec::MasterCrash,
        );
    plan.schedule(&mut engine, apply_fault);

    // t=61.4: crash one running web VSN on a surviving host, after the
    // last heartbeat round before the Master dies — the crash goes
    // unreported, so only takeover reconciliation can scrub it.
    engine.schedule_at_as(
        "late_vsn_crash",
        SimTime::from_secs(61) + SimDuration::from_millis(400),
        move |w: &mut SodaWorld, ctx| {
            let victim = w.master.service(web).and_then(|rec| {
                rec.nodes
                    .iter()
                    .find(|n| n.host != HostId(2))
                    .map(|n| n.vsn.0)
            });
            if let Some(vsn) = victim {
                apply_fault(w, ctx, FaultSpec::VsnCrash { vsn });
            }
        },
    );

    // Periodic routing-invariant sweep.
    engine.schedule_periodic(
        SimTime::from_secs(35),
        SimDuration::from_secs(5),
        horizon,
        |w: &mut SodaWorld, _ctx| {
            recovery::check_invariants(w);
            true
        },
    );

    // t=55: resize web 3 → 5 (an in-place widening — the Resize journal
    // entry must survive replay).
    engine.run_until(SimTime::from_secs(55));
    resize_service_driven(&mut engine, web, 5).expect("resize admitted");

    // t=59: admit a late service. Its image downloads are still on the
    // wire when the Master dies; the boots land during the outage, are
    // buffered as orphans, and complete the creation at takeover.
    engine.run_until(SimTime::from_secs(59));
    let late = create_service_driven(&mut engine, spec("late", 2), "latec").expect("admitted");

    // t=62: the Master is dead (crashed at 61.5, takeover ≥ 2 s away).
    // An admission attempt must be refused — honest unavailability, not
    // a silent queue.
    engine.run_until(SimTime::from_secs(62));
    let mut refused_while_down = 0;
    assert!(
        engine.state().master_is_down(),
        "master must still be down at t=62"
    );
    if create_service_driven(&mut engine, spec("spare", 1), "sparec").is_err() {
        refused_while_down += 1;
    }

    // t=80: the standby has taken over; the refused admission retries.
    engine.run_until(SimTime::from_secs(80));
    let requeued_admission_ok =
        create_service_driven(&mut engine, spec("spare", 1), "sparec").is_ok();

    engine.run_until(horizon);

    let events = engine.events_executed();
    let sim_secs = engine.now().as_secs_f64();
    let w = engine.state_mut();
    let issued = w.completed.len() as u64 + w.dropped;
    let late_creation_done = w.creations.iter().any(|c| c.reply.service == late);
    let rec = w
        .failover
        .records
        .first()
        .copied()
        .expect("takeover completed");

    // Fingerprint the full event log (FNV-1a over rendered lines).
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    if let Some(drained) = w.obs.drain_events() {
        for ev in &drained.events {
            for b in ev.to_string().bytes() {
                fp ^= u64::from(b);
                fp = fp.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }

    MasterFailoverResult {
        seed,
        crashed_at_secs: rec.crashed_at.as_secs_f64(),
        recovered_at_secs: rec.recovered_at.as_secs_f64(),
        failover_secs: rec
            .recovered_at
            .saturating_since(rec.crashed_at)
            .as_secs_f64(),
        failovers: w.failover.records.len(),
        replayed: rec.replayed,
        checkpoint_seq: rec.checkpoint_seq,
        restored: rec.restored,
        adopted: rec.adopted,
        scrubbed: rec.scrubbed,
        duplicates: rec.duplicates,
        orphaned_boots: rec.orphaned_boots,
        epoch: rec.epoch,
        late_creation_done,
        refused_while_down,
        requeued_admission_ok,
        journal_appended: w.journal.appended_total(),
        checkpoints_taken: w.journal.checkpoints_taken(),
        completed: w.completed.len() as u64,
        dropped: w.dropped,
        issued,
        invariant_violations: w.recovery.stats.invariant_violations,
        events,
        sim_secs,
        event_fingerprint: fp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_recovers_and_replays_bit_identically() {
        let a = run(11);
        assert_eq!(a.failovers, 1, "exactly one takeover");
        assert!(a.replayed > 0, "takeover replayed the journal tail");
        assert!(a.epoch >= 2, "epoch bumped at takeover");
        assert_eq!(a.invariant_violations, 0, "never route to a dead VSN");
        assert_eq!(a.refused_while_down, 1, "admission refused while down");
        assert!(a.requeued_admission_ok, "admission succeeds after takeover");
        assert!(a.orphaned_boots > 0, "late boots landed during the outage");
        assert!(
            a.late_creation_done,
            "orphaned creation completes at takeover"
        );
        assert!(
            a.scrubbed > 0,
            "host-2 casualties scrubbed at reconciliation"
        );
        assert_eq!(
            a.issued,
            a.completed + a.dropped,
            "drop accounting conserves"
        );
        let b = run(11);
        assert_eq!(
            a.event_fingerprint, b.event_fingerprint,
            "same seed must replay bit-identically"
        );
        assert_eq!(a, b, "the whole result is seed-deterministic");
    }
}
