//! Figure 6 — application-level slowdown: mean request response time in
//! three scenarios, across dataset sizes:
//!
//! 1. in one virtual service node, with service switch;
//! 2. directly on the host OS, with service switch;
//! 3. directly on the host OS, without service switch.
//!
//! The paper's observations: (1) > (2) > (3); "the slow-down factor is
//! much lower than the one indicated in Table 4; and it remains
//! approximately the same under different dataset sizes."

use serde::Serialize;
use soda_core::service::{ServiceId, ServiceSpec};
use soda_core::world::{create_service_driven, submit_request, submit_request_direct, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_sim::{Engine, SimDuration, SimTime};
use soda_vmm::isolation::ExecutionMode;
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_vmm::vsn::VsnId;
use soda_workload::datasets::DatasetPoint;

/// The three scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Scenario {
    /// VSN + switch (SODA's normal path).
    VsnWithSwitch,
    /// Host OS + switch.
    HostWithSwitch,
    /// Host OS, direct.
    HostDirect,
}

impl Scenario {
    /// All three in the paper's order.
    pub const ALL: [Scenario; 3] = [
        Scenario::VsnWithSwitch,
        Scenario::HostWithSwitch,
        Scenario::HostDirect,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::VsnWithSwitch => "vsn+switch",
            Scenario::HostWithSwitch => "host+switch",
            Scenario::HostDirect => "host-direct",
        }
    }
}

/// One (scenario, dataset size) cell.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// Scenario.
    pub scenario: Scenario,
    /// Dataset size, bytes.
    pub dataset_bytes: u64,
    /// Mean response time, seconds.
    pub mean_secs: f64,
}

fn one_node_world(seed: u64) -> (Engine<SodaWorld>, ServiceId, VsnId) {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    // As in Figure 4: the prototype's shaper was not yet deployed.
    engine.state_mut().shaping_enforced = false;
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 1,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let svc = create_service_driven(&mut engine, spec, "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 1);
    let vsn = engine.state().master.service(svc).expect("exists").nodes[0].vsn;
    (engine, svc, vsn)
}

/// Measure one scenario at one dataset size: `n_requests` paced
/// arrivals at the sweep point's rate, no other load ("in all three
/// scenarios, there is no other service load in the system").
pub fn run_cell(scenario: Scenario, point: &DatasetPoint, n_requests: u64, seed: u64) -> Cell {
    let (mut engine, svc, vsn) = one_node_world(seed);
    match scenario {
        Scenario::VsnWithSwitch => {}
        Scenario::HostWithSwitch | Scenario::HostDirect => {
            engine
                .state_mut()
                .set_execution_mode(svc, vsn, ExecutionMode::HostDirect);
        }
    }
    let t0 = engine.now() + SimDuration::from_secs(1);
    let gap = SimDuration::from_secs_f64(1.0 / point.rate_rps);
    let dataset = point.dataset_bytes;
    for i in 0..n_requests {
        let at = t0 + gap * i;
        match scenario {
            Scenario::HostDirect => {
                engine.schedule_at(at, move |w: &mut SodaWorld, ctx| {
                    submit_request_direct(w, ctx, svc, vsn, dataset);
                });
            }
            _ => {
                engine.schedule_at(at, move |w: &mut SodaWorld, ctx| {
                    submit_request(w, ctx, svc, dataset);
                });
            }
        }
    }
    engine.run_until(t0 + gap * n_requests + SimDuration::from_secs(120));
    let world = engine.state();
    assert_eq!(
        world.completed.len() as u64,
        n_requests,
        "dropped {}",
        world.dropped
    );
    let mean = world.mean_response(vsn, SimTime::ZERO);
    Cell {
        scenario,
        dataset_bytes: point.dataset_bytes,
        mean_secs: mean,
    }
}

/// Run the full grid.
pub fn run(sweep: &[DatasetPoint], n_requests: u64, seed: u64) -> Vec<Cell> {
    let mut out = Vec::new();
    for p in sweep {
        for s in Scenario::ALL {
            out.push(run_cell(s, p, n_requests, seed));
        }
    }
    out
}

/// Slowdown factors (scenario 1 / scenario 3) per dataset size.
pub fn slowdown_factors(cells: &[Cell]) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    let sizes: Vec<u64> = {
        let mut s: Vec<u64> = cells.iter().map(|c| c.dataset_bytes).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for size in sizes {
        let get = |sc: Scenario| {
            cells
                .iter()
                .find(|c| c.scenario == sc && c.dataset_bytes == size)
                .map(|c| c.mean_secs)
        };
        if let (Some(vsn), Some(direct)) = (get(Scenario::VsnWithSwitch), get(Scenario::HostDirect))
        {
            if direct > 0.0 {
                out.push((size, vsn / direct));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_workload::datasets::FIG6_SWEEP;

    #[test]
    fn ordering_and_modest_flat_slowdown() {
        let cells = run(&FIG6_SWEEP[..3], 40, 11);
        for size in [10_000u64, 50_000, 100_000] {
            let get = |sc: Scenario| {
                cells
                    .iter()
                    .find(|c| c.scenario == sc && c.dataset_bytes == size)
                    .unwrap()
                    .mean_secs
            };
            let c1 = get(Scenario::VsnWithSwitch);
            let c2 = get(Scenario::HostWithSwitch);
            let c3 = get(Scenario::HostDirect);
            assert!(c1 > c2, "{size}: vsn {c1} !> host+switch {c2}");
            assert!(c2 > c3, "{size}: host+switch {c2} !> direct {c3}");
        }
        let factors = slowdown_factors(&cells);
        for (size, f) in &factors {
            // Far below Table 4's ~22×, and above 1.
            assert!(*f > 1.0 && *f < 2.0, "{size}: factor {f}");
        }
        // Approximately constant across sizes: max/min < 1.5.
        let fs: Vec<f64> = factors.iter().map(|&(_, f)| f).collect();
        let max = fs.iter().cloned().fold(f64::MIN, f64::max);
        let min = fs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.6, "factors vary too much: {fs:?}");
    }
}
