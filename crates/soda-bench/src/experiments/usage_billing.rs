//! X-BILL — reservation-based vs usage-based billing.
//!
//! The Agent bills reserved machine-instance-hours (§2.2's "billing").
//! With per-uid CPU accounting in the host OS, the natural refinement is
//! billing *consumption*. The experiment runs the Figure 5 node mix for
//! an hour of simulated CPU time and compares what each node would pay
//! under the two models — quantifying the incentive the flat-rate model
//! gives to hogs and the penalty it puts on bursty tenants.

use serde::Serialize;
use soda_hostos::accounting::CpuAccounting;
use soda_hostos::process::Uid;
use soda_hostos::sched::{CpuScheduler, ProportionalShareScheduler};
use soda_sim::{SimDuration, SimTime};
use soda_workload::loads::{Fig5Workload, LoadKind};

/// One node's bill comparison.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Node label.
    pub node: &'static str,
    /// CPU-seconds actually consumed.
    pub used_cpu_secs: f64,
    /// Bill under flat reservation (every node reserved 1/3 of the
    /// host-hour).
    pub reserved_bill: f64,
    /// Bill under usage-based metering at the same effective rate.
    pub usage_bill: f64,
}

/// Run the Figure 5 mix for `secs` and price both models at
/// `rate_per_cpu_hour`.
pub fn run(secs: u64, rate_per_cpu_hour: f64, seed: u64) -> Vec<Row> {
    const TICK: SimDuration = SimDuration::from_millis(10);
    let mut sched = ProportionalShareScheduler::new(100);
    for uid in [Uid(1), Uid(2), Uid(3)] {
        sched.set_share(uid, 100);
    }
    let mut workload = Fig5Workload::custom(
        seed,
        &[
            (Uid(1), LoadKind::Web),
            (Uid(2), LoadKind::Comp),
            (Uid(3), LoadKind::Log),
        ],
    );
    let mut acc = CpuAccounting::new();
    let ticks = secs * 1_000 / TICK.as_millis();
    let mut now = SimTime::ZERO;
    for _ in 0..ticks {
        let procs = workload.tick();
        let grants = sched.allocate(&procs);
        acc.record_tick(now, TICK, &procs, &grants);
        now += TICK;
    }
    let reserved_bill = secs as f64 / 3600.0 / 3.0 * rate_per_cpu_hour;
    [("web", Uid(1)), ("comp", Uid(2)), ("log", Uid(3))]
        .into_iter()
        .map(|(label, uid)| Row {
            node: label,
            used_cpu_secs: acc.used_secs(uid),
            reserved_bill,
            usage_bill: acc.bill(uid, rate_per_cpu_hour),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_billing_tracks_consumption() {
        let rows = run(600, 60.0, 11);
        assert_eq!(rows.len(), 3);
        // All three reserved the same; comp consumed at least as much as
        // it reserved (it soaks every surplus), web consumed less than
        // comp.
        let web = &rows[0];
        let comp = &rows[1];
        assert_eq!(web.reserved_bill, comp.reserved_bill);
        assert!(comp.usage_bill >= web.usage_bill);
        // Under full overload the three usage bills sum to the host's
        // total capacity × rate (work conservation).
        let total_usage: f64 = rows.iter().map(|r| r.usage_bill).sum();
        let capacity_bill = 600.0 / 3600.0 * 60.0;
        assert!(
            (total_usage - capacity_bill).abs() < 0.01 * capacity_bill,
            "{total_usage} vs {capacity_bill}"
        );
        // And usage == share × capacity in seconds.
        for r in &rows {
            assert!(r.used_cpu_secs > 0.0 && r.used_cpu_secs < 600.0);
        }
    }

    #[test]
    fn deterministic() {
        let a = run(60, 10.0, 3);
        let b = run(60, 10.0, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.used_cpu_secs, y.used_cpu_secs);
        }
    }
}
