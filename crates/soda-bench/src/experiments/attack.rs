//! §5 "Attack isolation" — the honeypot is constantly attacked and
//! crashed; the co-hosted web content service is not affected. The
//! counterfactual (honeypot running directly on the host OS) shows the
//! blast radius SODA prevents.

use serde::Serialize;
use soda_core::service::ServiceSpec;
use soda_core::world::{create_service_driven, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_sim::{Availability, Engine, SimDuration, SimTime};
use soda_vmm::isolation::ExecutionMode;
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_workload::attack::AttackCampaign;
use soda_workload::httpgen::PoissonGenerator;

/// Result of one isolation run.
#[derive(Clone, Debug, Serialize)]
pub struct IsolationResult {
    /// Honeypot execution mode label.
    pub honeypot_mode: &'static str,
    /// Times the honeypot guest crashed.
    pub honeypot_crashes: u32,
    /// Web requests completed during the campaign.
    pub web_completed: u64,
    /// Web requests offered (completed + dropped).
    pub web_offered: u64,
    /// Web mean response time during the campaign, seconds.
    pub web_mean_secs: f64,
    /// Did the web node co-hosted on seattle crash?
    pub web_cohosted_crashed: bool,
    /// Honeypot uptime fraction over the campaign (sampled at 1 s).
    pub honeypot_availability: f64,
    /// Co-hosted web node uptime fraction over the campaign.
    pub web_cohosted_availability: f64,
}

/// Run the experiment with the honeypot in the given execution mode.
pub fn run(guest_isolated: bool, secs: u64, seed: u64) -> IsolationResult {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    let m = ResourceVector::TABLE1_EXAMPLE;
    let web = create_service_driven(
        &mut engine,
        ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: 3,
            machine: m,
            port: 8080,
        },
        "webco",
    )
    .expect("web admitted");
    let honeypot = create_service_driven(
        &mut engine,
        ServiceSpec {
            name: "honeypot".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: m,
            port: 80,
        },
        "seclab",
    )
    .expect("honeypot admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 2);

    let hp_vsn = engine
        .state()
        .master
        .service(honeypot)
        .expect("exists")
        .nodes[0]
        .vsn;
    if !guest_isolated {
        engine
            .state_mut()
            .set_execution_mode(honeypot, hp_vsn, ExecutionMode::HostDirect);
    }

    let t0 = engine.now();
    PoissonGenerator {
        service: web,
        dataset_bytes: 50_000,
        rate_rps: 20.0,
        start: t0,
        end: t0 + SimDuration::from_secs(secs),
    }
    .start(&mut engine);
    AttackCampaign {
        service: honeypot,
        vsn: hp_vsn,
        period: SimDuration::from_secs(30),
        start: t0 + SimDuration::from_secs(2),
        end: t0 + SimDuration::from_secs(secs),
        revive: guest_isolated, // host-direct compromise is not revived
    }
    .start(&mut engine);

    // Drive the campaign in 1 s steps, sampling both nodes' liveness
    // into availability trackers.
    let hp_host0 = engine
        .state()
        .master
        .service(honeypot)
        .expect("exists")
        .nodes[0]
        .host;
    let web_cohosted_vsn = engine
        .state()
        .master
        .service(web)
        .expect("exists")
        .nodes
        .iter()
        .find(|n| n.host == hp_host0)
        .expect("co-hosted")
        .vsn;
    let mut hp_avail = Availability::starting(t0, true);
    let mut web_avail = Availability::starting(t0, true);
    let end = t0 + SimDuration::from_secs(secs);
    let mut t = t0;
    while t < end {
        t += SimDuration::from_secs(1);
        engine.run_until(t);
        let w = engine.state();
        let d = w
            .daemons
            .iter()
            .find(|d| d.host.id == hp_host0)
            .expect("host");
        hp_avail.set(t, d.vsn(hp_vsn).map(|v| v.is_running()).unwrap_or(false));
        web_avail.set(
            t,
            d.vsn(web_cohosted_vsn)
                .map(|v| v.is_running())
                .unwrap_or(false),
        );
    }
    let honeypot_availability = hp_avail.uptime_fraction(end);
    let web_cohosted_availability = web_avail.uptime_fraction(end);
    engine.run_until(t0 + SimDuration::from_secs(secs + 120));

    let world = engine.state();
    let hp_rec = world.master.service(honeypot).expect("exists");
    let hp_host = hp_rec.nodes[0].host;
    let hp_daemon = world
        .daemons
        .iter()
        .find(|d| d.host.id == hp_host)
        .expect("host");
    let web_rec = world.master.service(web).expect("exists");
    let web_cohosted = web_rec
        .nodes
        .iter()
        .find(|n| n.host == hp_host)
        .expect("co-hosted");
    let web_daemon = world
        .daemons
        .iter()
        .find(|d| d.host.id == hp_host)
        .expect("host");
    let web_crashed = web_daemon
        .vsn(web_cohosted.vsn)
        .map(|v| v.crash_count > 0)
        .unwrap_or(true);

    let sw = world.master.switch(web).expect("switch");
    let completed: u64 = sw.served_counts().iter().sum();
    let mean = {
        let ms = sw.mean_responses();
        let served = sw.served_counts();
        let total: f64 = ms.iter().zip(&served).map(|(m, &n)| m * n as f64).sum();
        if completed == 0 {
            0.0
        } else {
            total / completed as f64
        }
    };
    IsolationResult {
        honeypot_mode: if guest_isolated {
            "guest-isolated (SODA)"
        } else {
            "host-direct"
        },
        honeypot_crashes: hp_daemon.vsn(hp_vsn).map(|v| v.crash_count).unwrap_or(0),
        web_completed: completed,
        web_offered: completed + world.dropped,
        web_mean_secs: mean,
        web_cohosted_crashed: web_crashed,
        honeypot_availability,
        web_cohosted_availability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soda_isolates_the_attack() {
        let r = run(true, 120, 3);
        assert!(
            r.honeypot_crashes >= 3,
            "attacked repeatedly: {}",
            r.honeypot_crashes
        );
        assert!(!r.web_cohosted_crashed, "web node must survive");
        // No web request is lost to the attacks.
        assert_eq!(r.web_completed, r.web_offered, "no drops");
        assert!(r.web_mean_secs > 0.0 && r.web_mean_secs < 1.0);
        // The honeypot spends real time down (crash → re-prime cycles);
        // the co-hosted web node never does.
        assert!(
            r.honeypot_availability < 0.95,
            "{}",
            r.honeypot_availability
        );
        assert!(r.honeypot_availability > 0.5, "re-priming brings it back");
        assert!(
            r.web_cohosted_availability > 0.999,
            "{}",
            r.web_cohosted_availability
        );
    }

    #[test]
    fn host_direct_counterfactual_takes_web_down() {
        let r = run(false, 120, 3);
        assert!(
            r.web_cohosted_crashed,
            "host compromise kills co-hosted web node"
        );
        // Offered exceeds completed: requests routed to the dead node
        // after the first crash are lost until WRR health-outs it —
        // and the service runs degraded on tacoma alone.
        assert!(r.honeypot_crashes >= 1);
        // The co-hosted web node is down for most of the campaign.
        assert!(
            r.web_cohosted_availability < 0.1,
            "{}",
            r.web_cohosted_availability
        );
    }
}
