//! X-FED — federated wide-area HUPs (§3.5): demand overflow from a
//! small preferred site into peers, and the WAN image-shipping cost
//! paid for remote placement.

use serde::Serialize;
use soda_core::federation::{Federation, Site, SiteId};
use soda_core::master::SodaMaster;
use soda_core::service::ServiceSpec;
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::link::LinkSpec;
use soda_net::pool::IpPool;
use soda_sim::{SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;

/// Outcome of the overflow experiment.
#[derive(Clone, Debug, Serialize)]
pub struct FederationResult {
    /// Requests placed at the preferred (home) site.
    pub placed_home: u32,
    /// Requests placed at a remote site.
    pub placed_remote: u32,
    /// Requests rejected federation-wide.
    pub rejected: u32,
    /// Mean extra creation seconds paid by remote placements (WAN
    /// shipping).
    pub mean_wan_secs: f64,
}

fn site(id: u32, hosts: u32) -> Site {
    let daemons = (0..hosts)
        .map(|i| {
            SodaDaemon::new(HupHost::seattle(
                HostId(id * 100 + i),
                IpPool::new(format!("10.{id}.{i}.0").parse().expect("valid"), 16),
            ))
        })
        .collect();
    Site {
        id: SiteId(id),
        name: format!("site{id}"),
        master: SodaMaster::new(),
        daemons,
    }
}

/// Offer `requests` single-instance services to a small home site
/// federated with two larger peers.
pub fn run(requests: u32) -> FederationResult {
    let mut fed = Federation::new(vec![site(1, 1), site(2, 2), site(3, 3)]);
    fed.connect(
        SiteId(1),
        SiteId(2),
        LinkSpec::wan(20.0, SimDuration::from_millis(25)),
    );
    fed.connect(
        SiteId(1),
        SiteId(3),
        LinkSpec::wan(20.0, SimDuration::from_millis(70)),
    );
    let image = RootFsCatalog::new().base_1_0();
    let mut placed_home = 0;
    let mut placed_remote = 0;
    let mut rejected = 0;
    let mut wan_total = 0.0;
    for i in 0..requests {
        let spec = ServiceSpec {
            name: format!("svc{i}"),
            image: image.clone(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        };
        match fed.create_service(spec, "asp", SiteId(1), SimTime::ZERO) {
            Ok(r) if r.site == SiteId(1) => placed_home += 1,
            Ok(r) => {
                placed_remote += 1;
                wan_total += r.wan_transfer.as_secs_f64();
            }
            Err(_) => rejected += 1,
        }
    }
    FederationResult {
        placed_home,
        placed_remote,
        rejected,
        mean_wan_secs: if placed_remote > 0 {
            wan_total / placed_remote as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_spills_to_peers_then_rejects() {
        let r = run(30);
        assert!(r.placed_home >= 1, "home site takes some");
        assert!(
            r.placed_remote > r.placed_home,
            "most overflow to the bigger peers"
        );
        assert!(r.rejected > 0, "eventually the federation fills");
        assert_eq!(r.placed_home + r.placed_remote + r.rejected, 30);
        // 29.3 MB at 20 Mbps ≈ 12 s of WAN shipping.
        assert!(
            (8.0..20.0).contains(&r.mean_wan_secs),
            "wan {}",
            r.mean_wan_secs
        );
    }
}
