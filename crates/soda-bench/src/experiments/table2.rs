//! Table 2 — service bootstrapping time for four application services
//! on both testbed hosts.

use serde::Serialize;
use soda_vmm::bootstrap::{BootstrapHostProfile, BootstrapModel};
use soda_vmm::rootfs::RootFsImage;
use soda_vmm::sysservices::StartupClass;

/// Paper-reported seconds (seattle, tacoma) per row, for comparison.
pub const PAPER_SECONDS: [(&str, f64, f64); 4] = [
    ("S_I", 3.0, 4.0),
    ("S_II", 2.0, 3.0),
    ("S_III", 4.0, 16.0),
    ("S_IV", 22.0, 42.0),
];

/// One reproduced row of Table 2.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// `S_I` … `S_IV`.
    pub service: &'static str,
    /// Linux configuration (image name).
    pub linux_configuration: String,
    /// Image size in bytes.
    pub image_bytes: u64,
    /// Bootstrap seconds on *seattle*.
    pub seattle_secs: f64,
    /// Bootstrap seconds on *tacoma*.
    pub tacoma_secs: f64,
    /// Stage breakdown on seattle (customize, mount, kernel, services,
    /// app), seconds.
    pub seattle_stages: [f64; 5],
}

/// The four (label, image, required-services, app-class) rows.
pub fn rows(
    model: &BootstrapModel,
) -> Vec<(&'static str, RootFsImage, Vec<&'static str>, StartupClass)> {
    let c = model.catalog();
    vec![
        (
            "S_I",
            c.base_1_0(),
            vec!["network", "syslogd"],
            StartupClass::Light,
        ),
        ("S_II", c.tomsrtbt(), vec!["network"], StartupClass::Light),
        (
            "S_III",
            c.lfs_4_0(),
            vec!["network", "syslogd", "sshd"],
            StartupClass::Light,
        ),
        (
            "S_IV",
            c.rh72_server_pristine(),
            vec!["httpd"],
            StartupClass::Light,
        ),
    ]
}

/// Reproduce the table.
pub fn run() -> Vec<Row> {
    let model = BootstrapModel::new();
    let seattle = BootstrapHostProfile::seattle();
    let tacoma = BootstrapHostProfile::tacoma();
    rows(&model)
        .into_iter()
        .map(|(label, image, required, class)| {
            let (_, ts) = model.timing(&seattle, &image, &required, class);
            let (_, tt) = model.timing(&tacoma, &image, &required, class);
            Row {
                service: label,
                linux_configuration: image.name.clone(),
                image_bytes: image.total_bytes(),
                seattle_secs: ts.total().as_secs_f64(),
                tacoma_secs: tt.total().as_secs_f64(),
                seattle_stages: [
                    ts.customize.as_secs_f64(),
                    ts.mount.as_secs_f64(),
                    ts.kernel_boot.as_secs_f64(),
                    ts.services_start.as_secs_f64(),
                    ts.app_start.as_secs_f64(),
                ],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_shape() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        // Ordering S_II < S_I < S_III << S_IV on both hosts.
        assert!(rows[1].seattle_secs < rows[0].seattle_secs);
        assert!(rows[0].seattle_secs < rows[2].seattle_secs);
        assert!(rows[3].seattle_secs > 2.0 * rows[2].seattle_secs);
        for r in &rows {
            assert!(r.tacoma_secs > r.seattle_secs, "{}", r.service);
            let sum: f64 = r.seattle_stages.iter().sum();
            assert!((sum - r.seattle_secs).abs() < 1e-6);
        }
        // S_III is the biggest image but not the slowest boot.
        let s3 = &rows[2];
        let s4 = &rows[3];
        assert!(s3.image_bytes > s4.image_bytes);
        assert!(s3.seattle_secs < s4.seattle_secs);
    }

    #[test]
    fn within_2x_of_paper_numbers() {
        let rows = run();
        for (r, (label, ps, pt)) in rows.iter().zip(PAPER_SECONDS) {
            assert_eq!(r.service, label);
            assert!(
                r.seattle_secs > ps / 2.0 && r.seattle_secs < ps * 2.0,
                "{label} seattle {} vs paper {ps}",
                r.seattle_secs
            );
            assert!(
                r.tacoma_secs > pt / 2.0 && r.tacoma_secs < pt * 2.0,
                "{label} tacoma {} vs paper {pt}",
                r.tacoma_secs
            );
        }
    }
}
