//! Figure 4 — per-node mean response time of the web content service
//! under weighted-round-robin 2:1 switching, across six dataset sizes.
//!
//! The paper's observations to reproduce: "the requests served by the
//! node in seattle is approximately twice as many as those served by the
//! node in tacoma. More importantly, the request response time achieved
//! by the two nodes are approximately the same."

use serde::Serialize;
use soda_core::service::{ServiceId, ServiceSpec};
use soda_core::world::{create_service_driven, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_sim::{Engine, SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_workload::datasets::DatasetPoint;
use soda_workload::httpgen::{ClosedLoopGenerator, PoissonGenerator};

/// One sweep point's result.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Dataset size, bytes.
    pub dataset_bytes: u64,
    /// Offered rate, requests/second.
    pub rate_rps: f64,
    /// Requests served by the seattle node (capacity 2M).
    pub seattle_served: u64,
    /// Requests served by the tacoma node (capacity 1M).
    pub tacoma_served: u64,
    /// Mean response time at the seattle node, seconds.
    pub seattle_mean_secs: f64,
    /// Mean response time at the tacoma node, seconds.
    pub tacoma_mean_secs: f64,
}

impl Row {
    /// served ratio seattle/tacoma (paper: ≈ 2).
    pub fn served_ratio(&self) -> f64 {
        self.seattle_served as f64 / self.tacoma_served.max(1) as f64
    }

    /// response-time ratio seattle/tacoma (paper: ≈ 1).
    pub fn response_ratio(&self) -> f64 {
        if self.tacoma_mean_secs == 0.0 {
            return f64::INFINITY;
        }
        self.seattle_mean_secs / self.tacoma_mean_secs
    }
}

/// Build the standard web service world and return (engine, service,
/// the two backend VSN ids in (seattle, tacoma) order).
pub fn web_world(seed: u64) -> (Engine<SodaWorld>, ServiceId) {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    // §4.2: the traffic shaper was still being implemented when the §5
    // client experiments ran; replicate that condition.
    engine.state_mut().shaping_enforced = false;
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let svc = create_service_driven(&mut engine, spec, "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 1, "creation must finish");
    (engine, svc)
}

/// Reduce a finished world to the figure's per-node row.
fn row_from(world: &SodaWorld, svc: ServiceId, point: &DatasetPoint) -> Row {
    let nodes = &world.master.service(svc).expect("exists").nodes;
    let (seattle_vsn, tacoma_vsn) = (nodes[0].vsn, nodes[1].vsn);
    let sw = world.master.switch(svc).expect("switch");
    let i_s = sw.index_of(seattle_vsn).expect("backend");
    let i_t = sw.index_of(tacoma_vsn).expect("backend");
    Row {
        dataset_bytes: point.dataset_bytes,
        rate_rps: point.rate_rps,
        seattle_served: sw.served_counts()[i_s],
        tacoma_served: sw.served_counts()[i_t],
        seattle_mean_secs: sw.mean_responses()[i_s],
        tacoma_mean_secs: sw.mean_responses()[i_t],
    }
}

/// Run one sweep point for `measure_secs` of load.
pub fn run_point(point: &DatasetPoint, measure_secs: u64, seed: u64) -> Row {
    let (mut engine, svc) = web_world(seed);
    let t0 = engine.now() + SimDuration::from_secs(5);
    PoissonGenerator {
        service: svc,
        dataset_bytes: point.dataset_bytes,
        rate_rps: point.rate_rps,
        start: t0,
        end: t0 + SimDuration::from_secs(measure_secs),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(measure_secs + 120));
    row_from(engine.state(), svc, point)
}

/// Everything a traced sweep point yields beyond the figure's row.
pub struct TracedPoint {
    /// The figure row (identical to an untraced run's — tracing must be
    /// observer-transparent).
    pub row: Row,
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub chrome_trace: serde::Value,
    /// Per-trace critical-path breakdown (see `Tracer::critical_paths_value`).
    pub critical_paths: serde::Value,
    /// Sampled traces kept.
    pub traces_kept: usize,
    /// `(request key, measured response time ns)` for every completed
    /// request, so critical paths join back to measured times.
    pub completed: Vec<(u64, u64)>,
    /// The run's full metric snapshot (per-backend response-time
    /// histograms, dispatch/drop counters) — the file `soda-cli obs`
    /// digests.
    pub snapshot: soda_sim::RegistrySnapshot,
}

/// [`run_point`] with observability and causal tracing on: the same
/// deterministic trajectory, plus a head-sampled (1-in-`sample_one_in`,
/// salted by `seed`) set of end-to-end request traces exported as
/// Chrome trace-event JSON and critical-path breakdowns.
pub fn run_point_traced(
    point: &DatasetPoint,
    measure_secs: u64,
    seed: u64,
    sample_one_in: u64,
) -> TracedPoint {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    engine.state_mut().shaping_enforced = false;
    engine.state_mut().enable_obs(1 << 16);
    // Salt from the seed: the same run always samples the same keys,
    // different seeds sample different ones.
    engine
        .state_mut()
        .obs
        .enable_tracing(seed ^ 0x50DA_50DA, sample_one_in, 1 << 16);
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let svc = create_service_driven(&mut engine, spec, "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 1, "creation must finish");
    let t0 = engine.now() + SimDuration::from_secs(5);
    PoissonGenerator {
        service: svc,
        dataset_bytes: point.dataset_bytes,
        rate_rps: point.rate_rps,
        start: t0,
        end: t0 + SimDuration::from_secs(measure_secs),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(measure_secs + 120));
    let world = engine.state();
    TracedPoint {
        row: row_from(world, svc, point),
        chrome_trace: world.obs.chrome_trace().expect("obs enabled"),
        critical_paths: world.obs.critical_paths().expect("obs enabled"),
        traces_kept: world.obs.with(|inner| inner.tracer.len()).unwrap_or(0),
        completed: world
            .completed
            .iter()
            .map(|r| (r.request.0, r.response_time().as_nanos()))
            .collect(),
        snapshot: world.obs.snapshot().expect("obs enabled"),
    }
}

/// Run the full sweep.
pub fn run(sweep: &[DatasetPoint], measure_secs: u64, seed: u64) -> Vec<Row> {
    sweep
        .iter()
        .map(|p| run_point(p, measure_secs, seed))
        .collect()
}

/// The same measurement under *closed-loop* (siege-faithful) clients:
/// `clients` virtual users, think time tuned so the offered rate
/// approximates the open-loop point. The paper's generator was siege,
/// so this variant is the methodological cross-check: the 2:1 split and
/// response-time equality must hold under both arrival disciplines.
pub fn run_point_closed(point: &DatasetPoint, clients: u32, measure_secs: u64, seed: u64) -> Row {
    let (mut engine, svc) = web_world(seed);
    let t0 = engine.now() + SimDuration::from_secs(5);
    // rate ≈ clients / (think + response); response ≪ think at these
    // loads, so think ≈ clients / rate.
    let think = SimDuration::from_secs_f64(clients as f64 / point.rate_rps);
    ClosedLoopGenerator {
        service: svc,
        dataset_bytes: point.dataset_bytes,
        clients,
        mean_think: think,
        start: t0,
        end: t0 + SimDuration::from_secs(measure_secs),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(measure_secs + 120));
    row_from(engine.state(), svc, point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_workload::datasets::FIG4_SWEEP;

    #[test]
    fn figure4_shape_holds() {
        // Shorter measurement window in tests; the bin uses a longer one.
        let rows = run(&FIG4_SWEEP[..3], 60, 1);
        for r in &rows {
            // ≈2× served.
            let ratio = r.served_ratio();
            assert!(
                (1.7..2.3).contains(&ratio),
                "{}B served ratio {ratio}",
                r.dataset_bytes
            );
            // ≈ equal response times (within 35%).
            let rr = r.response_ratio();
            assert!(
                (0.65..1.55).contains(&rr),
                "{}B response ratio {rr}",
                r.dataset_bytes
            );
            assert!(r.seattle_mean_secs > 0.0);
        }
        // Response time grows with dataset size.
        assert!(rows[2].seattle_mean_secs > rows[0].seattle_mean_secs);
    }

    /// Acceptance for the tracing tentpole: a traced run walks the same
    /// trajectory as an untraced one, its export is shaped like Chrome
    /// trace-event JSON, and every sampled request's critical-path
    /// phases sum exactly to that request's measured response time.
    #[test]
    fn traced_point_is_transparent_and_critical_paths_sum() {
        let plain = run_point(&FIG4_SWEEP[0], 30, 3);
        let traced = run_point_traced(&FIG4_SWEEP[0], 30, 3, 4);
        assert_eq!(plain.seattle_served, traced.row.seattle_served);
        assert_eq!(plain.tacoma_served, traced.row.tacoma_served);
        assert_eq!(plain.seattle_mean_secs, traced.row.seattle_mean_secs);
        assert_eq!(plain.tacoma_mean_secs, traced.row.tacoma_mean_secs);
        assert!(traced.traces_kept > 0, "1-in-4 sampling must keep traces");

        // Chrome trace-event shape: complete events with ts/dur, µs.
        let serde::Value::Array(events) = traced
            .chrome_trace
            .get("traceEvents")
            .expect("traceEvents key")
        else {
            panic!("traceEvents must be an array");
        };
        assert!(!events.is_empty());
        for e in events {
            assert_eq!(e.get("ph").and_then(serde::Value::as_str), Some("X"));
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("tid").is_some() && e.get("name").is_some());
        }

        // Critical paths tile the trace and equal the measured times.
        let by_key: std::collections::HashMap<u64, u64> =
            traced.completed.iter().copied().collect();
        let serde::Value::Array(paths) = &traced.critical_paths else {
            panic!("critical paths must be an array");
        };
        let mut matched = 0u64;
        for p in paths {
            if p.get("track").and_then(serde::Value::as_str) != Some("request") {
                continue;
            }
            let key = p.get("key").and_then(serde::Value::as_u64).expect("key");
            let total = p
                .get("total_ns")
                .and_then(serde::Value::as_u64)
                .expect("total_ns");
            let serde::Value::Array(phases) = p.get("phases").expect("phases") else {
                panic!("phases must be an array");
            };
            let sum: u64 = phases
                .iter()
                .map(|ph| ph.get("dur_ns").and_then(serde::Value::as_u64).unwrap_or(0))
                .sum();
            assert_eq!(sum, total, "phases must tile the request trace");
            if let Some(&rt) = by_key.get(&key) {
                assert_eq!(total, rt, "critical path != measured response time");
                matched += 1;
            }
        }
        assert!(matched > 10, "only {matched} sampled requests verified");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_point(&FIG4_SWEEP[0], 20, 5);
        let b = run_point(&FIG4_SWEEP[0], 20, 5);
        assert_eq!(a.seattle_served, b.seattle_served);
        assert_eq!(a.seattle_mean_secs, b.seattle_mean_secs);
    }

    #[test]
    fn closed_loop_reproduces_the_shape() {
        // siege-style clients: same 2:1 split and near-equal response
        // times as the open-loop measurement.
        let r = run_point_closed(&FIG4_SWEEP[1], 12, 60, 2);
        assert!(
            (1.7..2.3).contains(&r.served_ratio()),
            "{}",
            r.served_ratio()
        );
        assert!(
            (0.6..1.6).contains(&r.response_ratio()),
            "{}",
            r.response_ratio()
        );
        assert!(r.seattle_served + r.tacoma_served > 500, "enough samples");
    }
}
