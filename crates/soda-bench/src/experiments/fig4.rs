//! Figure 4 — per-node mean response time of the web content service
//! under weighted-round-robin 2:1 switching, across six dataset sizes.
//!
//! The paper's observations to reproduce: "the requests served by the
//! node in seattle is approximately twice as many as those served by the
//! node in tacoma. More importantly, the request response time achieved
//! by the two nodes are approximately the same."

use serde::Serialize;
use soda_core::service::{ServiceId, ServiceSpec};
use soda_core::world::{create_service_driven, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_sim::{Engine, SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_workload::datasets::DatasetPoint;
use soda_workload::httpgen::{ClosedLoopGenerator, PoissonGenerator};

/// One sweep point's result.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Dataset size, bytes.
    pub dataset_bytes: u64,
    /// Offered rate, requests/second.
    pub rate_rps: f64,
    /// Requests served by the seattle node (capacity 2M).
    pub seattle_served: u64,
    /// Requests served by the tacoma node (capacity 1M).
    pub tacoma_served: u64,
    /// Mean response time at the seattle node, seconds.
    pub seattle_mean_secs: f64,
    /// Mean response time at the tacoma node, seconds.
    pub tacoma_mean_secs: f64,
}

impl Row {
    /// served ratio seattle/tacoma (paper: ≈ 2).
    pub fn served_ratio(&self) -> f64 {
        self.seattle_served as f64 / self.tacoma_served.max(1) as f64
    }

    /// response-time ratio seattle/tacoma (paper: ≈ 1).
    pub fn response_ratio(&self) -> f64 {
        if self.tacoma_mean_secs == 0.0 {
            return f64::INFINITY;
        }
        self.seattle_mean_secs / self.tacoma_mean_secs
    }
}

/// Build the standard web service world and return (engine, service,
/// the two backend VSN ids in (seattle, tacoma) order).
pub fn web_world(seed: u64) -> (Engine<SodaWorld>, ServiceId) {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    // §4.2: the traffic shaper was still being implemented when the §5
    // client experiments ran; replicate that condition.
    engine.state_mut().shaping_enforced = false;
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let svc = create_service_driven(&mut engine, spec, "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 1, "creation must finish");
    (engine, svc)
}

/// Run one sweep point for `measure_secs` of load.
pub fn run_point(point: &DatasetPoint, measure_secs: u64, seed: u64) -> Row {
    let (mut engine, svc) = web_world(seed);
    let t0 = engine.now() + SimDuration::from_secs(5);
    PoissonGenerator {
        service: svc,
        dataset_bytes: point.dataset_bytes,
        rate_rps: point.rate_rps,
        start: t0,
        end: t0 + SimDuration::from_secs(measure_secs),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(measure_secs + 120));
    let world = engine.state();
    let nodes = &world.master.service(svc).expect("exists").nodes;
    let (seattle_vsn, tacoma_vsn) = (nodes[0].vsn, nodes[1].vsn);
    let sw = world.master.switch(svc).expect("switch");
    let i_s = sw.index_of(seattle_vsn).expect("backend");
    let i_t = sw.index_of(tacoma_vsn).expect("backend");
    Row {
        dataset_bytes: point.dataset_bytes,
        rate_rps: point.rate_rps,
        seattle_served: sw.served_counts()[i_s],
        tacoma_served: sw.served_counts()[i_t],
        seattle_mean_secs: sw.mean_responses()[i_s],
        tacoma_mean_secs: sw.mean_responses()[i_t],
    }
}

/// Run the full sweep.
pub fn run(sweep: &[DatasetPoint], measure_secs: u64, seed: u64) -> Vec<Row> {
    sweep
        .iter()
        .map(|p| run_point(p, measure_secs, seed))
        .collect()
}

/// The same measurement under *closed-loop* (siege-faithful) clients:
/// `clients` virtual users, think time tuned so the offered rate
/// approximates the open-loop point. The paper's generator was siege,
/// so this variant is the methodological cross-check: the 2:1 split and
/// response-time equality must hold under both arrival disciplines.
pub fn run_point_closed(point: &DatasetPoint, clients: u32, measure_secs: u64, seed: u64) -> Row {
    let (mut engine, svc) = web_world(seed);
    let t0 = engine.now() + SimDuration::from_secs(5);
    // rate ≈ clients / (think + response); response ≪ think at these
    // loads, so think ≈ clients / rate.
    let think = SimDuration::from_secs_f64(clients as f64 / point.rate_rps);
    ClosedLoopGenerator {
        service: svc,
        dataset_bytes: point.dataset_bytes,
        clients,
        mean_think: think,
        start: t0,
        end: t0 + SimDuration::from_secs(measure_secs),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(measure_secs + 120));
    let world = engine.state();
    let nodes = &world.master.service(svc).expect("exists").nodes;
    let (seattle_vsn, tacoma_vsn) = (nodes[0].vsn, nodes[1].vsn);
    let sw = world.master.switch(svc).expect("switch");
    let i_s = sw.index_of(seattle_vsn).expect("backend");
    let i_t = sw.index_of(tacoma_vsn).expect("backend");
    Row {
        dataset_bytes: point.dataset_bytes,
        rate_rps: point.rate_rps,
        seattle_served: sw.served_counts()[i_s],
        tacoma_served: sw.served_counts()[i_t],
        seattle_mean_secs: sw.mean_responses()[i_s],
        tacoma_mean_secs: sw.mean_responses()[i_t],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_workload::datasets::FIG4_SWEEP;

    #[test]
    fn figure4_shape_holds() {
        // Shorter measurement window in tests; the bin uses a longer one.
        let rows = run(&FIG4_SWEEP[..3], 60, 1);
        for r in &rows {
            // ≈2× served.
            let ratio = r.served_ratio();
            assert!(
                (1.7..2.3).contains(&ratio),
                "{}B served ratio {ratio}",
                r.dataset_bytes
            );
            // ≈ equal response times (within 35%).
            let rr = r.response_ratio();
            assert!(
                (0.65..1.55).contains(&rr),
                "{}B response ratio {rr}",
                r.dataset_bytes
            );
            assert!(r.seattle_mean_secs > 0.0);
        }
        // Response time grows with dataset size.
        assert!(rows[2].seattle_mean_secs > rows[0].seattle_mean_secs);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_point(&FIG4_SWEEP[0], 20, 5);
        let b = run_point(&FIG4_SWEEP[0], 20, 5);
        assert_eq!(a.seattle_served, b.seattle_served);
        assert_eq!(a.seattle_mean_secs, b.seattle_mean_secs);
    }

    #[test]
    fn closed_loop_reproduces_the_shape() {
        // siege-style clients: same 2:1 split and near-equal response
        // times as the open-loop measurement.
        let r = run_point_closed(&FIG4_SWEEP[1], 12, 60, 2);
        assert!(
            (1.7..2.3).contains(&r.served_ratio()),
            "{}",
            r.served_ratio()
        );
        assert!(
            (0.6..1.6).contains(&r.response_ratio()),
            "{}",
            r.response_ratio()
        );
        assert!(r.seattle_served + r.tacoma_served > 500, "enough samples");
    }
}
