//! X-PARALLEL — conservative epoch-synchronized parallel DES over
//! placement cells, and its serial-oracle differential gate.
//!
//! The world is partitioned along the PR 8 `ShardMap` cell boundaries:
//! each cell is a complete `SodaWorld` over its contiguous slice of the
//! host roster, with its own timer wheel, RNG stream and event-log
//! shard, driven by its own [`Engine`]. Lookahead is the 500 µs
//! inter-cell message latency (`ShardPlane::DEFAULT_LATENCY` — the same
//! LAN delay the sharded control plane charges for `ShardMsg`), and
//! cross-cell client requests travel through each cell's
//! [`soda_sim::CellPort`], buffered at the epoch barrier and merged in
//! deterministic `(time, sender cell, sender seq)` order
//! ([`soda_sim::par`]).
//!
//! Determinism contract, mirroring X-SHARD's monolith oracle:
//!
//! * `cells = 1` under [`EngineKind::Serial`] IS the X-SCALE monolith —
//!   same seed, same ids, same trajectory and event fingerprints.
//! * `Parallel(n)` for ANY `n` replays `Serial` bit-identically at the
//!   same cell count: the merge order, not thread arrival order,
//!   decides every cross-cell tie.
//!
//! [`gate`] checks both (plus a chaos-soak seed and the profiler
//! accounting) and is wired into tier 1 and CI; [`speedup_grid`] /
//! [`run`] produce the committed scaling curves.

use serde::Serialize;
use soda_core::config::{ShardId, ShardMap};
use soda_core::recovery::{self, RecoveryConfig};
use soda_core::service::{ServiceId, ServiceSpec};
use soda_core::shard::{shard_salt, ControlPlaneKind, ShardPlane};
use soda_core::world::{apply_fault, create_service_driven, submit_request, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::pool::IpPool;
use soda_sim::{
    run_cells_with, ChaosProfile, Engine, EngineKind, EpochPolicy, FaultPlan, ProfileEntry,
    QueueKind, SimDuration, SimTime,
};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use std::rc::Rc;

use crate::experiments::scale::{self, ScaleConfig, SERVICES_PER_HOST};
use crate::experiments::shard::GateCheck;

/// The scale-run machine instance (identical to X-SCALE's `M_SCALE`, so
/// a one-cell run fills hosts exactly the way the monolith does).
const M_PAR: ResourceVector = ResourceVector {
    cpu_mhz: 75,
    mem_mb: 80,
    disk_mb: 500,
    bw_mbps: 2,
};

/// One grid point of the parallel sweep.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Fleet size (must be ≥ `cells`; cells split it contiguously).
    pub hosts: u32,
    /// Client requests pushed through the fleet, split across cells.
    pub requests: u64,
    /// Base seed; cell `k` runs on `seed ^ shard_salt(k)` (salt 0 = 0,
    /// so a one-cell run replays the monolith seed exactly).
    pub seed: u64,
    /// Placement cells the world is partitioned into.
    pub cells: u32,
    /// Execution mode: the serial oracle or `Parallel(n)` threads.
    pub engine: EngineKind,
    /// Record observability events/metrics during the run.
    pub obs: bool,
    /// Run the per-cell engine self-profiler.
    pub profile: bool,
    /// Event-queue implementation.
    pub queue: QueueKind,
    /// Inject the per-cell chaos plan (host crashes + self-healing).
    pub chaos: bool,
    /// Epoch-width policy (fixed global bound vs per-cell adaptive).
    /// The two policies are separately deterministic; gate Serial vs
    /// Parallel within one policy, never across.
    pub policy: EpochPolicy,
    /// Skew the request split: cell 0 carries ~90% of the budget, the
    /// rest is balanced over the other cells. The straggler workload
    /// the adaptive policy exists for.
    pub skew: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            hosts: 10,
            requests: 10_000,
            seed: 42,
            cells: 1,
            engine: EngineKind::Serial,
            obs: false,
            profile: false,
            queue: QueueKind::default(),
            chaos: false,
            policy: EpochPolicy::Fixed,
            skew: false,
        }
    }
}

/// What one cell hands back when its engine is reduced (on the worker
/// thread that owned it — everything here is plain `Send` data).
#[derive(Clone, Debug, Serialize)]
pub struct CellOutcome {
    /// Cell index.
    pub cell: u32,
    /// Services created in this cell.
    pub services: u32,
    /// Requests completed in this cell (cross-cell arrivals included —
    /// a request belongs to the cell that serves it).
    pub completed: u64,
    /// Requests dropped in this cell.
    pub dropped: u64,
    /// Engine events this cell executed.
    pub events: u64,
    /// Event-queue high-water mark.
    pub peak_queue_depth: usize,
    /// Peak concurrently-active NIC flows in this cell.
    pub peak_live_flows: u64,
    /// Peak in-flight admitted requests in this cell.
    pub peak_open_requests: u64,
    /// Cross-cell requests this cell shipped out.
    pub remote_sent: u64,
    /// FNV-1a over this cell's completed-request tuples + drop count
    /// (the X-SCALE scheme, per cell).
    pub trajectory_fingerprint: u64,
    /// FNV-1a over this cell's rendered event log (0 with obs off).
    pub event_fingerprint: u64,
    /// Per-event-kind cost table (empty unless profiling).
    pub profile: Vec<ProfileEntry>,
}

/// Measurements from one parallel run.
#[derive(Clone, Debug, Serialize)]
pub struct ParallelResult {
    /// Fleet size.
    pub hosts: u32,
    /// Placement cells.
    pub cells: u32,
    /// Execution mode label (`"serial"` / `"parallel-N"`).
    pub engine: String,
    /// Worker threads actually used (min of threads and cells).
    pub threads: u32,
    /// Services created fleet-wide.
    pub services: u32,
    /// Virtual service nodes running after creation.
    pub vsns: u32,
    /// Requests submitted fleet-wide.
    pub requests: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Requests dropped fleet-wide.
    pub dropped: u64,
    /// Whether observability was on.
    pub obs: bool,
    /// Whether the chaos plan ran.
    pub chaos: bool,
    /// Event-queue implementation (`"wheel"` / `"heap"`).
    pub queue: String,
    /// Events executed, summed over cells.
    pub events: u64,
    /// Epoch-width policy label (`"fixed"` / `"adaptive"`).
    pub policy: String,
    /// Whether the skewed request split was used.
    pub skew: bool,
    /// Epoch barriers crossed.
    pub epochs: u64,
    /// Cross-cell events delivered through the barriers.
    pub remote_msgs: u64,
    /// Total wall-clock the workers spent parked at barriers, seconds.
    pub barrier_wait_secs: f64,
    /// Barrier wait split by worker (cell `k` runs on worker
    /// `k % threads`, so with `threads == cells` this is per cell).
    pub barrier_wait_by_worker: Vec<f64>,
    /// Host wall-clock for the whole run, seconds.
    pub wall_secs: f64,
    /// Virtual time simulated, seconds.
    pub sim_secs: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Largest per-cell event-queue high-water mark.
    pub peak_queue_depth: usize,
    /// Sum of per-cell peak live-flow counts (cells peak at different
    /// instants, so this bounds the fleet-wide concurrent peak from
    /// above).
    pub peak_live_flows: u64,
    /// Sum of per-cell peak open-request counts (same caveat).
    pub peak_open_requests: u64,
    /// Per-cell outcomes, cell order.
    pub cell_outcomes: Vec<CellOutcome>,
    /// FNV-1a fold of the per-cell trajectory fingerprints (for one
    /// cell this IS the cell's — and therefore X-SCALE's — value).
    pub trajectory_fingerprint: u64,
    /// FNV-1a fold of the per-cell event fingerprints (same collapse
    /// at one cell; 0 with obs off).
    pub event_fingerprint: u64,
    /// Process peak RSS in kB (`VmHWM`; 0 where unavailable).
    pub peak_rss_kb: u64,
}

fn spec(name: &str) -> ServiceSpec {
    ServiceSpec {
        name: name.into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 4,
        machine: M_PAR,
        port: 8080,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(fp: u64, bytes: &[u8]) -> u64 {
    let mut fp = fp;
    for &b in bytes {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(FNV_PRIME);
    }
    fp
}

fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        return kb.parse().unwrap_or(0);
                    }
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Priming horizon — identical to X-SCALE's.
const T_READY: SimTime = SimTime::from_secs(300);
/// Virtual seconds after `T_READY` the run drains for (X-SCALE's 200).
const DRAIN: SimDuration = SimDuration::from_secs(200);
/// Issue ticks (X-SCALE's driver: one batch per 10 ms for 100 s).
const TICKS: u64 = 10_000;
/// Cross-cell egress runs every `REMOTE_EVERY_TICKS`th tick, so cell
/// promises advance in 100 ms strides and ten ticks share one epoch.
const REMOTE_EVERY_TICKS: u64 = 10;
/// Within a send tick, every `REMOTE_EVERY_REQS`th request (by the
/// driver's global counter) goes to a sibling cell.
const REMOTE_EVERY_REQS: u64 = 16;

/// The per-cell client driver. At one cell it degenerates to X-SCALE's
/// driver exactly: same batch, same tick, same round-robin, no port
/// traffic. At `cells > 1` it diverts a deterministic sliver of its
/// budget to sibling cells through the epoch fabric and keeps its
/// port's promise pointing at the next possible send tick.
struct Driver {
    services: Rc<Vec<ServiceId>>,
    cell: u64,
    cells: u64,
    /// Services per cell, for receiver-side target arithmetic.
    dest_services: Rc<Vec<u64>>,
    next: u64,
    remote_seq: u64,
    remaining: u64,
    batch: u64,
    tick: SimDuration,
    ticks_fired: u64,
    expect_creations: usize,
}

impl Driver {
    fn fire(mut self, w: &mut SodaWorld, ctx: &mut soda_sim::Ctx<SodaWorld>) {
        if self.ticks_fired == 0 {
            // X-SCALE asserts this between its two run_until calls; in
            // the epoch harness the first driver tick is the same
            // instant, and the check costs no engine event.
            assert_eq!(
                w.creations.len(),
                self.expect_creations,
                "every creation completes within the priming horizon"
            );
        }
        let n = self.batch.min(self.remaining);
        let send_tick = self.cells > 1 && self.ticks_fired.is_multiple_of(REMOTE_EVERY_TICKS);
        for _ in 0..n {
            let idx = self.next;
            if send_tick && idx.is_multiple_of(REMOTE_EVERY_REQS) {
                // Ship this request to a sibling cell. The target
                // service id is computed arithmetically from the id-lane
                // striping (cell j's s-th service is `j+1 + s*cells`),
                // so no cross-cell lookup is needed. Delay is exactly
                // the lookahead — the earliest legal arrival.
                let hop = 1 + (self.remote_seq % (self.cells - 1));
                let to = ((self.cell + hop) % self.cells) as usize;
                let s = idx % self.dest_services[to];
                let svc = ServiceId(to as u64 + 1 + s * self.cells);
                self.remote_seq += 1;
                let lookahead = w.port.lookahead();
                w.port.send(
                    ctx.now(),
                    to,
                    lookahead,
                    "remote_request",
                    move |w: &mut SodaWorld, ctx: &mut soda_sim::Ctx<SodaWorld>| {
                        submit_request(w, ctx, svc, 2_000);
                    },
                );
            } else {
                let svc = self.services[(idx % self.services.len() as u64) as usize];
                submit_request(w, ctx, svc, 2_000);
            }
            self.next += 1;
        }
        self.remaining -= n;
        self.ticks_fired += 1;
        if self.cells > 1 {
            // Promise the next send tick (a multiple of
            // REMOTE_EVERY_TICKS), or never once the budget is spent.
            if self.remaining == 0 {
                w.port.set_promise(SimTime::MAX);
            } else {
                let ms = self.ticks_fired.div_ceil(REMOTE_EVERY_TICKS) * REMOTE_EVERY_TICKS;
                let at = T_READY + SimDuration::from_nanos(ms * self.tick.as_nanos());
                w.port.set_promise(at);
            }
        }
        if self.remaining > 0 {
            let tick = self.tick;
            ctx.schedule_in_as("client_arrival", tick, move |w, ctx| self.fire(w, ctx));
        }
    }
}

/// Per-cell request budget: the canonical balanced split, or — under
/// `skew` — a deliberately imbalanced one where cell 0 carries ~90% of
/// the load and the rest is balanced over the other cells. The light
/// cells exhaust their budgets early and promise `MAX`, which is
/// exactly the straggler shape [`EpochPolicy::Adaptive`] collapses.
fn cell_requests(requests: u64, cells: u32, k: u32, skew: bool) -> u64 {
    if !skew || cells <= 1 {
        return requests / cells as u64 + u64::from((k as u64) < requests % cells as u64);
    }
    let heavy = requests / 10 * 9;
    if k == 0 {
        return heavy;
    }
    let rest = requests - heavy;
    let others = cells as u64 - 1;
    rest / others + u64::from((k as u64 - 1) < rest % others)
}

/// Build cell `k`'s engine: its slice of the host roster (global host
/// ids, so a one-cell build is byte-identical to X-SCALE's fleet), its
/// salted seed, its services on the striped id lane, its driver, and —
/// when `chaos` — its fault plan and self-healing loop.
fn build_cell(k: u32, map: &ShardMap, cfg: &ParallelConfig) -> Engine<SodaWorld> {
    let range = map.range(ShardId(k));
    let daemons: Vec<SodaDaemon> = range
        .clone()
        .map(|idx| {
            let i = idx as u32 + 1; // global 1-based host id, as X-SCALE numbers them
            SodaDaemon::new(HupHost::seattle(
                HostId(i),
                IpPool::new(
                    format!("10.{}.{}.0", i / 250, i % 250)
                        .parse()
                        .expect("valid"),
                    32,
                ),
            ))
        })
        .collect();
    let hosts_here = daemons.len() as u32;
    let mut engine =
        Engine::with_seed_queue(SodaWorld::new(daemons), cfg.seed ^ shard_salt(k), cfg.queue);
    engine
        .state_mut()
        .configure_shards(ControlPlaneKind::Monolith);
    engine
        .state_mut()
        .configure_parallel_cell(k, cfg.cells, ShardPlane::DEFAULT_LATENCY);
    let budget = cell_requests(cfg.requests, cfg.cells, k, cfg.skew);
    engine.reserve_events(
        usize::try_from(budget / 4)
            .unwrap_or(usize::MAX)
            .clamp(1024, 1 << 20),
    );
    if cfg.obs {
        engine.state_mut().enable_obs(1 << 16);
    }
    if cfg.profile {
        engine.enable_profiler();
    }

    // Fill this cell's slice of the utility. Service names carry the
    // global index so a one-cell run matches X-SCALE's names exactly.
    let offset: u32 = map
        .shards()
        .take_while(|&s| s != ShardId(k))
        .map(|s| map.range(s).len() as u32 * SERVICES_PER_HOST)
        .sum();
    let n_services = hosts_here * SERVICES_PER_HOST;
    let services: Vec<ServiceId> = (0..n_services)
        .map(|s| {
            create_service_driven(&mut engine, spec(&format!("svc{}", offset + s)), "scaleco")
                .expect("fleet sized to admit every service")
        })
        .collect();

    if cfg.chaos {
        let horizon = T_READY + DRAIN;
        let mut rc = RecoveryConfig::default();
        rc.seed ^= shard_salt(k);
        recovery::start_self_healing(&mut engine, rc, horizon);
        let profile = ChaosProfile {
            hosts: range.map(|idx| idx as u64 + 1).collect(),
            start: T_READY + SimDuration::from_secs(20),
            end: T_READY + SimDuration::from_secs(120),
            mean_gap: SimDuration::from_secs(20),
            mean_repair: SimDuration::from_secs(40),
            domains: vec![],
            master_crashes: 0,
        };
        let plan = FaultPlan::randomized(cfg.seed ^ shard_salt(k), &profile);
        plan.schedule(&mut engine, apply_fault);
        engine.schedule_periodic(
            T_READY + SimDuration::from_secs(5),
            SimDuration::from_secs(5),
            horizon,
            |w: &mut SodaWorld, _ctx| {
                recovery::check_invariants(w);
                true
            },
        );
    }

    // X-SCALE's driver, parameterized for this cell's budget.
    let dest_services: Vec<u64> = map
        .shards()
        .map(|s| map.range(s).len() as u64 * u64::from(SERVICES_PER_HOST))
        .collect();
    let driver = Driver {
        services: Rc::new(services),
        cell: k as u64,
        cells: cfg.cells as u64,
        dest_services: Rc::new(dest_services),
        next: 0,
        remote_seq: 0,
        remaining: budget,
        batch: budget.div_ceil(TICKS).max(1),
        tick: SimDuration::from_millis(10),
        ticks_fired: 0,
        expect_creations: n_services as usize,
    };
    if budget > 0 {
        engine.schedule_at_as("client_arrival", T_READY, move |w, ctx| driver.fire(w, ctx));
        if cfg.cells > 1 {
            // The first send tick is the driver's first fire.
            engine.state_mut().port.set_promise(T_READY);
        }
    }
    engine
}

/// Reduce a finished cell engine into plain `Send` data (runs on the
/// worker thread that owns the engine).
fn finish_cell(k: u32, mut engine: Engine<SodaWorld>, obs: bool) -> CellOutcome {
    let events = engine.events_executed();
    let peak_queue_depth = engine.peak_events_pending();
    let profile = engine.profile_report();
    let w = engine.state_mut();

    let mut fp = FNV_OFFSET;
    for r in &w.completed {
        fp = fnv_bytes(fp, &r.service.0.to_le_bytes());
        fp = fnv_bytes(fp, &r.vsn.0.to_le_bytes());
        fp = fnv_bytes(fp, &r.issued.as_nanos().to_le_bytes());
        fp = fnv_bytes(fp, &r.completed.as_nanos().to_le_bytes());
        fp = fnv_bytes(fp, &r.dataset.to_le_bytes());
    }
    fp = fnv_bytes(fp, &w.dropped.to_le_bytes());
    let trajectory_fingerprint = fp;

    let mut event_fingerprint = 0;
    if obs {
        let mut fp = FNV_OFFSET;
        if let Some(drained) = w.obs.drain_events() {
            for ev in &drained.events {
                fp = fnv_bytes(fp, ev.to_string().as_bytes());
            }
        }
        event_fingerprint = fp;
    }

    CellOutcome {
        cell: k,
        services: w.master.services().count() as u32,
        completed: w.completed.len() as u64,
        dropped: w.dropped,
        events,
        peak_queue_depth,
        peak_live_flows: w.peak_live_flows as u64,
        peak_open_requests: w.peak_open_requests,
        remote_sent: w.port.sent,
        trajectory_fingerprint,
        event_fingerprint,
        profile,
    }
}

/// Run one grid point: partition, execute under `cfg.engine`, reduce.
pub fn run(cfg: &ParallelConfig) -> ParallelResult {
    let cfg = *cfg;
    assert!(cfg.cells >= 1, "at least one cell");
    assert!(cfg.hosts >= cfg.cells, "every cell needs at least one host");
    let wall_start = std::time::Instant::now();
    let map = ShardMap::new(cfg.cells, cfg.hosts as usize);
    let horizon = T_READY + DRAIN;

    let builders: Vec<_> = (0..cfg.cells)
        .map(|k| {
            let map = map.clone();
            move |cell: usize| {
                assert_eq!(cell as u32, k);
                build_cell(k, &map, &cfg)
            }
        })
        .collect();
    let (outcomes, stats) = run_cells_with(
        cfg.engine,
        cfg.policy,
        ShardPlane::DEFAULT_LATENCY,
        horizon,
        builders,
        |k, engine| finish_cell(k as u32, engine, cfg.obs),
    );

    let completed: u64 = outcomes.iter().map(|o| o.completed).sum();
    let dropped: u64 = outcomes.iter().map(|o| o.dropped).sum();
    let events: u64 = outcomes.iter().map(|o| o.events).sum();
    let services: u32 = outcomes.iter().map(|o| o.services).sum();
    if !cfg.chaos {
        assert_eq!(
            completed + dropped,
            cfg.requests,
            "every request completes or is counted dropped"
        );
    }

    // Fold the per-cell fingerprints. FNV doesn't compose, so the
    // combined value of a multi-cell run is a fold over `(cell, fp)`
    // pairs — but at one cell it must BE the cell's value, so the
    // X-SCALE monolith comparison stays a single equality.
    let fold = |pick: fn(&CellOutcome) -> u64| -> u64 {
        if outcomes.len() == 1 {
            return pick(&outcomes[0]);
        }
        let mut fp = FNV_OFFSET;
        for o in &outcomes {
            fp = fnv_bytes(fp, &o.cell.to_le_bytes());
            fp = fnv_bytes(fp, &pick(o).to_le_bytes());
        }
        fp
    };
    let trajectory_fingerprint = fold(|o| o.trajectory_fingerprint);
    let event_fingerprint = if cfg.obs {
        fold(|o| o.event_fingerprint)
    } else {
        0
    };

    let wall_secs = wall_start.elapsed().as_secs_f64();
    ParallelResult {
        hosts: cfg.hosts,
        cells: cfg.cells,
        engine: cfg.engine.label(),
        threads: stats.threads,
        services,
        vsns: 4 * services,
        requests: cfg.requests,
        completed,
        dropped,
        obs: cfg.obs,
        chaos: cfg.chaos,
        queue: match cfg.queue {
            QueueKind::Wheel => "wheel".to_string(),
            QueueKind::Heap => "heap".to_string(),
        },
        events,
        policy: cfg.policy.label().to_string(),
        skew: cfg.skew,
        epochs: stats.epochs,
        remote_msgs: stats.remote_msgs,
        barrier_wait_secs: stats.barrier_wait_secs,
        barrier_wait_by_worker: stats.barrier_wait_by_worker,
        wall_secs,
        sim_secs: horizon.as_secs_f64(),
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        requests_per_sec: cfg.requests as f64 / wall_secs.max(1e-9),
        peak_queue_depth: outcomes
            .iter()
            .map(|o| o.peak_queue_depth)
            .max()
            .unwrap_or(0),
        peak_live_flows: outcomes.iter().map(|o| o.peak_live_flows).sum(),
        peak_open_requests: outcomes.iter().map(|o| o.peak_open_requests).sum(),
        cell_outcomes: outcomes,
        trajectory_fingerprint,
        event_fingerprint,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// The gate's full report.
#[derive(Clone, Debug, Serialize)]
pub struct ParallelGateReport {
    /// Threads exercised on the parallel side.
    pub threads: u32,
    /// Cells the world was split into.
    pub cells: u32,
    /// Every comparison made, in order.
    pub checks: Vec<GateCheck>,
    /// The runs compared (serial oracle, parallel-1, parallel-n).
    pub points: Vec<ParallelResult>,
    /// True iff every check passed.
    pub passed: bool,
}

fn check(checks: &mut Vec<GateCheck>, name: &str, passed: bool, detail: String) {
    checks.push(GateCheck {
        name: name.to_string(),
        passed,
        detail,
    });
}

/// Run the differential gate with `threads` workers on the parallel
/// side (`Parallel(1)` is always exercised too; `Serial` is the
/// oracle, and the one-cell serial run is compared against X-SCALE's
/// monolith).
pub fn gate(threads: u32) -> ParallelGateReport {
    let threads = threads.max(2);
    let cells = 4;
    let mut checks = Vec::new();

    // Tier 0: one cell, serial, IS the X-SCALE monolith.
    let base = ParallelConfig {
        hosts: 8,
        requests: 20_000,
        seed: 1303,
        obs: true,
        ..ParallelConfig::default()
    };
    let solo = run(&base);
    let mono = scale::run(&ScaleConfig {
        hosts: base.hosts,
        requests: base.requests,
        seed: base.seed,
        obs: true,
        queue: base.queue,
        ..ScaleConfig::default()
    });
    check(
        &mut checks,
        "cells=1 serial replays the X-SCALE monolith",
        solo.trajectory_fingerprint == mono.trajectory_fingerprint
            && solo.event_fingerprint == mono.event_fingerprint
            && solo.events == mono.events,
        format!(
            "trajectory {:#018x} vs {:#018x}, events {:#018x} vs {:#018x}, count {} vs {}",
            mono.trajectory_fingerprint,
            solo.trajectory_fingerprint,
            mono.event_fingerprint,
            solo.event_fingerprint,
            mono.events,
            solo.events
        ),
    );

    // Tier 1: multi-cell, serial oracle vs Parallel(1) and Parallel(n).
    let multi = ParallelConfig { cells, ..base };
    let serial = run(&multi);
    let mut points = vec![solo];
    for n in [1, threads] {
        let par = run(&ParallelConfig {
            engine: EngineKind::Parallel(n),
            ..multi
        });
        check(
            &mut checks,
            &format!("parallel({n}) trajectory ≡ serial, cells={cells}"),
            par.trajectory_fingerprint == serial.trajectory_fingerprint,
            format!(
                "serial {:#018x} vs parallel-{n} {:#018x}",
                serial.trajectory_fingerprint, par.trajectory_fingerprint
            ),
        );
        check(
            &mut checks,
            &format!("parallel({n}) event log ≡ serial, cells={cells}"),
            par.event_fingerprint == serial.event_fingerprint,
            format!(
                "serial {:#018x} vs parallel-{n} {:#018x}",
                serial.event_fingerprint, par.event_fingerprint
            ),
        );
        check(
            &mut checks,
            &format!("parallel({n}) event count ≡ serial, cells={cells}"),
            par.events == serial.events,
            format!("serial {} vs parallel-{n} {}", serial.events, par.events),
        );
        check(
            &mut checks,
            &format!("parallel({n}) conservation"),
            par.completed + par.dropped == multi.requests,
            format!(
                "completed {} + dropped {} vs submitted {}",
                par.completed, par.dropped, multi.requests
            ),
        );
        points.push(par);
    }
    check(
        &mut checks,
        "cross-cell traffic actually flowed",
        serial.remote_msgs > 0,
        format!("{} remote msgs", serial.remote_msgs),
    );
    points.insert(1, serial.clone());

    // Tier 2: the profiler must account for every event per cell and
    // stay trajectory-transparent under the parallel engine.
    let profiled = run(&ParallelConfig {
        profile: true,
        engine: EngineKind::Parallel(threads),
        ..multi
    });
    let accounted = profiled
        .cell_outcomes
        .iter()
        .all(|o| o.profile.iter().map(|e| e.count).sum::<u64>() == o.events);
    check(
        &mut checks,
        "profiler buckets every event in every cell",
        accounted,
        profiled
            .cell_outcomes
            .iter()
            .map(|o| {
                format!(
                    "cell {}: {}/{}",
                    o.cell,
                    o.profile.iter().map(|e| e.count).sum::<u64>(),
                    o.events
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    check(
        &mut checks,
        "profiler is trajectory-transparent in parallel mode",
        profiled.trajectory_fingerprint == serial.trajectory_fingerprint
            && profiled.event_fingerprint == serial.event_fingerprint,
        format!(
            "plain {:#018x} vs profiled {:#018x}",
            serial.trajectory_fingerprint, profiled.trajectory_fingerprint
        ),
    );

    // Tier 3: a chaos seed — fault plans, heartbeats, self-healing and
    // invariant sweeps per cell — must replay identically too.
    let chaos = ParallelConfig {
        chaos: true,
        ..multi
    };
    let chaos_serial = run(&chaos);
    let chaos_par = run(&ParallelConfig {
        engine: EngineKind::Parallel(threads),
        ..chaos
    });
    check(
        &mut checks,
        "chaos seed: parallel ≡ serial",
        chaos_par.trajectory_fingerprint == chaos_serial.trajectory_fingerprint
            && chaos_par.event_fingerprint == chaos_serial.event_fingerprint
            && chaos_par.events == chaos_serial.events,
        format!(
            "trajectory {:#018x} vs {:#018x}, events {} vs {}",
            chaos_serial.trajectory_fingerprint,
            chaos_par.trajectory_fingerprint,
            chaos_serial.events,
            chaos_par.events
        ),
    );
    check(
        &mut checks,
        "chaos seed keeps serving",
        chaos_serial.completed > 1000,
        format!("{} completed", chaos_serial.completed),
    );

    // Tier 4: the adaptive epoch policy is a second deterministic pair.
    // Its trajectory may legitimately differ from Fixed (epoch
    // boundaries shift which engine sequence numbers same-time
    // cross-cell arrivals get), so the gate is within-policy only.
    let adapt = ParallelConfig {
        policy: EpochPolicy::Adaptive,
        ..multi
    };
    let adapt_serial = run(&adapt);
    let adapt_par = run(&ParallelConfig {
        engine: EngineKind::Parallel(threads),
        ..adapt
    });
    check(
        &mut checks,
        "adaptive policy: parallel ≡ serial",
        adapt_par.trajectory_fingerprint == adapt_serial.trajectory_fingerprint
            && adapt_par.event_fingerprint == adapt_serial.event_fingerprint
            && adapt_par.events == adapt_serial.events,
        format!(
            "trajectory {:#018x} vs {:#018x}, events {} vs {}",
            adapt_serial.trajectory_fingerprint,
            adapt_par.trajectory_fingerprint,
            adapt_serial.events,
            adapt_par.events
        ),
    );
    check(
        &mut checks,
        "adaptive policy conserves requests",
        adapt_par.completed + adapt_par.dropped == multi.requests,
        format!(
            "completed {} + dropped {} vs submitted {}",
            adapt_par.completed, adapt_par.dropped, multi.requests
        ),
    );

    let passed = checks.iter().all(|c| c.passed);
    ParallelGateReport {
        threads,
        cells,
        checks,
        points,
        passed,
    }
}

/// The speedup grid: a fixed workload at a fixed cell count, swept
/// over execution modes (serial, then 1/2/…/max threads).
pub fn speedup_grid(hosts: u32, requests: u64, cells: u32, threads: &[u32]) -> Vec<ParallelConfig> {
    let base = ParallelConfig {
        hosts,
        requests,
        seed: 1303,
        cells,
        engine: EngineKind::Serial,
        ..ParallelConfig::default()
    };
    let mut grid = vec![base];
    grid.extend(threads.iter().map(|&n| ParallelConfig {
        engine: EngineKind::Parallel(n),
        ..base
    }));
    grid
}

/// The skew demonstration grid: one straggler workload (cell 0 carries
/// ~90% of the requests) under both epoch policies, each as its serial
/// oracle plus a `Parallel(threads)` run. The parallel pair shows the
/// `barrier_wait_secs` gap; the serial runs gate each policy's
/// determinism.
pub fn skew_grid(hosts: u32, requests: u64, cells: u32, threads: u32) -> Vec<ParallelConfig> {
    let base = ParallelConfig {
        hosts,
        requests,
        seed: 1303,
        cells,
        skew: true,
        ..ParallelConfig::default()
    };
    [EpochPolicy::Fixed, EpochPolicy::Adaptive]
        .into_iter()
        .flat_map(|policy| {
            [
                ParallelConfig {
                    policy,
                    engine: EngineKind::Serial,
                    ..base
                },
                ParallelConfig {
                    policy,
                    engine: EngineKind::Parallel(threads),
                    ..base
                },
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_serial_replays_the_scale_monolith() {
        let cfg = ParallelConfig {
            hosts: 3,
            requests: 1_000,
            seed: 9,
            obs: true,
            ..ParallelConfig::default()
        };
        let par = run(&cfg);
        let mono = scale::run(&ScaleConfig {
            hosts: 3,
            requests: 1_000,
            seed: 9,
            obs: true,
            ..ScaleConfig::default()
        });
        assert_eq!(par.trajectory_fingerprint, mono.trajectory_fingerprint);
        assert_eq!(par.event_fingerprint, mono.event_fingerprint);
        assert_eq!(par.events, mono.events);
        assert_eq!(par.epochs, 1, "a solo cell drains in one epoch");
    }

    #[test]
    fn parallel_threads_replay_the_serial_oracle() {
        let cfg = ParallelConfig {
            hosts: 4,
            requests: 2_000,
            seed: 23,
            cells: 4,
            obs: true,
            ..ParallelConfig::default()
        };
        let serial = run(&cfg);
        assert!(serial.remote_msgs > 0, "cross-cell traffic flowed");
        for n in [1, 2, 4] {
            let par = run(&ParallelConfig {
                engine: EngineKind::Parallel(n),
                ..cfg
            });
            assert_eq!(
                par.trajectory_fingerprint, serial.trajectory_fingerprint,
                "Parallel({n}) trajectory diverged"
            );
            assert_eq!(
                par.event_fingerprint, serial.event_fingerprint,
                "Parallel({n}) event log diverged"
            );
            assert_eq!(par.events, serial.events);
            assert_eq!(par.remote_msgs, serial.remote_msgs);
        }
    }

    #[test]
    fn requests_are_conserved_across_cells() {
        let r = run(&ParallelConfig {
            hosts: 4,
            requests: 2_000,
            seed: 23,
            cells: 2,
            engine: EngineKind::Parallel(2),
            ..ParallelConfig::default()
        });
        assert_eq!(r.completed + r.dropped, 2_000);
        assert_eq!(r.services, 4 * SERVICES_PER_HOST);
        assert_eq!(r.dropped, 0, "unsaturated fleet drops nothing");
        let sent: u64 = r.cell_outcomes.iter().map(|o| o.remote_sent).sum();
        assert_eq!(sent, r.remote_msgs, "every sent message was delivered");
    }

    #[test]
    fn gate_passes_on_the_pinned_seed() {
        let report = gate(4);
        let failed: Vec<&GateCheck> = report.checks.iter().filter(|c| !c.passed).collect();
        assert!(report.passed, "failed checks: {failed:?}");
        assert_eq!(report.cells, 4);
        assert!(report.points.len() >= 4);
    }

    #[test]
    fn speedup_grid_sweeps_modes() {
        let grid = speedup_grid(8, 1_000, 8, &[1, 4]);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0].engine, EngineKind::Serial);
        assert_eq!(grid[1].engine, EngineKind::Parallel(1));
        assert_eq!(grid[2].engine, EngineKind::Parallel(4));
        assert!(grid.iter().all(|c| c.cells == 8));
    }

    #[test]
    fn cell_request_split_is_balanced_and_total() {
        for (req, cells) in [(10u64, 3u32), (7, 7), (1_000_003, 8)] {
            let total: u64 = (0..cells)
                .map(|k| cell_requests(req, cells, k, false))
                .sum();
            assert_eq!(total, req);
            let mn = (0..cells)
                .map(|k| cell_requests(req, cells, k, false))
                .min()
                .unwrap();
            let mx = (0..cells)
                .map(|k| cell_requests(req, cells, k, false))
                .max()
                .unwrap();
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn skewed_split_is_total_and_heavy_on_cell_zero() {
        for (req, cells) in [(10_000u64, 4u32), (1_000_003, 8), (17, 3)] {
            let total: u64 = (0..cells).map(|k| cell_requests(req, cells, k, true)).sum();
            assert_eq!(total, req);
            let heavy = cell_requests(req, cells, 0, true);
            let light_max = (1..cells)
                .map(|k| cell_requests(req, cells, k, true))
                .max()
                .unwrap();
            assert!(heavy >= light_max, "cell 0 carries the straggler load");
        }
        // One cell: skew degenerates to the balanced split.
        assert_eq!(cell_requests(100, 1, 0, true), 100);
    }

    #[test]
    fn adaptive_policy_replays_its_serial_oracle_and_cuts_epochs() {
        let skewed = ParallelConfig {
            hosts: 4,
            requests: 4_000,
            seed: 23,
            cells: 4,
            skew: true,
            obs: true,
            ..ParallelConfig::default()
        };
        let fixed = run(&skewed);
        let adapt_cfg = ParallelConfig {
            policy: EpochPolicy::Adaptive,
            ..skewed
        };
        let adapt = run(&adapt_cfg);
        let adapt_par = run(&ParallelConfig {
            engine: EngineKind::Parallel(4),
            ..adapt_cfg
        });
        assert_eq!(
            adapt_par.trajectory_fingerprint, adapt.trajectory_fingerprint,
            "adaptive parallel diverged from the adaptive serial oracle"
        );
        assert_eq!(adapt_par.event_fingerprint, adapt.event_fingerprint);
        assert_eq!(adapt_par.events, adapt.events);
        assert_eq!(adapt.completed + adapt.dropped, skewed.requests);
        assert!(
            adapt.epochs < fixed.epochs,
            "adaptive should cross fewer barriers under skew: {} vs {}",
            adapt.epochs,
            fixed.epochs
        );
        assert_eq!(adapt_par.barrier_wait_by_worker.len(), 4);
    }
}
