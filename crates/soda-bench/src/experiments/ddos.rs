//! X-DDOS — §3.5 limitation 2: "if a service is DDoS-attacked, its
//! service switch will be inundated with requests, affecting other
//! virtual service nodes in the same HUP host and therefore violating
//! the service isolation."
//!
//! Two co-hosted services on *seattle*; the victim's switch host is
//! flooded; the bystander's response times degrade even though it was
//! never attacked.

use serde::Serialize;
use soda_core::placement::FirstFit;
use soda_core::service::ServiceSpec;
use soda_core::world::{create_service_driven, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_sim::{Engine, SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_workload::attack::DdosFlood;
use soda_workload::httpgen::PoissonGenerator;

/// Result of the DDoS isolation-violation experiment.
#[derive(Clone, Debug, Serialize)]
pub struct DdosResult {
    /// Bystander mean response time before the flood, seconds.
    pub baseline_secs: f64,
    /// Bystander mean response time during the flood, seconds.
    pub flooded_secs: f64,
}

impl DdosResult {
    /// Degradation factor.
    pub fn degradation(&self) -> f64 {
        if self.baseline_secs == 0.0 {
            return f64::INFINITY;
        }
        self.flooded_secs / self.baseline_secs
    }
}

/// Run: `quiet_secs` of baseline, then `flood_secs` under flood.
pub fn run(quiet_secs: u64, flood_secs: u64, seed: u64) -> DdosResult {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    // First-fit packs both services onto seattle.
    engine.state_mut().master.set_placement(Box::new(FirstFit));
    let spec = |name: &str, port| ServiceSpec {
        name: name.into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 1,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port,
    };
    let victim = create_service_driven(&mut engine, spec("victim", 8080), "a").expect("admitted");
    let bystander =
        create_service_driven(&mut engine, spec("bystander", 8081), "b").expect("admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 2);
    // Both must share seattle for the violation to manifest.
    {
        let w = engine.state();
        let hv = w.master.service(victim).expect("exists").nodes[0].host;
        let hb = w.master.service(bystander).expect("exists").nodes[0].host;
        assert_eq!(hv, hb, "first-fit must co-host the services");
    }

    // Continuous bystander load throughout.
    let t0 = engine.now();
    let total = quiet_secs + flood_secs;
    PoissonGenerator {
        service: bystander,
        dataset_bytes: 100_000,
        rate_rps: 10.0,
        start: t0,
        end: t0 + SimDuration::from_secs(total),
    }
    .start(&mut engine);
    // Quiet phase.
    engine.run_until(t0 + SimDuration::from_secs(quiet_secs));
    let flood_start = engine.now();
    let baseline = {
        let w = engine.state();
        let vsn = w.master.service(bystander).expect("exists").nodes[0].vsn;
        w.mean_response(vsn, SimTime::ZERO)
    };
    // Flood phase: waves of elephant flows at the victim's switch host.
    DdosFlood {
        service: victim,
        flows_per_wave: 10,
        bytes_each: 20_000_000,
        period: SimDuration::from_secs(5),
        start: flood_start,
        end: flood_start + SimDuration::from_secs(flood_secs),
    }
    .start(&mut engine);
    engine.run_until(flood_start + SimDuration::from_secs(flood_secs + 300));
    let flooded = {
        let w = engine.state();
        let vsn = w.master.service(bystander).expect("exists").nodes[0].vsn;
        w.mean_response(vsn, flood_start)
    };
    DdosResult {
        baseline_secs: baseline,
        flooded_secs: flooded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_violates_isolation() {
        let r = run(60, 60, 21);
        assert!(r.baseline_secs > 0.0);
        assert!(
            r.degradation() > 2.0,
            "bystander must degrade: baseline {} flooded {}",
            r.baseline_secs,
            r.flooded_secs
        );
    }
}
