//! Experiment implementations, one module per paper artifact.

pub mod attack;
pub mod chaos_soak;
pub mod ddos;
pub mod download;
pub mod federation;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod host_failure;
pub mod inflation;
pub mod link_stress;
pub mod master_failover;
pub mod migration;
pub mod parallel;
pub mod placement;
pub mod resize;
pub mod scale;
pub mod shard;
pub mod table2;
pub mod table4;
pub mod usage_billing;
