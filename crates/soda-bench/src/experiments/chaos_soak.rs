//! X-CHAOS — randomized fault-plan soak against a multi-service HUP.
//!
//! A four-host HUP runs two services of different priorities under
//! continuous load while a seeded [`FaultPlan`] injects host crashes
//! (with paired repairs), priming failures, slow hosts, link loss and
//! partitions. The self-healing loop (heartbeats → detection → bounded
//! retries → degradation) is the only thing keeping the services up —
//! nothing in this experiment calls a repair function directly.
//!
//! The whole run is reproducible from `(seed)`: the fault plan, the
//! workload, the heartbeat loss draws and the backoff jitter all flow
//! from seeded RNGs, and the result embeds a fingerprint of the full
//! event log so two runs can be compared exactly.

use serde::Serialize;
use soda_core::config::ShardId;
use soda_core::recovery::{self, RecoveryConfig};
use soda_core::service::ServiceSpec;
use soda_core::shard::ControlPlaneKind;
use soda_core::world::{apply_fault, create_service_driven, SodaWorld};
use soda_core::WorldStorageKind;
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::pool::IpPool;
use soda_sim::{ChaosProfile, Engine, FaultPlan, FaultSpec, SimDuration, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;
use soda_workload::httpgen::PoissonGenerator;

/// Client-visible latency distribution for one run: every per-backend
/// `switch.response_time` histogram merged into a single digest. The
/// quantiles come from the log-bucketed [`soda_sim::Histogram`], so
/// they are bucket floors (deterministic, seed-reproducible) — never
/// wall-clock-dependent.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct LatencyDigest {
    /// Responses recorded.
    pub count: u64,
    /// Mean response time, milliseconds.
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, milliseconds.
    pub p999_ms: f64,
    /// Largest recorded bucket, milliseconds.
    pub max_ms: f64,
}

impl LatencyDigest {
    /// Reduce a nanosecond-valued histogram to the digest.
    pub fn from_nanos(h: &soda_sim::Histogram) -> Self {
        let ms = |ns: u64| ns as f64 / 1e6;
        LatencyDigest {
            count: h.count(),
            mean_ms: h.mean() / 1e6,
            p50_ms: ms(h.quantile(0.5)),
            p99_ms: ms(h.quantile(0.99)),
            p999_ms: ms(h.quantile(0.999)),
            max_ms: ms(h.quantile(1.0)),
        }
    }
}

/// Result of one chaos soak run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ChaosSoakResult {
    /// The seed the run (fault plan, workload, jitter) derives from.
    pub seed: u64,
    /// Faults in the generated plan.
    pub faults_injected: usize,
    /// Host-down declarations made by the heartbeat monitor.
    pub detections: usize,
    /// Mean crash → detection latency, seconds (matched host crashes
    /// only).
    pub mean_detection_secs: f64,
    /// Worst crash → detection latency, seconds.
    pub max_detection_secs: f64,
    /// Capacity-restoration episodes completed.
    pub recoveries: usize,
    /// Mean detection → restored latency, seconds.
    pub mean_recovery_secs: f64,
    /// Worst detection → restored latency, seconds.
    pub max_recovery_secs: f64,
    /// Client requests completed.
    pub completed: u64,
    /// Client requests dropped (dead backends, partitions, crashes).
    pub dropped: u64,
    /// Total service-time spent at degraded capacity, seconds.
    pub degraded_secs: f64,
    /// Episodes that exhausted their backoff budget.
    pub degradations: u64,
    /// Lower-priority services shed to reclaim capacity.
    pub sheds: u64,
    /// Down declarations rolled back by a later heartbeat.
    pub false_alarms: u64,
    /// Placement retries scheduled.
    pub retries: u64,
    /// Routing-invariant violations (must be zero).
    pub invariant_violations: u64,
    /// MasterCrash faults in the plan.
    pub master_crashes: usize,
    /// Warm-standby takeovers completed.
    pub master_failovers: usize,
    /// Mean master crash → takeover-complete latency, seconds.
    pub mean_failover_secs: f64,
    /// Worst master crash → takeover-complete latency, seconds.
    pub max_failover_secs: f64,
    /// Longest journal replay a takeover performed (entries).
    pub max_journal_replay: u64,
    /// Journal entries appended over the whole soak (all cells).
    pub journal_appended: u64,
    /// Control plane the run used (`"monolith"` / `"sharded-N"`).
    pub control_plane: String,
    /// Placement cells in the control plane (1 for the monolith).
    pub shards: u32,
    /// Placements (admission or recovery) re-placed over the whole
    /// fleet after their home cell was full.
    pub shard_spills: u64,
    /// Inter-shard messages sent.
    pub shard_msgs_sent: u64,
    /// Inter-shard messages dropped because the destination's journal
    /// epoch moved while they were in flight.
    pub shard_msgs_stale: u64,
    /// Engine events executed over the whole soak.
    pub events: u64,
    /// Virtual time simulated, seconds.
    pub sim_secs: f64,
    /// Event-queue high-water mark.
    pub peak_queue_depth: usize,
    /// High-water mark of concurrently active NIC flows fleet-wide.
    pub peak_live_flows: u64,
    /// High-water mark of in-flight (admitted, unanswered) requests.
    pub peak_open_requests: u64,
    /// Merged `switch.response_time` distribution across all backends.
    pub latency: LatencyDigest,
    /// FNV-1a hash over the rendered event log — two runs with the same
    /// seed must produce the same fingerprint.
    pub event_fingerprint: u64,
}

fn spec(name: &str, instances: u32) -> ServiceSpec {
    ServiceSpec {
        name: name.into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

/// Run the soak: ~5 minutes of virtual time, faults between t=60 s and
/// t=270 s, metrics drained after the dust settles.
pub fn run(seed: u64) -> ChaosSoakResult {
    run_with_latency(seed).0
}

/// [`run`], additionally returning the merged raw response-time
/// histogram (nanosecond values) so sweep callers can fold latency
/// across seeds with [`soda_sim::Histogram::merge`] before digesting.
pub fn run_with_latency(seed: u64) -> (ChaosSoakResult, Option<soda_sim::Histogram>) {
    run_with_faults(seed, 0)
}

/// [`run_with_latency`] with `master_crashes` MasterCrash faults folded
/// into the plan (the `--master-faults` path of `exp_chaos_soak`).
pub fn run_with_faults(
    seed: u64,
    master_crashes: u32,
) -> (ChaosSoakResult, Option<soda_sim::Histogram>) {
    run_full(
        seed,
        master_crashes,
        ControlPlaneKind::Monolith,
        WorldStorageKind::default(),
    )
}

/// The soak under an explicit control plane: the monolith oracle or a
/// sharded plane (the `exp_shard` differential path). MasterCrash
/// faults stay monolith-only — warm-standby drills are shard-0 scoped.
pub fn run_with_kind(
    seed: u64,
    kind: ControlPlaneKind,
) -> (ChaosSoakResult, Option<soda_sim::Histogram>) {
    run_full(seed, 0, kind, WorldStorageKind::default())
}

/// The soak under an explicit storage backend: the dense arena data
/// plane or the ordered-map oracle (the `exp_scale storage-gate`
/// differential path — a full fault plan exercises slot reuse after
/// crashes in a way the clean scale run never does).
pub fn run_with_storage(
    seed: u64,
    storage: WorldStorageKind,
) -> (ChaosSoakResult, Option<soda_sim::Histogram>) {
    run_full(seed, 0, ControlPlaneKind::Monolith, storage)
}

fn run_full(
    seed: u64,
    master_crashes: u32,
    kind: ControlPlaneKind,
    storage: WorldStorageKind,
) -> (ChaosSoakResult, Option<soda_sim::Histogram>) {
    // Three seattles plus a tacoma spare: enough headroom that most
    // recoveries succeed, little enough that degradation is reachable.
    let daemons: Vec<SodaDaemon> = (1u32..=3)
        .map(|i| {
            SodaDaemon::new(HupHost::seattle(
                HostId(i),
                IpPool::new(format!("10.0.{i}.0").parse().expect("valid"), 8),
            ))
        })
        .chain(std::iter::once(SodaDaemon::new(HupHost::tacoma(
            HostId(4),
            IpPool::new("10.0.4.0".parse().expect("valid"), 8),
        ))))
        .collect();
    let mut world = SodaWorld::new(daemons);
    world.configure_storage(storage);
    let mut engine = Engine::with_seed(world, seed);
    engine.state_mut().configure_shards(kind);
    // Capacity hint: heartbeats, the two Poisson generators and the fault
    // plan keep the pending-event population in the low thousands; reserve
    // once so the soak never re-allocates queue storage mid-run.
    engine.reserve_events(16 * 1024);
    engine.state_mut().enable_obs(1 << 16);

    let web = create_service_driven(&mut engine, spec("web", 3), "webco").expect("admitted");
    let batch = create_service_driven(&mut engine, spec("batch", 2), "batchco").expect("admitted");
    engine.run_until(SimTime::from_secs(30));
    assert_eq!(engine.state().creations.len(), 2, "both creations finish");

    let horizon = SimTime::from_secs(400);
    recovery::start_self_healing(&mut engine, RecoveryConfig::default(), horizon);
    engine.state_mut().recovery.set_priority(web, 10);
    engine.state_mut().recovery.set_priority(batch, 0);

    // Continuous load on both services.
    PoissonGenerator {
        service: web,
        dataset_bytes: 30_000,
        rate_rps: 15.0,
        start: SimTime::from_secs(30),
        end: SimTime::from_secs(330),
    }
    .start(&mut engine);
    PoissonGenerator {
        service: batch,
        dataset_bytes: 60_000,
        rate_rps: 4.0,
        start: SimTime::from_secs(30),
        end: SimTime::from_secs(330),
    }
    .start(&mut engine);

    // The randomized fault plan, replayed through the engine.
    let profile = ChaosProfile {
        hosts: vec![1, 2, 3, 4],
        start: SimTime::from_secs(60),
        end: SimTime::from_secs(270),
        mean_gap: SimDuration::from_secs(20),
        mean_repair: SimDuration::from_secs(40),
        domains: Vec::new(),
        master_crashes,
    };
    let plan = FaultPlan::randomized(seed, &profile);
    let faults_injected = plan.len();
    plan.schedule(&mut engine, apply_fault);

    // Periodic routing-invariant sweep.
    engine.schedule_periodic(
        SimTime::from_secs(35),
        SimDuration::from_secs(5),
        horizon,
        |w: &mut SodaWorld, _ctx| {
            recovery::check_invariants(w);
            true
        },
    );

    engine.run_until(horizon);

    let crash_times: Vec<(u64, SimTime)> = plan
        .injections()
        .iter()
        .filter_map(|inj| match inj.fault {
            FaultSpec::HostCrash { host } => Some((host, inj.at)),
            _ => None,
        })
        .collect();
    let master_crash_count = plan
        .injections()
        .iter()
        .filter(|inj| matches!(inj.fault, FaultSpec::MasterCrash))
        .count();
    let events = engine.events_executed();
    let peak_queue_depth = engine.peak_events_pending();
    let sim_secs = engine.now().as_secs_f64();
    let w = engine.state_mut();
    let latency_hist = w.obs.merged_histogram("switch", "response_time");
    let latency = latency_hist
        .as_ref()
        .map(LatencyDigest::from_nanos)
        .unwrap_or_default();
    // Aggregate self-healing stats across every cell (one fold for the
    // monolith).
    let mut stats = w.recovery.stats.clone();
    let mut journal_appended = 0u64;
    let mut degraded = soda_sim::SimDuration::ZERO;
    for k in 0..w.shard_count() {
        let shard = ShardId(k);
        journal_appended += w.journal_of(shard).appended_total();
        degraded += w.recovery_of(shard).degraded_time(horizon);
        if k > 0 {
            let cell = w.recovery_of(shard).stats.clone();
            stats.detections.extend(cell.detections.iter().copied());
            stats.recoveries.extend(cell.recoveries.iter().copied());
            stats.retries += cell.retries;
            stats.degradations += cell.degradations;
            stats.sheds += cell.sheds;
            stats.false_alarms += cell.false_alarms;
            stats.invariant_violations += cell.invariant_violations;
        }
    }
    // Crash → detection latency: each detection matched to the latest
    // crash of that host at or before it.
    let detection_lat: Vec<f64> = stats
        .detections
        .iter()
        .filter_map(|&(host, at)| {
            crash_times
                .iter()
                .filter(|&&(h, t)| h == host && t <= at)
                .map(|&(_, t)| at.saturating_since(t).as_secs_f64())
                .reduce(f64::min)
        })
        .collect();
    let recovery_lat: Vec<f64> = stats
        .recoveries
        .iter()
        .map(|(_, d)| d.as_secs_f64())
        .collect();
    let failover_lat: Vec<f64> = w
        .failover
        .records
        .iter()
        .map(|r| r.recovered_at.saturating_since(r.crashed_at).as_secs_f64())
        .collect();
    let master_failovers = w.failover.records.len();
    let max_journal_replay = w
        .failover
        .records
        .iter()
        .map(|r| r.replayed as u64)
        .max()
        .unwrap_or(0);
    // (empty-slice guard: an empty f64 sum is -0.0, which would leak a
    // negative zero into the report)
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);

    // Fingerprint the full event log (FNV-1a over rendered lines).
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    if let Some(drained) = w.obs.drain_events() {
        for ev in &drained.events {
            for b in ev.to_string().bytes() {
                fp ^= u64::from(b);
                fp = fp.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }

    let result = ChaosSoakResult {
        seed,
        faults_injected,
        detections: stats.detections.len(),
        mean_detection_secs: mean(&detection_lat),
        max_detection_secs: max(&detection_lat),
        recoveries: stats.recoveries.len(),
        mean_recovery_secs: mean(&recovery_lat),
        max_recovery_secs: max(&recovery_lat),
        completed: w.completed.len() as u64,
        dropped: w.dropped,
        degraded_secs: degraded.as_secs_f64(),
        degradations: stats.degradations,
        sheds: stats.sheds,
        false_alarms: stats.false_alarms,
        retries: stats.retries,
        invariant_violations: stats.invariant_violations,
        master_crashes: master_crash_count,
        master_failovers,
        mean_failover_secs: mean(&failover_lat),
        max_failover_secs: max(&failover_lat),
        max_journal_replay,
        journal_appended,
        control_plane: kind.label(),
        shards: w.shard_count(),
        shard_spills: w.shards.spills,
        shard_msgs_sent: w.shards.msgs_sent,
        shard_msgs_stale: w.shards.msgs_stale,
        events,
        sim_secs,
        peak_queue_depth,
        peak_live_flows: w.peak_live_flows as u64,
        peak_open_requests: w.peak_open_requests,
        latency,
        event_fingerprint: fp,
    };
    (result, latency_hist)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One placement cell IS the monolith, even under the full chaos
    /// plan: same seed, same event log, same counters.
    #[test]
    fn sharded_one_cell_soak_matches_monolith() {
        let mono = run(9);
        let (one, _) = run_with_kind(9, ControlPlaneKind::Sharded(1));
        assert_eq!(mono.event_fingerprint, one.event_fingerprint);
        assert_eq!(mono.completed, one.completed);
        assert_eq!(mono.dropped, one.dropped);
        assert_eq!(mono.recoveries, one.recoveries);
        assert_eq!(mono.detections, one.detections);
        assert_eq!(mono.events, one.events);
        assert_eq!(one.shards, 1);
    }

    /// Four cells under chaos: routing invariants hold in every cell,
    /// the service keeps serving, and cross-shard messages flow when a
    /// spilled placement's host dies.
    #[test]
    fn sharded_four_cell_soak_keeps_invariants() {
        let (r, _) = run_with_kind(7, ControlPlaneKind::Sharded(4));
        assert_eq!(r.shards, 4);
        assert_eq!(r.invariant_violations, 0, "never route to a known-dead VSN");
        assert!(r.completed > 1000, "service keeps serving: {}", r.completed);
        assert_eq!(r.latency.count, r.completed);
        assert!(r.shard_spills >= 1, "tight cells force a fleet spill");
        assert!(
            r.shard_msgs_sent >= 1,
            "a spilled node's death crosses shards"
        );
    }

    /// The arena backend IS the map oracle even under the full fault
    /// plan — crashes and repairs churn slots (free, reuse, generation
    /// bumps) in a way the clean scale run never does, so this is the
    /// strongest single-seed storage differential we have.
    #[test]
    fn arena_and_map_soak_fingerprint_identically() {
        let (arena, _) = run_with_storage(7, WorldStorageKind::Arena);
        let (map, _) = run_with_storage(7, WorldStorageKind::Map);
        assert_eq!(arena, map, "full soak results must match field for field");
    }

    #[test]
    fn soak_survives_and_keeps_routing_invariant() {
        let r = run(7);
        assert!(r.faults_injected > 0, "plan must contain faults");
        assert!(r.completed > 1000, "service keeps serving: {}", r.completed);
        assert_eq!(r.invariant_violations, 0, "never route to a known-dead VSN");
        assert_eq!(
            r.latency.count, r.completed,
            "every completion lands in the merged latency digest"
        );
        assert!(r.latency.p50_ms <= r.latency.p99_ms);
        assert!(r.latency.p99_ms <= r.latency.p999_ms);
        assert!(r.latency.p999_ms <= r.latency.max_ms);
        assert!(r.events > 0);
        assert!(r.peak_queue_depth > 0);
        assert!(r.peak_open_requests > 0, "requests were in flight");
    }
}
