//! §4.3's measurement: image download time over the 100 Mbps LAN
//! "grows linearly with the size of the service image".
//!
//! Two measurements are reported per size: the analytic uncontended
//! time, and the time observed in the full event-driven world (download
//! as a NIC flow), which validates the pipeline against the closed form.

use serde::Serialize;
use soda_net::http::HttpModel;
use soda_net::link::{LinkSpec, ProcessorSharingLink};
use soda_sim::SimTime;

/// One sweep point.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Image size, bytes.
    pub image_bytes: u64,
    /// Closed-form uncontended download seconds.
    pub analytic_secs: f64,
    /// Seconds measured through the flow-level link model.
    pub simulated_secs: f64,
}

/// Image sizes swept (covers the Table 2 images and beyond).
pub const SIZES: [u64; 6] = [
    15_000_000,
    29_300_000,
    60_000_000,
    120_000_000,
    253_000_000,
    400_000_000,
];

/// Reproduce the measurement.
pub fn run() -> Vec<Row> {
    let http = HttpModel::new();
    let lan = LinkSpec::lan_100mbps();
    SIZES
        .iter()
        .map(|&bytes| {
            let analytic = http.download_time(bytes, &lan).as_secs_f64();
            // Through the fluid link: one flow, full rate.
            let mut link = ProcessorSharingLink::new(lan);
            link.add_flow(http.download_bytes(bytes), SimTime::ZERO);
            link.advance(SimTime::from_secs(3_600));
            let (_, finish) = link.take_completed()[0];
            let simulated = (finish + lan.latency).as_secs_f64();
            Row {
                image_bytes: bytes,
                analytic_secs: analytic,
                simulated_secs: simulated,
            }
        })
        .collect()
}

/// Least-squares linearity check: returns the R² of seconds ~ bytes.
pub fn linearity_r2(rows: &[Row]) -> f64 {
    let xs: Vec<f64> = rows.iter().map(|r| r.image_bytes as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.simulated_secs).collect();
    soda_sim::stats::linear_fit(&xs, &ys)
        .map(|f| f.r2)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_time_is_linear_in_size() {
        let rows = run();
        assert_eq!(rows.len(), SIZES.len());
        let r2 = linearity_r2(&rows);
        assert!(r2 > 0.9999, "R² = {r2}");
        // Monotone.
        for w in rows.windows(2) {
            assert!(w[1].simulated_secs > w[0].simulated_secs);
        }
    }

    #[test]
    fn simulated_matches_analytic() {
        for r in run() {
            let rel = (r.simulated_secs - r.analytic_secs).abs() / r.analytic_secs;
            assert!(
                rel < 0.01,
                "{} bytes: sim {} vs analytic {}",
                r.image_bytes,
                r.simulated_secs,
                r.analytic_secs
            );
        }
    }

    #[test]
    fn magnitudes_sane_for_100mbps() {
        // 400 MB at ~100 Mbps with 3% framing ≈ 33 s.
        let rows = run();
        let last = rows.last().unwrap();
        assert!(
            (30.0..40.0).contains(&last.simulated_secs),
            "{}",
            last.simulated_secs
        );
    }
}
