//! X-SHARD — shard-count scaling sweep and the shard-vs-monolith
//! differential gate.
//!
//! The sharded control plane is only trustworthy because the monolith
//! is kept alive as its oracle. This experiment drives both:
//!
//! * **Gate** ([`gate`]) — the CI mode. On a compact scale grid point
//!   and on the chaos soak, `Sharded(1)` must replay the `Monolith`
//!   bit-identically (trajectory + event-log fingerprints, event
//!   counts), and `Sharded(n)` for n > 1 must keep the conservation
//!   laws: every service admitted, every request completed or counted
//!   dropped, zero routing-invariant violations.
//! * **Sweep** ([`sweep`]) — the scaling-curve mode. Runs the
//!   1,000-host / 1M-request workload across shard counts and a
//!   10,000-host point, so the per-shard-count throughput trajectory
//!   lands in `results/BENCH_exp_shard.json`.

use serde::Serialize;
use soda_core::shard::ControlPlaneKind;
use soda_sim::QueueKind;

use crate::experiments::chaos_soak;
use crate::experiments::scale::{self, ScaleConfig, ScaleResult};
use crate::SweepRunner;

/// One differential comparison in the gate report.
#[derive(Clone, Debug, Serialize)]
pub struct GateCheck {
    /// What was compared (e.g. `"scale n=1 trajectory"`).
    pub name: String,
    /// Whether the check held.
    pub passed: bool,
    /// Human-readable detail (fingerprints, counts).
    pub detail: String,
}

/// The gate's full report: every check, plus the runs it compared.
#[derive(Clone, Debug, Serialize)]
pub struct GateReport {
    /// Shard count exercised on the n > 1 side.
    pub shards: u32,
    /// Every comparison made, in order.
    pub checks: Vec<GateCheck>,
    /// The scale grid points (monolith, sharded-1, sharded-n).
    pub scale_points: Vec<ScaleResult>,
    /// True iff every check passed.
    pub passed: bool,
}

fn check(checks: &mut Vec<GateCheck>, name: &str, passed: bool, detail: String) {
    checks.push(GateCheck {
        name: name.to_string(),
        passed,
        detail,
    });
}

/// Run the differential gate with `n` cells on the sharded side
/// (n ∈ {1, n} is always exercised; the monolith is the oracle).
pub fn gate(n: u32) -> GateReport {
    let n = n.max(2);
    let mut checks = Vec::new();

    // Compact utility grid point, observability on so the event-log
    // fingerprint participates. 8 hosts divide evenly into n cells for
    // every n in {2, 4, 8}.
    let cfg = ScaleConfig {
        hosts: 8,
        requests: 20_000,
        seed: 1303,
        obs: true,
        queue: QueueKind::Wheel,
        ..ScaleConfig::default()
    };
    let mono = scale::run(&cfg);
    let one = scale::run(&ScaleConfig {
        kind: ControlPlaneKind::Sharded(1),
        ..cfg
    });
    let many = scale::run(&ScaleConfig {
        kind: ControlPlaneKind::Sharded(n),
        ..cfg
    });

    check(
        &mut checks,
        "scale n=1 trajectory fingerprint",
        one.trajectory_fingerprint == mono.trajectory_fingerprint,
        format!(
            "monolith {:#018x} vs sharded-1 {:#018x}",
            mono.trajectory_fingerprint, one.trajectory_fingerprint
        ),
    );
    check(
        &mut checks,
        "scale n=1 event fingerprint",
        one.event_fingerprint == mono.event_fingerprint,
        format!(
            "monolith {:#018x} vs sharded-1 {:#018x}",
            mono.event_fingerprint, one.event_fingerprint
        ),
    );
    check(
        &mut checks,
        "scale n=1 event count",
        one.events == mono.events,
        format!("monolith {} vs sharded-1 {}", mono.events, one.events),
    );
    check(
        &mut checks,
        &format!("scale n={n} admission totals"),
        many.services == mono.services && many.vsns == mono.vsns,
        format!(
            "services {} vs {}, vsns {} vs {}",
            mono.services, many.services, mono.vsns, many.vsns
        ),
    );
    check(
        &mut checks,
        &format!("scale n={n} request conservation"),
        many.completed + many.dropped == cfg.requests,
        format!(
            "completed {} + dropped {} vs submitted {}",
            many.completed, many.dropped, cfg.requests
        ),
    );

    // Chaos tier: the soak's fault plan, heartbeat draws and backoff
    // jitter must also be oblivious to a single-cell control plane.
    let mono_soak = chaos_soak::run(11);
    let (one_soak, _) = chaos_soak::run_with_kind(11, ControlPlaneKind::Sharded(1));
    let (many_soak, _) = chaos_soak::run_with_kind(11, ControlPlaneKind::Sharded(n.min(4)));
    check(
        &mut checks,
        "soak n=1 event fingerprint",
        one_soak.event_fingerprint == mono_soak.event_fingerprint,
        format!(
            "monolith {:#018x} vs sharded-1 {:#018x}",
            mono_soak.event_fingerprint, one_soak.event_fingerprint
        ),
    );
    check(
        &mut checks,
        "soak n=1 recovery accounting",
        one_soak.detections == mono_soak.detections
            && one_soak.recoveries == mono_soak.recoveries
            && one_soak.completed == mono_soak.completed
            && one_soak.dropped == mono_soak.dropped,
        format!(
            "detections {}/{} recoveries {}/{} completed {}/{} dropped {}/{}",
            mono_soak.detections,
            one_soak.detections,
            mono_soak.recoveries,
            one_soak.recoveries,
            mono_soak.completed,
            one_soak.completed,
            mono_soak.dropped,
            one_soak.dropped
        ),
    );
    check(
        &mut checks,
        &format!("soak n={} routing invariant", n.min(4)),
        many_soak.invariant_violations == 0,
        format!("{} violations", many_soak.invariant_violations),
    );
    check(
        &mut checks,
        &format!("soak n={} keeps serving", n.min(4)),
        many_soak.completed > 1000,
        format!("{} completed", many_soak.completed),
    );

    let passed = checks.iter().all(|c| c.passed);
    GateReport {
        shards: n,
        checks,
        scale_points: vec![mono, one, many],
        passed,
    }
}

/// The sweep grid: shard counts over the 1,000-host / 1M-request
/// workload, plus a 10,000-host point at the largest count.
pub fn sweep_grid(hosts: u32, requests: u64, shard_counts: &[u32]) -> Vec<ScaleConfig> {
    shard_counts
        .iter()
        .map(|&n| ScaleConfig {
            hosts,
            requests,
            seed: 1303,
            kind: if n <= 1 {
                ControlPlaneKind::Monolith
            } else {
                ControlPlaneKind::Sharded(n)
            },
            ..ScaleConfig::default()
        })
        .collect()
}

/// Run a sweep grid, fanning points across cores (each point is an
/// independent single-threaded simulation, so per-point results are
/// identical to a serial sweep's).
pub fn sweep(grid: Vec<ScaleConfig>) -> Vec<ScaleResult> {
    SweepRunner::from_env()
        .run(grid, |cfg| scale::run(&cfg))
        .results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_on_the_pinned_seed() {
        let report = gate(4);
        let failed: Vec<&GateCheck> = report.checks.iter().filter(|c| !c.passed).collect();
        assert!(report.passed, "failed checks: {failed:?}");
        assert_eq!(report.scale_points.len(), 3);
        assert_eq!(report.scale_points[2].shards, 4);
    }

    #[test]
    fn sweep_grid_labels_shard_counts() {
        let grid = sweep_grid(8, 1_000, &[1, 2, 4]);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0].kind, ControlPlaneKind::Monolith);
        assert_eq!(grid[1].kind, ControlPlaneKind::Sharded(2));
        assert_eq!(grid[2].kind, ControlPlaneKind::Sharded(4));
    }
}
