//! X-MIG — virtual-service-node migration (an extension the paper's
//! resizing machinery makes natural): replace a node on one host with a
//! fresh one on another, shipping the guest's memory image across the
//! LAN. Make-before-break: the old node serves until the replacement is
//! up, so the measured cost is total migration *time*, not downtime.

use serde::Serialize;
use soda_core::master::SodaMaster;
use soda_core::service::ServiceSpec;
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::http::HttpModel;
use soda_net::link::LinkSpec;
use soda_net::pool::IpPool;
use soda_sim::SimTime;
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;

/// One migration measurement.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Guest memory size (the checkpoint), MB.
    pub mem_mb: u32,
    /// Checkpoint transfer seconds over the 100 Mbps LAN.
    pub transfer_secs: f64,
    /// Replacement bootstrap seconds on the target.
    pub bootstrap_secs: f64,
    /// Total migration time.
    pub total_secs: f64,
    /// Did the switch stay serviceable throughout (make-before-break)?
    pub zero_downtime: bool,
}

/// Sweep guest memory sizes.
pub fn run(mem_sizes_mb: &[u32]) -> Vec<Row> {
    let lan = LinkSpec::lan_100mbps();
    let http = HttpModel::new();
    mem_sizes_mb
        .iter()
        .map(|&mem_mb| {
            let mut master = SodaMaster::new();
            let mut daemons = vec![
                SodaDaemon::new(HupHost::seattle(
                    HostId(1),
                    IpPool::new("10.0.0.0".parse().expect("valid"), 8),
                )),
                SodaDaemon::new(HupHost::tacoma(
                    HostId(2),
                    IpPool::new("10.0.1.0".parse().expect("valid"), 8),
                )),
            ];
            let spec = ServiceSpec {
                name: "svc".into(),
                image: RootFsCatalog::new().base_1_0(),
                required_services: vec!["network", "syslogd"],
                app_class: StartupClass::Light,
                instances: 1,
                machine: ResourceVector::new(512, mem_mb, 1024, 10),
                port: 8080,
            };
            let reply = master
                .create_service_now(spec, "asp", &mut daemons, SimTime::ZERO)
                .expect("admitted");
            let svc = reply.service;
            let vsn = master.service(svc).expect("exists").nodes[0].vsn;
            let src = master.service(svc).expect("exists").nodes[0].host;
            let target = if src == HostId(1) {
                HostId(2)
            } else {
                HostId(1)
            };
            let out = master
                .migrate(svc, vsn, target, &mut daemons, SimTime::ZERO)
                .expect("migration admitted");
            // During transfer+bootstrap the old node still routes.
            let old_serves = {
                let sw = master.switch_mut(svc).expect("switch");
                let i = sw.route(SimTime::ZERO).expect("old node healthy");
                let picked = sw.backends()[i].vsn;
                let ok = picked == vsn;
                sw.complete(picked, soda_sim::SimDuration::from_millis(1), SimTime::ZERO);
                ok
            };
            let transfer_secs = http.download_time(out.checkpoint_bytes, &lan).as_secs_f64();
            let bootstrap_secs = out.ticket.timing.total().as_secs_f64();
            master
                .complete_migration(&out, &mut daemons, SimTime::from_secs(60))
                .expect("completes");
            // After cut-over the new node routes.
            let new_serves = {
                let sw = master.switch_mut(svc).expect("switch");
                let i = sw.route(SimTime::ZERO).expect("new node healthy");
                let picked = sw.backends()[i].vsn;
                let ok = picked == out.new_vsn;
                sw.complete(picked, soda_sim::SimDuration::from_millis(1), SimTime::ZERO);
                ok
            };
            Row {
                mem_mb,
                transfer_secs,
                bootstrap_secs,
                total_secs: transfer_secs + bootstrap_secs,
                zero_downtime: old_serves && new_serves,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_time_scales_with_memory() {
        let rows = run(&[128, 256, 512]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.zero_downtime, "{} MB", r.mem_mb);
            assert!(r.transfer_secs > 0.0);
            assert!(r.bootstrap_secs > 1.0);
        }
        // Transfer grows ~linearly with the checkpoint.
        assert!(rows[1].transfer_secs > rows[0].transfer_secs * 1.8);
        assert!(rows[2].transfer_secs > rows[1].transfer_secs * 1.8);
        // 256 MB at ~100 Mbps ≈ 21 s.
        let t = rows[1].transfer_secs;
        assert!((18.0..26.0).contains(&t), "{t}");
    }
}
