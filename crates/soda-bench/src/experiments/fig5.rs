//! Figure 5 — CPU shares versus time for the *web*/*comp*/*log* nodes
//! under (a) unmodified Linux and (b) SODA's proportional-share
//! scheduler.
//!
//! "Each of the three virtual service nodes is allocated an *equal*
//! share of the CPU. However, their loads are *higher* than their
//! respective shares. … the 'equal-share' isolation between the virtual
//! service nodes is better enforced by our enhanced host OS."

use serde::Serialize;
use soda_hostos::process::Uid;
use soda_hostos::sched::{
    record_share_samples, CpuScheduler, LotteryScheduler, ProportionalShareScheduler,
    TimeShareScheduler,
};
use soda_sim::{Obs, SimDuration, SimTime, WindowedMean};
use soda_workload::loads::Fig5Workload;

/// Scheduler tick (Linux 2.4's 10 ms jiffy scale).
pub const TICK: SimDuration = SimDuration::from_millis(10);

/// One node's share trajectory and summary.
#[derive(Clone, Debug, Serialize)]
pub struct NodeSeries {
    /// Node label (`web`/`comp`/`log`).
    pub label: &'static str,
    /// Per-second mean CPU share, in time order.
    pub shares: Vec<f64>,
    /// Mean share over the run.
    pub mean: f64,
    /// Standard deviation of the per-second shares.
    pub std_dev: f64,
}

/// Result of one scheduler run.
#[derive(Clone, Debug, Serialize)]
pub struct SchedulerRun {
    /// Which scheduler.
    pub scheduler: &'static str,
    /// Per-node series (web, comp, log order).
    pub nodes: Vec<NodeSeries>,
}

impl SchedulerRun {
    /// Maximum deviation of any node's mean share from the fair 1/3.
    pub fn max_mean_deviation(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| (n.mean - 1.0 / 3.0).abs())
            .fold(0.0, f64::max)
    }
}

fn run_one(
    mut sched: Box<dyn CpuScheduler>,
    name: &'static str,
    secs: u64,
    seed: u64,
) -> SchedulerRun {
    run_one_observed(sched.as_mut(), name, secs, seed, &Obs::disabled())
}

/// [`run_one`] with an observability handle: every scheduler tick emits
/// one [`soda_sim::Event::SchedulerShareSample`] per uid plus the
/// `sched.uid_share` gauge (the tacoma host carries the Figure 5 mix).
fn run_one_observed(
    sched: &mut dyn CpuScheduler,
    name: &'static str,
    secs: u64,
    seed: u64,
    obs: &Obs,
) -> SchedulerRun {
    let mut workload = Fig5Workload::standard(seed);
    let uids = workload.uids();
    let labels = ["web", "comp", "log"];
    let mut windows: Vec<WindowedMean> = (0..3)
        .map(|_| WindowedMean::new(SimDuration::from_secs(1)))
        .collect();
    let ticks = secs * 1_000 / TICK.as_millis();
    let mut now = SimTime::ZERO;
    // Host 2 is tacoma — the host carrying the web/comp/log mix in the
    // paper's testbed.
    const HOST_TACOMA: u64 = 2;
    for _ in 0..ticks {
        let procs = workload.tick();
        let grants = sched.allocate(&procs);
        record_share_samples(obs, now, HOST_TACOMA, &procs, &grants);
        for (i, uid) in uids.iter().enumerate() {
            let share: f64 = procs
                .iter()
                .zip(grants.iter())
                .filter(|(p, _)| p.uid == *uid)
                .map(|(_, g)| *g)
                .sum();
            windows[i].record(now, share);
        }
        now += TICK;
    }
    let nodes = windows
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            // Close at the last recorded instant so no empty trailing
            // window is emitted (`now` sits exactly on a boundary).
            let shares: Vec<f64> = w
                .finish(now - SimDuration::from_nanos(1))
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            let mean = shares.iter().sum::<f64>() / shares.len().max(1) as f64;
            let var =
                shares.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / shares.len().max(1) as f64;
            NodeSeries {
                label: labels[i],
                shares,
                mean,
                std_dev: var.sqrt(),
            }
        })
        .collect();
    SchedulerRun {
        scheduler: name,
        nodes,
    }
}

/// Figure 5(a): the stock time-share scheduler.
pub fn run_stock(secs: u64, seed: u64) -> SchedulerRun {
    run_one(
        Box::new(TimeShareScheduler::new()),
        "unmodified-linux",
        secs,
        seed,
    )
}

/// Figure 5(b): SODA's proportional-share scheduler with equal shares.
pub fn run_proportional(secs: u64, seed: u64) -> SchedulerRun {
    let mut s = ProportionalShareScheduler::new(100);
    for uid in [Uid(1), Uid(2), Uid(3)] {
        s.set_share(uid, 100);
    }
    run_one(Box::new(s), "soda-proportional", secs, seed)
}

/// [`run_proportional`] with scheduler share sampling recorded into
/// `obs`: one `SchedulerShareSample` event and `sched.uid_share` gauge
/// update per uid per 10 ms tick.
pub fn run_proportional_observed(secs: u64, seed: u64, obs: &Obs) -> SchedulerRun {
    let mut s = ProportionalShareScheduler::new(100);
    for uid in [Uid(1), Uid(2), Uid(3)] {
        s.set_share(uid, 100);
    }
    run_one_observed(&mut s, "soda-proportional", secs, seed, obs)
}

/// Ablation: lottery scheduling with equal tickets — same mean shares as
/// the deterministic proportional scheduler, higher variance.
pub fn run_lottery(secs: u64, seed: u64) -> SchedulerRun {
    let mut s = LotteryScheduler::new(100, seed.wrapping_add(0x107e47));
    for uid in [Uid(1), Uid(2), Uid(3)] {
        s.set_share(uid, 100);
    }
    run_one(Box::new(s), "lottery", secs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_holds_thirds_stock_skews() {
        let stock = run_stock(30, 42);
        let prop = run_proportional(30, 42);
        // (b): every node's mean within 2% of 1/3.
        assert!(
            prop.max_mean_deviation() < 0.02,
            "prop dev {}",
            prop.max_mean_deviation()
        );
        // (a): visibly unequal — comp (3 spinners) hogs well over 1/3.
        let comp = &stock.nodes[1];
        assert!(comp.mean > 0.45, "stock comp mean {}", comp.mean);
        assert!(
            stock.max_mean_deviation() > 0.10,
            "stock dev {}",
            stock.max_mean_deviation()
        );
        // Same workload, so the contrast is the scheduler's doing.
        assert_eq!(stock.nodes.len(), 3);
        assert_eq!(prop.nodes.len(), 3);
    }

    #[test]
    fn work_conservation_under_overload() {
        // All three nodes demand > 1/3, so total granted ≈ 1 per tick,
        // i.e. per-second shares sum to ≈ 1.
        for run in [run_stock(10, 7), run_proportional(10, 7)] {
            let n = run.nodes[0].shares.len();
            for t in 0..n {
                let total: f64 = run.nodes.iter().map(|s| s.shares[t]).sum();
                assert!(
                    (total - 1.0).abs() < 1e-6,
                    "{} t={t} total {total}",
                    run.scheduler
                );
            }
        }
    }

    #[test]
    fn series_length_matches_duration() {
        let r = run_proportional(15, 1);
        for n in &r.nodes {
            assert!((15..=16).contains(&n.shares.len()), "{}", n.shares.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_stock(10, 3);
        let b = run_stock(10, 3);
        assert_eq!(a.nodes[0].shares, b.nodes[0].shares);
        let c = run_stock(10, 4);
        assert_ne!(a.nodes[0].shares, c.nodes[0].shares);
    }

    #[test]
    fn observed_run_matches_plain_run_and_records_shares() {
        let plain = run_proportional(5, 11);
        let obs = Obs::enabled(2048);
        let observed = run_proportional_observed(5, 11, &obs);
        // Observation must not perturb the trajectory.
        for (a, b) in plain.nodes.iter().zip(observed.nodes.iter()) {
            assert_eq!(a.shares, b.shares);
        }
        // Every uid's share gauge lands in the registry under tacoma.
        let snap = obs.snapshot().expect("enabled");
        for uid in 1..=3u64 {
            let sample = snap
                .find("sched.uid_share", &[("host", 2), ("uid", uid)])
                .unwrap_or_else(|| panic!("missing uid_share gauge for uid {uid}"));
            match sample.value {
                soda_sim::MetricValue::Gauge(v) => {
                    assert!(v > 0.0, "uid {uid} share {v}")
                }
                ref other => panic!("uid_share should be a gauge, got {other:?}"),
            }
        }
        // And the event stream carries per-tick samples: 5 s at 10 ms
        // ticks × 3 uids = 1500 samples (ring-capped at 2048).
        let drained = obs.drain_events().expect("enabled");
        let samples = drained
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    soda_sim::Event::SchedulerShareSample { host: 2, .. }
                )
            })
            .count();
        assert_eq!(samples as u64 + drained.dropped, 1500);
    }

    #[test]
    fn lottery_matches_proportional_mean_with_more_noise() {
        let lot = run_lottery(30, 5);
        let prop = run_proportional(30, 5);
        // Same target: near-equal thirds.
        assert!(
            lot.max_mean_deviation() < 0.05,
            "lottery dev {}",
            lot.max_mean_deviation()
        );
        // But the per-second series is noisier than stride's.
        let noise = |r: &SchedulerRun| {
            r.nodes.iter().map(|n| n.std_dev).sum::<f64>() / r.nodes.len() as f64
        };
        assert!(
            noise(&lot) > noise(&prop),
            "lottery {} vs prop {}",
            noise(&lot),
            noise(&prop)
        );
    }
}
