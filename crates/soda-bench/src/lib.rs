//! # soda-bench
//!
//! The experiment harness: one module per table/figure of the paper plus
//! the extension experiments from DESIGN.md. Each module exposes a
//! `run(...)` returning plain data structs; the `src/bin/exp_*` binaries
//! print them in the paper's layout, and `benches/paper_benches.rs`
//! re-uses the same entry points under criterion.

pub mod experiments;
pub mod memtrack;
pub mod report;
pub mod sweep;

pub use report::{emit_bench, emit_json, write_bench_json, write_json, BenchRecord, Table};
pub use sweep::{SweepOutcome, SweepRunner};
