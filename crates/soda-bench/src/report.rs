//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned-column table, rendered like the paper's tables.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; panics if the arity differs from the headers.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Shorthand for building a row of strings.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(($x).to_string()),*][..]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(cells!["short", 1]);
        t.row(cells!["a-much-longer-name", 123.45]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name  123.45"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(cells!["only-one"]);
    }
}
