//! Plain-text table rendering and JSON report emission for experiment
//! output.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use serde::Serialize;

/// A simple aligned-column table, rendered like the paper's tables.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; panics if the arity differs from the headers.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory where experiment JSON reports land. Defaults to
/// `results/` under the current working directory; override with the
/// `SODA_RESULTS_DIR` environment variable.
pub fn results_dir() -> PathBuf {
    std::env::var_os("SODA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serialize `data` as pretty JSON into `results/<exp>.json` (see
/// [`results_dir`]), creating the directory if needed. Returns the path
/// written. Every `exp_*` binary funnels its rows — and, when
/// observability is enabled, its metrics snapshot — through here so
/// downstream tooling finds one file per experiment.
pub fn write_json<T: Serialize + ?Sized>(exp: &str, data: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{exp}.json"));
    let body = serde_json::to_string_pretty(data)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, body)?;
    Ok(path)
}

/// [`write_json`] plus a one-line confirmation on stdout; errors are
/// reported on stderr rather than unwinding, so a read-only working
/// directory never kills an experiment run.
pub fn emit_json<T: Serialize + ?Sized>(exp: &str, data: &T) {
    match write_json(exp, data) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {exp}.json: {e}"),
    }
}

/// One experiment's machine-readable performance trajectory point.
///
/// Every canonical perf run (`exp_scale`, `exp_link_stress`,
/// `exp_sweep`, `exp_chaos_soak`) reduces its results to this one
/// schema and writes it as `results/BENCH_<experiment>.json`, so a
/// release build's throughput can be tracked commit-over-commit by
/// tooling that never parses the experiment-specific report shapes.
/// Multi-point runs aggregate: walls and counts sum, rates divide the
/// sums, peaks take the max across points.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRecord {
    /// Experiment name, `exp_*` (also names the output file).
    pub experiment: String,
    /// Host wall-clock for the measured region, seconds.
    pub wall_secs: f64,
    /// Virtual time simulated, seconds.
    pub sim_secs: f64,
    /// Engine (or link) events executed.
    pub events: u64,
    /// `events / wall_secs`.
    pub events_per_sec: f64,
    /// Requests (or flows) pushed through the system.
    pub requests: u64,
    /// `requests / wall_secs`.
    pub requests_per_sec: f64,
    /// Event-queue high-water mark.
    pub peak_queue_depth: u64,
    /// High-water mark of concurrently active NIC/link flows.
    pub peak_live_flows: u64,
    /// High-water mark of in-flight (admitted, unanswered) requests.
    pub peak_open_requests: u64,
    /// Warm-standby Master takeovers completed (zero for experiments
    /// that never crash the control plane).
    pub master_failovers: u64,
    /// Mean master crash → takeover-complete latency, seconds (zero
    /// when no failovers happened).
    pub mean_failover_secs: f64,
    /// Longest journal replay a takeover performed, entries.
    pub max_journal_replay: u64,
    /// Worker threads driving the run (1 for serial experiments).
    pub threads: u32,
    /// Epoch barriers crossed by the parallel engine (0 for serial
    /// experiments).
    pub epochs: u64,
    /// Total wall-clock the workers spent parked at epoch barriers,
    /// seconds (0 for serial experiments).
    pub barrier_wait_secs: f64,
    /// Peak heap bytes live at once (counting-allocator high-water
    /// mark; falls back to `VmHWM` when the experiment doesn't install
    /// the tracking allocator, 0 where neither is available).
    pub peak_rss_bytes: u64,
    /// `peak_rss_bytes / hosts` for the experiment's fleet size — the
    /// per-host memory footprint the xl scale budget is written
    /// against (0 when the experiment has no host fleet).
    pub bytes_per_host: u64,
}

impl BenchRecord {
    /// Fold another point into this record: walls, counts and virtual
    /// time sum; peaks take the max; the rates are re-derived from the
    /// folded sums.
    pub fn fold(&mut self, other: &BenchRecord) {
        self.wall_secs += other.wall_secs;
        self.sim_secs += other.sim_secs;
        self.events += other.events;
        self.requests += other.requests;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.peak_live_flows = self.peak_live_flows.max(other.peak_live_flows);
        self.peak_open_requests = self.peak_open_requests.max(other.peak_open_requests);
        // Failover latency folds as a count-weighted mean.
        let folded = self.master_failovers + other.master_failovers;
        if folded > 0 {
            self.mean_failover_secs = (self.mean_failover_secs * self.master_failovers as f64
                + other.mean_failover_secs * other.master_failovers as f64)
                / folded as f64;
        }
        self.master_failovers = folded;
        self.max_journal_replay = self.max_journal_replay.max(other.max_journal_replay);
        // A folded record describes the widest concurrency of any of
        // its points; epochs and barrier idle time accumulate.
        self.threads = self.threads.max(other.threads);
        self.epochs += other.epochs;
        self.barrier_wait_secs += other.barrier_wait_secs;
        // Memory peaks don't sum across points of one process — the
        // folded record keeps the single worst point's pair, so
        // `bytes_per_host` stays consistent with the peak it came from.
        if other.peak_rss_bytes > self.peak_rss_bytes {
            self.peak_rss_bytes = other.peak_rss_bytes;
            self.bytes_per_host = other.bytes_per_host;
        }
        self.events_per_sec = self.events as f64 / self.wall_secs.max(1e-9);
        self.requests_per_sec = self.requests as f64 / self.wall_secs.max(1e-9);
    }
}

/// Serialize a [`BenchRecord`] into `results/BENCH_<experiment>.json`.
pub fn write_bench_json(record: &BenchRecord) -> io::Result<PathBuf> {
    write_json(&format!("BENCH_{}", record.experiment), record)
}

/// [`write_bench_json`] plus a one-line confirmation on stdout; errors
/// go to stderr without unwinding, mirroring [`emit_json`].
pub fn emit_bench(record: &BenchRecord) {
    match write_bench_json(record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!(
            "warning: could not write BENCH_{}.json: {e}",
            record.experiment
        ),
    }
}

/// Shorthand for building a row of strings.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(($x).to_string()),*][..]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that point `SODA_RESULTS_DIR` somewhere
    /// (process-global env, parallel test runner).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(cells!["short", 1]);
        t.row(cells!["a-much-longer-name", 123.45]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name  123.45"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(cells!["only-one"]);
    }

    #[test]
    fn bench_record_folds_sums_and_peaks() {
        let mut a = BenchRecord {
            experiment: "exp_unit".into(),
            wall_secs: 1.0,
            sim_secs: 100.0,
            events: 1_000,
            events_per_sec: 1_000.0,
            requests: 100,
            requests_per_sec: 100.0,
            peak_queue_depth: 10,
            peak_live_flows: 5,
            peak_open_requests: 7,
            master_failovers: 2,
            mean_failover_secs: 4.0,
            max_journal_replay: 10,
            threads: 1,
            epochs: 0,
            barrier_wait_secs: 0.0,
            peak_rss_bytes: 0,
            bytes_per_host: 0,
        };
        let b = BenchRecord {
            wall_secs: 3.0,
            sim_secs: 300.0,
            events: 3_000,
            events_per_sec: 1_000.0,
            requests: 300,
            requests_per_sec: 100.0,
            peak_queue_depth: 4,
            peak_live_flows: 9,
            peak_open_requests: 2,
            master_failovers: 1,
            mean_failover_secs: 1.0,
            max_journal_replay: 30,
            ..a.clone()
        };
        a.fold(&b);
        assert_eq!(a.events, 4_000);
        assert_eq!(a.requests, 400);
        assert_eq!(a.peak_queue_depth, 10);
        assert_eq!(a.peak_live_flows, 9);
        assert_eq!(a.peak_open_requests, 7);
        assert!((a.events_per_sec - 1_000.0).abs() < 1e-9);
        assert!((a.requests_per_sec - 100.0).abs() < 1e-9);
    }

    /// The rates in a folded record are re-derived from the folded
    /// sums (`events / wall`, `requests / wall`), not averaged from the
    /// per-point rates — the distinction matters whenever points have
    /// unequal walls.
    #[test]
    fn bench_record_rederives_rates_from_folded_wall() {
        let mut a = BenchRecord {
            experiment: "exp_unit".into(),
            wall_secs: 1.0,
            sim_secs: 10.0,
            events: 10_000,
            events_per_sec: 10_000.0,
            requests: 1_000,
            requests_per_sec: 1_000.0,
            peak_queue_depth: 1,
            peak_live_flows: 1,
            peak_open_requests: 1,
            master_failovers: 0,
            mean_failover_secs: 0.0,
            max_journal_replay: 0,
            threads: 1,
            epochs: 0,
            barrier_wait_secs: 0.0,
            peak_rss_bytes: 0,
            bytes_per_host: 0,
        };
        // Slow point: 9 s of wall for the same event count. A naive
        // rate average would say ~5,555 ev/s; the folded truth is
        // 20,000 events over 10 s = 2,000 ev/s.
        let b = BenchRecord {
            wall_secs: 9.0,
            events_per_sec: 10_000.0 / 9.0,
            requests_per_sec: 1_000.0 / 9.0,
            ..a.clone()
        };
        a.fold(&b);
        assert!((a.wall_secs - 10.0).abs() < 1e-12);
        assert_eq!(a.events, 20_000);
        assert_eq!(a.requests, 2_000);
        assert!((a.events_per_sec - 2_000.0).abs() < 1e-9);
        assert!((a.requests_per_sec - 200.0).abs() < 1e-9);
    }

    /// Failover fields merge correctly: the mean folds count-weighted,
    /// the replay depth takes the max, and a failover-free point leaves
    /// the other side's latency untouched.
    #[test]
    fn bench_record_folds_failover_fields() {
        let base = BenchRecord {
            experiment: "exp_unit".into(),
            wall_secs: 1.0,
            sim_secs: 1.0,
            events: 1,
            events_per_sec: 1.0,
            requests: 1,
            requests_per_sec: 1.0,
            peak_queue_depth: 1,
            peak_live_flows: 1,
            peak_open_requests: 1,
            master_failovers: 0,
            mean_failover_secs: 0.0,
            max_journal_replay: 0,
            threads: 1,
            epochs: 0,
            barrier_wait_secs: 0.0,
            peak_rss_bytes: 0,
            bytes_per_host: 0,
        };
        // Count-weighted mean: 3 takeovers at 2 s + 1 takeover at 10 s
        // fold to (3·2 + 1·10) / 4 = 4 s.
        let mut a = BenchRecord {
            master_failovers: 3,
            mean_failover_secs: 2.0,
            max_journal_replay: 17,
            ..base.clone()
        };
        let b = BenchRecord {
            master_failovers: 1,
            mean_failover_secs: 10.0,
            max_journal_replay: 5,
            ..base.clone()
        };
        a.fold(&b);
        assert_eq!(a.master_failovers, 4);
        assert!((a.mean_failover_secs - 4.0).abs() < 1e-12);
        assert_eq!(a.max_journal_replay, 17, "replay depth takes the max");

        // Folding in a failover-free point must not dilute the mean.
        let mut c = BenchRecord {
            master_failovers: 2,
            mean_failover_secs: 6.0,
            max_journal_replay: 9,
            ..base.clone()
        };
        c.fold(&base);
        assert_eq!(c.master_failovers, 2);
        assert!((c.mean_failover_secs - 6.0).abs() < 1e-12);
        assert_eq!(c.max_journal_replay, 9);

        // Two failover-free records stay at zero (no 0/0 poisoning).
        let mut d = base.clone();
        d.fold(&base);
        assert_eq!(d.master_failovers, 0);
        assert_eq!(d.mean_failover_secs, 0.0);
    }

    /// Parallel-engine fields fold with their own semantics: `threads`
    /// is the widest point (a sweep mixing serial and 4-thread points
    /// is a 4-thread record), while `epochs` and barrier idle time
    /// accumulate like the other cost counters.
    #[test]
    fn bench_record_folds_parallel_fields() {
        let base = BenchRecord {
            experiment: "exp_unit".into(),
            wall_secs: 1.0,
            sim_secs: 1.0,
            events: 1,
            events_per_sec: 1.0,
            requests: 1,
            requests_per_sec: 1.0,
            peak_queue_depth: 1,
            peak_live_flows: 1,
            peak_open_requests: 1,
            master_failovers: 0,
            mean_failover_secs: 0.0,
            max_journal_replay: 0,
            threads: 1,
            epochs: 0,
            barrier_wait_secs: 0.0,
            peak_rss_bytes: 0,
            bytes_per_host: 0,
        };
        let mut a = BenchRecord {
            threads: 4,
            epochs: 100,
            barrier_wait_secs: 0.25,
            ..base.clone()
        };
        let b = BenchRecord {
            threads: 2,
            epochs: 40,
            barrier_wait_secs: 0.5,
            ..base.clone()
        };
        a.fold(&b);
        assert_eq!(a.threads, 4, "threads take the max");
        assert_eq!(a.epochs, 140, "epochs sum");
        assert!((a.barrier_wait_secs - 0.75).abs() < 1e-12, "idle sums");

        // A serial point folded into a parallel record leaves the
        // concurrency fields alone.
        let mut c = BenchRecord {
            threads: 8,
            epochs: 7,
            barrier_wait_secs: 0.125,
            ..base.clone()
        };
        c.fold(&base);
        assert_eq!(c.threads, 8);
        assert_eq!(c.epochs, 7);
        assert!((c.barrier_wait_secs - 0.125).abs() < 1e-12);
    }

    /// Memory peaks fold as a *pair*: the folded record reports the
    /// single worst point's `(peak_rss_bytes, bytes_per_host)`, never a
    /// sum (points share one process) and never a mixed pair (a small
    /// fleet's bytes-per-host against a big fleet's peak would be
    /// nonsense).
    #[test]
    fn bench_record_folds_memory_as_the_worst_points_pair() {
        let base = BenchRecord {
            experiment: "exp_unit".into(),
            wall_secs: 1.0,
            sim_secs: 1.0,
            events: 1,
            events_per_sec: 1.0,
            requests: 1,
            requests_per_sec: 1.0,
            peak_queue_depth: 1,
            peak_live_flows: 1,
            peak_open_requests: 1,
            master_failovers: 0,
            mean_failover_secs: 0.0,
            max_journal_replay: 0,
            threads: 1,
            epochs: 0,
            barrier_wait_secs: 0.0,
            peak_rss_bytes: 0,
            bytes_per_host: 0,
        };
        let mut a = BenchRecord {
            peak_rss_bytes: 1_000_000,
            bytes_per_host: 100,
            ..base.clone()
        };
        let b = BenchRecord {
            peak_rss_bytes: 5_000_000,
            bytes_per_host: 50,
            ..base.clone()
        };
        a.fold(&b);
        assert_eq!(a.peak_rss_bytes, 5_000_000, "peak takes the larger point");
        assert_eq!(a.bytes_per_host, 50, "per-host rides with its own peak");

        // A smaller point leaves the pair alone.
        let c = BenchRecord {
            peak_rss_bytes: 10,
            bytes_per_host: 9_999,
            ..base.clone()
        };
        a.fold(&c);
        assert_eq!(a.peak_rss_bytes, 5_000_000);
        assert_eq!(a.bytes_per_host, 50);

        // Memory-free points fold to zero, not garbage.
        let mut d = base.clone();
        d.fold(&base);
        assert_eq!(d.peak_rss_bytes, 0);
        assert_eq!(d.bytes_per_host, 0);
    }

    #[test]
    fn bench_json_lands_under_bench_prefix() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("soda-bench-record-test");
        std::env::set_var("SODA_RESULTS_DIR", &dir);
        let rec = BenchRecord {
            experiment: "exp_unit".into(),
            wall_secs: 0.5,
            sim_secs: 10.0,
            events: 42,
            events_per_sec: 84.0,
            requests: 7,
            requests_per_sec: 14.0,
            peak_queue_depth: 3,
            peak_live_flows: 2,
            peak_open_requests: 1,
            master_failovers: 0,
            mean_failover_secs: 0.0,
            max_journal_replay: 0,
            threads: 1,
            epochs: 0,
            barrier_wait_secs: 0.0,
            peak_rss_bytes: 0,
            bytes_per_host: 0,
        };
        let path = write_bench_json(&rec).unwrap();
        std::env::remove_var("SODA_RESULTS_DIR");
        assert_eq!(path, dir.join("BENCH_exp_unit.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"events_per_sec\""), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_json_emits_rows() {
        let _guard = ENV_LOCK.lock().unwrap();
        #[derive(Serialize)]
        struct Row {
            name: String,
            value: u64,
        }
        let dir = std::env::temp_dir().join("soda-report-test");
        std::env::set_var("SODA_RESULTS_DIR", &dir);
        let path = write_json(
            "unit_test",
            &[Row {
                name: "a".into(),
                value: 7,
            }],
        )
        .unwrap();
        std::env::remove_var("SODA_RESULTS_DIR");
        assert_eq!(path, dir.join("unit_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"value\": 7"), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
