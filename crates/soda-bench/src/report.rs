//! Plain-text table rendering and JSON report emission for experiment
//! output.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use serde::Serialize;

/// A simple aligned-column table, rendered like the paper's tables.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; panics if the arity differs from the headers.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory where experiment JSON reports land. Defaults to
/// `results/` under the current working directory; override with the
/// `SODA_RESULTS_DIR` environment variable.
pub fn results_dir() -> PathBuf {
    std::env::var_os("SODA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serialize `data` as pretty JSON into `results/<exp>.json` (see
/// [`results_dir`]), creating the directory if needed. Returns the path
/// written. Every `exp_*` binary funnels its rows — and, when
/// observability is enabled, its metrics snapshot — through here so
/// downstream tooling finds one file per experiment.
pub fn write_json<T: Serialize + ?Sized>(exp: &str, data: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{exp}.json"));
    let body = serde_json::to_string_pretty(data)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, body)?;
    Ok(path)
}

/// [`write_json`] plus a one-line confirmation on stdout; errors are
/// reported on stderr rather than unwinding, so a read-only working
/// directory never kills an experiment run.
pub fn emit_json<T: Serialize + ?Sized>(exp: &str, data: &T) {
    match write_json(exp, data) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {exp}.json: {e}"),
    }
}

/// Shorthand for building a row of strings.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(($x).to_string()),*][..]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(cells!["short", 1]);
        t.row(cells!["a-much-longer-name", 123.45]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name  123.45"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(cells!["only-one"]);
    }

    #[test]
    fn write_json_emits_rows() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            value: u64,
        }
        let dir = std::env::temp_dir().join("soda-report-test");
        std::env::set_var("SODA_RESULTS_DIR", &dir);
        let path = write_json(
            "unit_test",
            &[Row {
                name: "a".into(),
                value: 7,
            }],
        )
        .unwrap();
        std::env::remove_var("SODA_RESULTS_DIR");
        assert_eq!(path, dir.join("unit_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"value\": 7"), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
