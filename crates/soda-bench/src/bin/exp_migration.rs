//! Extension X-MIG: virtual-service-node migration — checkpoint
//! transfer + replacement bootstrap, make-before-break.

use soda_bench::cells;
use soda_bench::experiments::migration;
use soda_bench::Table;

fn main() {
    let rows = migration::run(&[64, 128, 256, 512]);
    let mut t = Table::new(
        "X-MIG — node migration time vs guest memory size",
        &[
            "guest mem",
            "checkpoint transfer (s)",
            "replacement bootstrap (s)",
            "total (s)",
            "zero downtime",
        ],
    );
    for r in &rows {
        t.row(cells![
            format!("{}MB", r.mem_mb),
            format!("{:.1}", r.transfer_secs),
            format!("{:.1}", r.bootstrap_secs),
            format!("{:.1}", r.total_secs),
            r.zero_downtime,
        ]);
    }
    t.print();
    println!("the old node serves until cut-over; migration cost is time, not downtime");
    soda_bench::emit_json("exp_migration", &rows);
}
