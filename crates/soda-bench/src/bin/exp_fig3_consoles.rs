//! Regenerates Figure 3: the side-by-side consoles of the web-content
//! and honeypot virtual service nodes co-existing on HUP host *seattle* —
//! each guest's `ps -ef` shows only its own processes.

use soda_core::service::ServiceSpec;
use soda_core::world::{create_service_driven, SodaWorld};
use soda_hostos::resources::ResourceVector;
use soda_sim::{Engine, SimTime};
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;

fn main() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 2003);
    let m = ResourceVector::TABLE1_EXAMPLE;
    let web = create_service_driven(
        &mut engine,
        ServiceSpec {
            name: "Web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: 3,
            machine: m,
            port: 8080,
        },
        "webco",
    )
    .expect("web admitted");
    let honeypot = create_service_driven(
        &mut engine,
        ServiceSpec {
            name: "Honeypot".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: m,
            port: 80,
        },
        "seclab",
    )
    .expect("honeypot admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 2);

    let world = engine.state();
    let hp_node = world.master.service(honeypot).expect("exists").nodes[0];
    let web_node = world
        .master
        .service(web)
        .expect("exists")
        .nodes
        .iter()
        .find(|n| n.host == hp_node.host)
        .copied()
        .expect("co-hosted on seattle");
    let daemon = world
        .daemons
        .iter()
        .find(|d| d.host.id == hp_node.host)
        .expect("host");

    // Build both consoles, then print them side by side like the
    // screenshot.
    let console = |vsn| -> Vec<String> {
        let guest = daemon
            .vsn(vsn)
            .and_then(|v| v.guest())
            .expect("running guest");
        let mut lines: Vec<String> = guest
            .login_banner()
            .lines()
            .map(|s| s.to_string())
            .collect();
        lines.push("# ps -ef".into());
        let procs: Vec<_> = daemon.host.processes.ps_uid(guest.uid).collect();
        for p in procs {
            lines.push(format!("  {:>4} {:>4}  {}", p.pid, p.uid, p.command));
        }
        lines
    };
    let left = console(web_node.vsn);
    let right = console(hp_node.vsn);
    println!("== Figure 3 — co-existing virtual service nodes on seattle ==");
    let width = left.iter().map(|l| l.len()).max().unwrap_or(0).max(30);
    let rows = left.len().max(right.len());
    for i in 0..rows {
        let l = left.get(i).map(|s| s.as_str()).unwrap_or("");
        let r = right.get(i).map(|s| s.as_str()).unwrap_or("");
        println!("{l:<width$}  |  {r}");
    }
    println!();
    println!(
        "host view: {} processes total across both guests + host",
        daemon.host.processes.len()
    );
    println!("each guest sees only its own uid's processes — administration isolation");

    #[derive(serde::Serialize)]
    struct ConsoleReport {
        web_console: Vec<String>,
        honeypot_console: Vec<String>,
        host_process_count: usize,
    }
    soda_bench::emit_json(
        "exp_fig3_consoles",
        &ConsoleReport {
            web_console: left,
            honeypot_console: right,
            host_process_count: daemon.host.processes.len(),
        },
    );
}
