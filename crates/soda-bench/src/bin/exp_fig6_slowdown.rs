//! Regenerates Figure 6: application-level slowdown — mean request
//! response time in (1) a VSN with switch, (2) host OS with switch,
//! (3) host OS direct, across dataset sizes.

use rayon::prelude::*;
use soda_bench::cells;
use soda_bench::experiments::fig6::{self, Scenario};
use soda_bench::Table;
use soda_workload::datasets::FIG6_SWEEP;

fn main() {
    let n_requests = 100;
    let cells_out: Vec<fig6::Cell> = FIG6_SWEEP
        .par_iter()
        .flat_map(|p| {
            Scenario::ALL
                .into_par_iter()
                .map(move |s| fig6::run_cell(s, p, n_requests, 6))
        })
        .collect();
    let mut t = Table::new(
        "Figure 6 — application-level slow-down (mean response time, s)",
        &[
            "dataset",
            "(1) vsn+switch",
            "(2) host+switch",
            "(3) host-direct",
            "slowdown (1)/(3)",
        ],
    );
    for p in &FIG6_SWEEP {
        let get = |sc: Scenario| {
            cells_out
                .iter()
                .find(|c| c.scenario == sc && c.dataset_bytes == p.dataset_bytes)
                .map(|c| c.mean_secs)
                .unwrap_or(0.0)
        };
        let c1 = get(Scenario::VsnWithSwitch);
        let c3 = get(Scenario::HostDirect);
        t.row(cells![
            format!("{}kB", p.dataset_bytes / 1000),
            format!("{:.4}", c1),
            format!("{:.4}", get(Scenario::HostWithSwitch)),
            format!("{:.4}", c3),
            format!("{:.2}x", c1 / c3),
        ]);
    }
    t.print();
    println!("paper: (1) > (2) > (3); the factor is far below Table 4's ~22x and ~flat in size");
    soda_bench::emit_json("exp_fig6_slowdown", &cells_out);
}
