//! Extension X-FAILOVER: Master crash with in-flight placements,
//! warm-standby recovery via checkpoint ⊕ journal replay.
//!
//! Usage: `exp_master_failover [seed]` (default seed 11). The scenario
//! runs twice from the same seed and the two event logs must be
//! bit-identical; exits non-zero if any gate fails (no takeover,
//! routing-invariant violation, drop-accounting leak, or divergent
//! replay), so CI can gate on it.

use soda_bench::experiments::master_failover::{self, MasterFailoverResult};
use soda_bench::BenchRecord;

fn print_result(r: &MasterFailoverResult) {
    println!(
        "== X-FAILOVER — master crash + journaled takeover (seed {}) ==",
        r.seed
    );
    println!(
        "master crashed / recovered  : {:.2} s / {:.2} s ({:.2} s to takeover)",
        r.crashed_at_secs, r.recovered_at_secs, r.failover_secs
    );
    println!(
        "journal replay              : {} entries over checkpoint seq {} ({} appended, {} compactions)",
        r.replayed, r.checkpoint_seq, r.journal_appended, r.checkpoints_taken
    );
    println!(
        "reconciliation              : {} restored, {} adopted, {} scrubbed, {} duplicates, {} orphaned boots",
        r.restored, r.adopted, r.scrubbed, r.duplicates, r.orphaned_boots
    );
    println!("master epoch after takeover : {}", r.epoch);
    println!(
        "admissions while down       : {} refused, retry ok = {}",
        r.refused_while_down, r.requeued_admission_ok
    );
    println!("orphaned creation completed : {}", r.late_creation_done);
    println!(
        "requests issued / done / dropped: {} / {} / {}",
        r.issued, r.completed, r.dropped
    );
    println!("invariant violations        : {}", r.invariant_violations);
    println!(
        "event-log fingerprint       : {:#018x}",
        r.event_fingerprint
    );
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let wall_start = std::time::Instant::now();
    let r = master_failover::run(seed);
    let replay = master_failover::run(seed);
    let wall_secs = wall_start.elapsed().as_secs_f64();
    print_result(&r);

    soda_bench::emit_bench(&BenchRecord {
        experiment: "exp_master_failover".to_string(),
        wall_secs,
        sim_secs: r.sim_secs + replay.sim_secs,
        events: r.events + replay.events,
        events_per_sec: (r.events + replay.events) as f64 / wall_secs.max(1e-9),
        requests: r.issued + replay.issued,
        requests_per_sec: (r.issued + replay.issued) as f64 / wall_secs.max(1e-9),
        peak_queue_depth: 0,
        peak_live_flows: 0,
        peak_open_requests: 0,
        master_failovers: (r.failovers + replay.failovers) as u64,
        mean_failover_secs: (r.failover_secs + replay.failover_secs) / 2.0,
        max_journal_replay: r.replayed.max(replay.replayed) as u64,
        threads: 1,
        epochs: 0,
        barrier_wait_secs: 0.0,
        peak_rss_bytes: soda_bench::memtrack::peak_rss_bytes(),
        bytes_per_host: 0,
    });
    soda_bench::emit_json("exp_master_failover", &r);

    let mut failed = false;
    if r.failovers != 1 {
        eprintln!("FAIL: expected exactly one takeover, saw {}", r.failovers);
        failed = true;
    }
    if r.invariant_violations > 0 {
        eprintln!("FAIL: switch routed to a known-dead VSN");
        failed = true;
    }
    if r.issued != r.completed + r.dropped {
        eprintln!(
            "FAIL: drop accounting leaks ({} issued vs {} completed + {} dropped)",
            r.issued, r.completed, r.dropped
        );
        failed = true;
    }
    if r.event_fingerprint != replay.event_fingerprint {
        eprintln!(
            "FAIL: replay diverged ({:#018x} vs {:#018x})",
            r.event_fingerprint, replay.event_fingerprint
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nall gates passed: takeover, routing invariant, conservation, bit-identical replay");
}
