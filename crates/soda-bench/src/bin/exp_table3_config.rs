//! Regenerates Table 3: the service configuration file the SODA Master
//! writes after priming `<3, M>` over the testbed.

use soda_core::master::SodaMaster;
use soda_core::service::ServiceSpec;
use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::SodaDaemon;
use soda_hup::host::{HostId, HupHost};
use soda_net::pool::IpPool;
use soda_sim::SimTime;
use soda_vmm::rootfs::RootFsCatalog;
use soda_vmm::sysservices::StartupClass;

fn main() {
    let mut master = SodaMaster::new();
    let mut daemons = vec![
        SodaDaemon::new(HupHost::seattle(
            HostId(1),
            // The paper's published address range.
            IpPool::new("128.10.9.125".parse().expect("valid"), 1),
        )),
        SodaDaemon::new(HupHost::tacoma(
            HostId(2),
            IpPool::new("128.10.9.126".parse().expect("valid"), 1),
        )),
    ];
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let reply = master
        .create_service_now(spec, "webco", &mut daemons, SimTime::ZERO)
        .expect("admitted");
    println!("== Table 3 — service configuration file (<3, M> over two nodes) ==");
    let config = master
        .switch(reply.service)
        .expect("switch")
        .config()
        .to_string();
    print!("{config}");
    println!();
    println!("paper:");
    println!("BackEnd 128.10.9.125 8080 2");
    println!("BackEnd 128.10.9.126 8080 1");

    #[derive(serde::Serialize)]
    struct ConfigReport {
        config_lines: Vec<String>,
        paper_lines: Vec<String>,
    }
    soda_bench::emit_json(
        "exp_table3_config",
        &ConfigReport {
            config_lines: config.lines().map(|s| s.to_string()).collect(),
            paper_lines: vec![
                "BackEnd 128.10.9.125 8080 2".into(),
                "BackEnd 128.10.9.126 8080 1".into(),
            ],
        },
    );
}
