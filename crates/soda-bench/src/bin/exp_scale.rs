//! Extension X-SCALE: hot-path throughput sweep.
//!
//! Usage:
//!   `exp_scale`                       — full 3×3 grid
//!                                       (hosts ∈ {10,100,1000} × requests ∈ {10k,100k,1M}),
//!                                       grid points fanned out across cores
//!                                       via [`soda_bench::SweepRunner`]
//!   `exp_scale HOSTS REQUESTS`        — one grid point
//!   `exp_scale HOSTS REQUESTS BUDGET` — one grid point with a wall-clock
//!                                       budget in seconds; exits non-zero
//!                                       if the point runs over (CI gate).
//!   `exp_scale profile [HOSTS REQUESTS]` — one grid point with the engine
//!                                       self-profiler on; prints the
//!                                       per-event-kind wall-clock cost
//!                                       table.
//!
//! All points are written to `results/exp_scale.json`, and the run's
//! aggregate throughput trajectory to `results/BENCH_exp_scale.json`.
//! Each grid point is an independent single-threaded simulation;
//! parallelism lives only across points, so the per-point fingerprints
//! are identical to a serial sweep's.

use soda_bench::experiments::scale::{self, ScaleConfig, ScaleResult};
use soda_bench::{BenchRecord, SweepRunner, Table};

fn print_point(r: &ScaleResult) {
    println!(
        "{:>5} hosts {:>8} req | {:>6} vsns | {:>9.2} s wall | {:>11.0} ev/s | peak q {:>8} | rss {:>8} kB | traj {:#018x}",
        r.hosts,
        r.requests,
        r.vsns,
        r.wall_secs,
        r.events_per_sec,
        r.peak_queue_depth,
        r.peak_rss_kb,
        r.trajectory_fingerprint,
    );
}

/// Reduce all grid points to one aggregate trajectory record.
fn bench_record(results: &[ScaleResult]) -> BenchRecord {
    let mut it = results.iter().map(|r| BenchRecord {
        experiment: "exp_scale".to_string(),
        wall_secs: r.wall_secs,
        sim_secs: r.sim_secs,
        events: r.events,
        events_per_sec: r.events_per_sec,
        requests: r.requests,
        requests_per_sec: r.requests_per_sec,
        peak_queue_depth: r.peak_queue_depth as u64,
        peak_live_flows: r.peak_live_flows,
        peak_open_requests: r.peak_open_requests,
        master_failovers: 0,
        mean_failover_secs: 0.0,
        max_journal_replay: 0,
        threads: 1,
        epochs: 0,
        barrier_wait_secs: 0.0,
    });
    let mut acc = it.next().expect("at least one grid point");
    for rec in it {
        acc.fold(&rec);
    }
    acc
}

fn print_profile(r: &ScaleResult) {
    let mut t = Table::new(
        "engine self-profile — wall-clock cost per event kind",
        &["kind", "count", "total ms", "mean µs", "max µs"],
    );
    for e in &r.profile {
        t.row(soda_bench::cells![
            e.kind,
            e.count,
            format!("{:.2}", e.total_ns as f64 / 1e6),
            format!("{:.2}", e.mean_ns / 1e3),
            format!("{:.2}", e.max_ns as f64 / 1e3),
        ]);
    }
    t.print();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== X-SCALE — hot-path throughput sweep ==");
    if args.first().map(String::as_str) == Some("profile") {
        let cfg = ScaleConfig {
            hosts: args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10),
            requests: args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000),
            profile: true,
            ..ScaleConfig::default()
        };
        let r = scale::run(&cfg);
        print_point(&r);
        print_profile(&r);
        soda_bench::emit_json("exp_scale_profile", &r);
        return;
    }
    let results: Vec<ScaleResult>;
    let budget_secs: Option<f64> = args.get(2).and_then(|s| s.parse().ok());
    match (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(hosts), Some(requests)) => {
            results = vec![scale::run(&ScaleConfig {
                hosts,
                requests,
                ..ScaleConfig::default()
            })];
        }
        _ => {
            let grid: Vec<ScaleConfig> = [10u32, 100, 1000]
                .iter()
                .flat_map(|&hosts| {
                    [10_000u64, 100_000, 1_000_000]
                        .iter()
                        .map(move |&requests| ScaleConfig {
                            hosts,
                            requests,
                            ..ScaleConfig::default()
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let runner = SweepRunner::from_env();
            println!("fanning 9 grid points over {} thread(s)", runner.threads());
            let sweep = runner.run(grid, |cfg| scale::run(&cfg));
            println!(
                "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
                sweep.wall_secs,
                sweep.serial_estimate_secs(),
                sweep.speedup_vs_serial()
            );
            results = sweep.results;
            for r in &results {
                print_point(r);
            }
        }
    }
    if results.len() == 1 {
        print_point(&results[0]);
    }
    soda_bench::emit_json("exp_scale", &results);
    soda_bench::emit_bench(&bench_record(&results));
    if let Some(budget) = budget_secs {
        let worst = results.iter().map(|r| r.wall_secs).fold(0.0f64, f64::max);
        if worst > budget {
            eprintln!("FAIL: slowest point took {worst:.2} s (budget {budget:.2} s)");
            std::process::exit(1);
        }
        println!("within budget: {worst:.2} s <= {budget:.2} s");
    }
}
