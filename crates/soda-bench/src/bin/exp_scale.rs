//! Extension X-SCALE: hot-path throughput sweep.
//!
//! Usage:
//!   `exp_scale`                       — full 3×3 grid
//!                                       (hosts ∈ {10,100,1000} × requests ∈ {10k,100k,1M}),
//!                                       grid points fanned out across cores
//!                                       via [`soda_bench::SweepRunner`]
//!   `exp_scale HOSTS REQUESTS`        — one grid point
//!   `exp_scale HOSTS REQUESTS BUDGET` — one grid point with a wall-clock
//!                                       budget in seconds; exits non-zero
//!                                       if the point runs over (CI gate).
//!
//! All points are written to `results/exp_scale.json`. Each grid point is
//! an independent single-threaded simulation; parallelism lives only
//! across points, so the per-point fingerprints are identical to a serial
//! sweep's.

use soda_bench::experiments::scale::{self, ScaleConfig, ScaleResult};
use soda_bench::SweepRunner;

fn print_point(r: &ScaleResult) {
    println!(
        "{:>5} hosts {:>8} req | {:>6} vsns | {:>9.2} s wall | {:>11.0} ev/s | peak q {:>8} | rss {:>8} kB | traj {:#018x}",
        r.hosts,
        r.requests,
        r.vsns,
        r.wall_secs,
        r.events_per_sec,
        r.peak_queue_depth,
        r.peak_rss_kb,
        r.trajectory_fingerprint,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== X-SCALE — hot-path throughput sweep ==");
    let results: Vec<ScaleResult>;
    let budget_secs: Option<f64> = args.get(2).and_then(|s| s.parse().ok());
    match (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(hosts), Some(requests)) => {
            results = vec![scale::run(&ScaleConfig {
                hosts,
                requests,
                ..ScaleConfig::default()
            })];
        }
        _ => {
            let grid: Vec<ScaleConfig> = [10u32, 100, 1000]
                .iter()
                .flat_map(|&hosts| {
                    [10_000u64, 100_000, 1_000_000]
                        .iter()
                        .map(move |&requests| ScaleConfig {
                            hosts,
                            requests,
                            ..ScaleConfig::default()
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let runner = SweepRunner::from_env();
            println!("fanning 9 grid points over {} thread(s)", runner.threads());
            let sweep = runner.run(grid, |cfg| scale::run(&cfg));
            println!(
                "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
                sweep.wall_secs,
                sweep.serial_estimate_secs(),
                sweep.speedup_vs_serial()
            );
            results = sweep.results;
            for r in &results {
                print_point(r);
            }
        }
    }
    if results.len() == 1 {
        print_point(&results[0]);
    }
    soda_bench::emit_json("exp_scale", &results);
    if let Some(budget) = budget_secs {
        let worst = results.iter().map(|r| r.wall_secs).fold(0.0f64, f64::max);
        if worst > budget {
            eprintln!("FAIL: slowest point took {worst:.2} s (budget {budget:.2} s)");
            std::process::exit(1);
        }
        println!("within budget: {worst:.2} s <= {budget:.2} s");
    }
}
