//! Extension X-SCALE: hot-path throughput sweep.
//!
//! Usage:
//!   `exp_scale`                       — full 3×3 grid
//!                                       (hosts ∈ {10,100,1000} × requests ∈ {10k,100k,1M}),
//!                                       grid points fanned out across cores
//!                                       via [`soda_bench::SweepRunner`]
//!   `exp_scale HOSTS REQUESTS`        — one grid point
//!   `exp_scale HOSTS REQUESTS BUDGET` — one grid point with a wall-clock
//!                                       budget in seconds; exits non-zero
//!                                       if the point runs over (CI gate).
//!   `exp_scale profile [HOSTS REQUESTS]` — one grid point with the engine
//!                                       self-profiler on; prints the
//!                                       per-event-kind wall-clock cost
//!                                       table.
//!   `exp_scale xl [WALL_S] [MEM_GB]`  — the utility-scale tier: 100,000
//!                                       hosts × 1M VSNs × 10M requests on
//!                                       a 16-cell control plane. Gates on
//!                                       BOTH wall clock and peak heap;
//!                                       exits non-zero over either budget.
//!   `exp_scale xl-smoke [WALL_S] [MEM_GB]` — the CI-sized xl rehearsal:
//!                                       10,000 hosts × 100k VSNs × 1M
//!                                       requests, same shape and gates.
//!   `exp_scale storage-gate`          — differential gate: the dense
//!                                       arena backend must fingerprint
//!                                       bit-identically to the ordered-map
//!                                       oracle on a clean 100-host/100k
//!                                       point AND on a full chaos soak
//!                                       (slot reuse under crashes). Exits
//!                                       non-zero on any divergence.
//!
//! All points are written to `results/exp_scale.json`, and the run's
//! aggregate throughput trajectory to `results/BENCH_exp_scale.json`
//! (`exp_scale_xl` / `exp_scale_xl_smoke` for the xl tiers, so the
//! committed baselines never mix). Each grid point is an independent
//! single-threaded simulation; parallelism lives only across points, so
//! the per-point fingerprints are identical to a serial sweep's.

use soda_bench::experiments::chaos_soak;
use soda_bench::experiments::scale::{self, ScaleConfig, ScaleResult};
use soda_bench::{BenchRecord, SweepRunner, Table};
use soda_core::shard::ControlPlaneKind;
use soda_core::WorldStorageKind;

/// Exact heap accounting for the memory gates: the xl tier budgets
/// bytes, and `VmHWM` alone would smear allocator slack and thread
/// stacks over the measurement.
#[global_allocator]
static GLOBAL: soda_bench::memtrack::TrackingAllocator = soda_bench::memtrack::TrackingAllocator;

fn print_point(r: &ScaleResult) {
    println!(
        "{:>6} hosts {:>8} req | {:>7} vsns | {:>6} | {:>9.2} s wall | {:>11.0} ev/s | peak q {:>8} | heap {:>8.1} MB | traj {:#018x}",
        r.hosts,
        r.requests,
        r.vsns,
        r.storage,
        r.wall_secs,
        r.events_per_sec,
        r.peak_queue_depth,
        r.peak_rss_bytes as f64 / 1e6,
        r.trajectory_fingerprint,
    );
}

/// Reduce all grid points to one aggregate trajectory record.
fn bench_record(name: &str, results: &[ScaleResult]) -> BenchRecord {
    let mut it = results.iter().map(|r| BenchRecord {
        experiment: name.to_string(),
        wall_secs: r.wall_secs,
        sim_secs: r.sim_secs,
        events: r.events,
        events_per_sec: r.events_per_sec,
        requests: r.requests,
        requests_per_sec: r.requests_per_sec,
        peak_queue_depth: r.peak_queue_depth as u64,
        peak_live_flows: r.peak_live_flows,
        peak_open_requests: r.peak_open_requests,
        master_failovers: 0,
        mean_failover_secs: 0.0,
        max_journal_replay: 0,
        threads: 1,
        epochs: 0,
        barrier_wait_secs: 0.0,
        peak_rss_bytes: r.peak_rss_bytes,
        bytes_per_host: r.peak_rss_bytes / u64::from(r.hosts.max(1)),
    });
    let mut acc = it.next().expect("at least one grid point");
    for rec in it {
        acc.fold(&rec);
    }
    acc
}

fn print_profile(r: &ScaleResult) {
    let mut t = Table::new(
        "engine self-profile — wall-clock cost per event kind",
        &["kind", "count", "total ms", "mean µs", "max µs"],
    );
    for e in &r.profile {
        t.row(soda_bench::cells![
            e.kind,
            e.count,
            format!("{:.2}", e.total_ns as f64 / 1e6),
            format!("{:.2}", e.mean_ns / 1e3),
            format!("{:.2}", e.max_ns as f64 / 1e3),
        ]);
    }
    t.print();
}

/// One xl-tier point with wall AND memory gates. The workload shape is
/// the scale run's (5 services/host, deterministic 10 ms driver); only
/// `instances` drops to 2 so the VSN count is exactly 10 × hosts.
fn run_xl(tier: &str, hosts: u32, requests: u64, wall_budget: f64, mem_budget_gb: f64) {
    let cfg = ScaleConfig {
        hosts,
        requests,
        instances: 2,
        kind: ControlPlaneKind::Sharded(16),
        ..ScaleConfig::default()
    };
    println!(
        "xl tier `{tier}`: {hosts} hosts, {} VSNs, {requests} requests, sharded-16, arena storage",
        cfg.instances * hosts * scale::SERVICES_PER_HOST,
    );
    let r = scale::run(&cfg);
    print_point(&r);
    println!(
        "heap peak {:.2} GB ({} bytes, {} bytes/host) | completed {} dropped {}",
        r.peak_rss_bytes as f64 / 1e9,
        r.peak_rss_bytes,
        r.peak_rss_bytes / u64::from(hosts),
        r.completed,
        r.dropped,
    );
    let name = format!("exp_scale_{}", tier.replace('-', "_"));
    soda_bench::emit_json(&name, &r);
    soda_bench::emit_bench(&bench_record(&name, std::slice::from_ref(&r)));
    let mut failed = false;
    if r.wall_secs > wall_budget {
        eprintln!(
            "FAIL: xl point took {:.2} s (budget {wall_budget:.2} s)",
            r.wall_secs
        );
        failed = true;
    }
    let mem_budget = (mem_budget_gb * 1e9) as u64;
    if r.peak_rss_bytes > mem_budget {
        eprintln!(
            "FAIL: xl point peaked at {:.2} GB heap (budget {mem_budget_gb:.2} GB)",
            r.peak_rss_bytes as f64 / 1e9
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "within budgets: {:.2} s <= {wall_budget:.2} s, {:.2} GB <= {mem_budget_gb:.2} GB",
        r.wall_secs,
        r.peak_rss_bytes as f64 / 1e9
    );
}

/// The arena-vs-map differential gate: a clean scale point and a full
/// chaos soak, each run on both backends, must fingerprint identically.
fn run_storage_gate() {
    let mut failed = false;

    let cfg = ScaleConfig {
        hosts: 100,
        requests: 100_000,
        seed: 1303,
        obs: true,
        storage: WorldStorageKind::Arena,
        ..ScaleConfig::default()
    };
    let arena = scale::run(&cfg);
    let map = scale::run(&ScaleConfig {
        storage: WorldStorageKind::Map,
        ..cfg
    });
    print_point(&arena);
    print_point(&map);
    let scale_ok = arena.trajectory_fingerprint == map.trajectory_fingerprint
        && arena.event_fingerprint == map.event_fingerprint
        && arena.events == map.events;
    println!(
        "{} scale point: arena ≡ map — traj {:#018x} vs {:#018x}, events {} vs {}",
        if scale_ok { "PASS" } else { "FAIL" },
        arena.trajectory_fingerprint,
        map.trajectory_fingerprint,
        arena.events,
        map.events
    );
    failed |= !scale_ok;

    // The soak churns slots — crash, scrub, re-place — so generation
    // guards and free-list reuse face real traffic, not just growth.
    let (soak_arena, _) = chaos_soak::run_with_storage(7, WorldStorageKind::Arena);
    let (soak_map, _) = chaos_soak::run_with_storage(7, WorldStorageKind::Map);
    let soak_ok = soak_arena == soak_map;
    println!(
        "{} chaos soak: arena ≡ map — fp {:#018x} vs {:#018x}, events {} vs {}",
        if soak_ok { "PASS" } else { "FAIL" },
        soak_arena.event_fingerprint,
        soak_map.event_fingerprint,
        soak_arena.events,
        soak_map.events
    );
    failed |= !soak_ok;

    soda_bench::emit_json("exp_scale_storage_gate", &vec![arena, map]);
    if failed {
        eprintln!("FAIL: arena storage diverged from the map oracle");
        std::process::exit(1);
    }
    println!("gate passed: arena storage is the map oracle, clean and under chaos");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== X-SCALE — hot-path throughput sweep ==");
    match args.first().map(String::as_str) {
        Some("profile") => {
            let cfg = ScaleConfig {
                hosts: args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10),
                requests: args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000),
                profile: true,
                ..ScaleConfig::default()
            };
            let r = scale::run(&cfg);
            print_point(&r);
            print_profile(&r);
            soda_bench::emit_json("exp_scale_profile", &r);
            return;
        }
        Some("xl") => {
            let wall = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600.0);
            let mem = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16.0);
            run_xl("xl", 100_000, 10_000_000, wall, mem);
            return;
        }
        Some("xl-smoke") => {
            let wall = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120.0);
            let mem = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4.0);
            run_xl("xl-smoke", 10_000, 1_000_000, wall, mem);
            return;
        }
        Some("storage-gate") => {
            run_storage_gate();
            return;
        }
        _ => {}
    }
    let results: Vec<ScaleResult>;
    let budget_secs: Option<f64> = args.get(2).and_then(|s| s.parse().ok());
    match (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(hosts), Some(requests)) => {
            results = vec![scale::run(&ScaleConfig {
                hosts,
                requests,
                ..ScaleConfig::default()
            })];
        }
        _ => {
            let grid: Vec<ScaleConfig> = [10u32, 100, 1000]
                .iter()
                .flat_map(|&hosts| {
                    [10_000u64, 100_000, 1_000_000]
                        .iter()
                        .map(move |&requests| ScaleConfig {
                            hosts,
                            requests,
                            ..ScaleConfig::default()
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let runner = SweepRunner::from_env();
            println!("fanning 9 grid points over {} thread(s)", runner.threads());
            let sweep = runner.run(grid, |cfg| scale::run(&cfg));
            println!(
                "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
                sweep.wall_secs,
                sweep.serial_estimate_secs(),
                sweep.speedup_vs_serial()
            );
            results = sweep.results;
            for r in &results {
                print_point(r);
            }
        }
    }
    if results.len() == 1 {
        print_point(&results[0]);
    }
    soda_bench::emit_json("exp_scale", &results);
    soda_bench::emit_bench(&bench_record("exp_scale", &results));
    if let Some(budget) = budget_secs {
        let worst = results.iter().map(|r| r.wall_secs).fold(0.0f64, f64::max);
        if worst > budget {
            eprintln!("FAIL: slowest point took {worst:.2} s (budget {budget:.2} s)");
            std::process::exit(1);
        }
        println!("within budget: {worst:.2} s <= {budget:.2} s");
    }
}
