//! Extension X-SCALE: hot-path throughput sweep.
//!
//! Usage:
//!   `exp_scale`                       — full 3×3 grid
//!                                       (hosts ∈ {10,100,1000} × requests ∈ {10k,100k,1M})
//!   `exp_scale HOSTS REQUESTS`        — one grid point
//!   `exp_scale HOSTS REQUESTS BUDGET` — one grid point with a wall-clock
//!                                       budget in seconds; exits non-zero
//!                                       if the point runs over (CI gate).
//!
//! All points are written to `results/exp_scale.json`.

use soda_bench::experiments::scale::{self, ScaleConfig, ScaleResult};

fn print_point(r: &ScaleResult) {
    println!(
        "{:>5} hosts {:>8} req | {:>6} vsns | {:>9.2} s wall | {:>11.0} ev/s | peak q {:>8} | rss {:>8} kB | traj {:#018x}",
        r.hosts,
        r.requests,
        r.vsns,
        r.wall_secs,
        r.events_per_sec,
        r.peak_queue_depth,
        r.peak_rss_kb,
        r.trajectory_fingerprint,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== X-SCALE — hot-path throughput sweep ==");
    let mut results: Vec<ScaleResult> = Vec::new();
    let budget_secs: Option<f64> = args.get(2).and_then(|s| s.parse().ok());
    match (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(hosts), Some(requests)) => {
            results.push(scale::run(&ScaleConfig {
                hosts,
                requests,
                seed: 42,
                obs: false,
            }));
        }
        _ => {
            for &hosts in &[10u32, 100, 1000] {
                for &requests in &[10_000u64, 100_000, 1_000_000] {
                    results.push(scale::run(&ScaleConfig {
                        hosts,
                        requests,
                        seed: 42,
                        obs: false,
                    }));
                    print_point(results.last().expect("just pushed"));
                }
            }
        }
    }
    if results.len() == 1 {
        print_point(&results[0]);
    }
    soda_bench::emit_json("exp_scale", &results);
    if let Some(budget) = budget_secs {
        let worst = results.iter().map(|r| r.wall_secs).fold(0.0f64, f64::max);
        if worst > budget {
            eprintln!("FAIL: slowest point took {worst:.2} s (budget {budget:.2} s)");
            std::process::exit(1);
        }
        println!("within budget: {worst:.2} s <= {budget:.2} s");
    }
}
