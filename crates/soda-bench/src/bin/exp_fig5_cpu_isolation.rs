//! Regenerates Figure 5: CPU shares versus time for the web/comp/log
//! virtual service nodes under (a) unmodified Linux and (b) SODA's
//! proportional-share scheduler.

use soda_bench::cells;
use soda_bench::experiments::fig5;
use soda_bench::Table;

fn print_run(run: &fig5::SchedulerRun, label: &str) {
    println!("== Figure 5({label}) — host OS: {} ==", run.scheduler);
    // The time series, one row per second.
    let n = run.nodes[0].shares.len();
    let mut t = Table::new("CPU share per second", &["t (s)", "web", "comp", "log"]);
    for i in 0..n {
        t.row(cells![
            i + 1,
            format!("{:.3}", run.nodes[0].shares[i]),
            format!("{:.3}", run.nodes[1].shares[i]),
            format!("{:.3}", run.nodes[2].shares[i]),
        ]);
    }
    t.print();
    let mut s = Table::new(
        "summary",
        &["node", "mean share", "std dev", "|mean - 1/3|"],
    );
    for node in &run.nodes {
        s.row(cells![
            node.label,
            format!("{:.4}", node.mean),
            format!("{:.4}", node.std_dev),
            format!("{:.4}", (node.mean - 1.0 / 3.0).abs()),
        ]);
    }
    s.print();
}

fn main() {
    let secs = 60;
    let stock = fig5::run_stock(secs, 2003);
    // Observe the proportional run: per-tick scheduler share samples
    // land in the metrics registry as `sched.uid_share` gauges.
    let obs = soda_sim::Obs::enabled(4096);
    let prop = fig5::run_proportional_observed(secs, 2003, &obs);
    print_run(&stock, "a");
    println!();
    print_run(&prop, "b");
    println!(
        "\nmax deviation from equal share: stock {:.4} vs proportional {:.4}",
        stock.max_mean_deviation(),
        prop.max_mean_deviation()
    );
    println!("paper: the enhanced host OS enforces the equal shares; stock Linux does not");

    // Ablation: lottery scheduling — same target shares, noisier.
    let lot = fig5::run_lottery(secs, 2003);
    let mut t = Table::new(
        "ablation — lottery scheduling (equal tickets)",
        &["node", "mean share", "std dev"],
    );
    for node in &lot.nodes {
        t.row(cells![
            node.label,
            format!("{:.4}", node.mean),
            format!("{:.4}", node.std_dev)
        ]);
    }
    println!();
    t.print();
    println!(
        "lottery holds the means (max dev {:.4}) with higher variance than stride",
        lot.max_mean_deviation()
    );
    let snapshot = obs.snapshot().expect("obs is enabled");
    soda_bench::emit_json(
        "exp_fig5_cpu_isolation",
        &serde_json::Value::Object(vec![
            ("stock".into(), serde_json::to_value(&stock)),
            ("proportional".into(), serde_json::to_value(&prop)),
            ("lottery".into(), serde_json::to_value(&lot)),
            ("metrics".into(), serde_json::to_value(&snapshot)),
        ]),
    );
}
