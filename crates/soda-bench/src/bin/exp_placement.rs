//! Extension X-PLC: placement-policy ablation — admission yield, node
//! fan-out and load balance of first-fit / best-fit / worst-fit on the
//! same randomized request stream.

use soda_bench::cells;
use soda_bench::experiments::placement;
use soda_bench::Table;

fn main() {
    let mut report: Vec<(String, serde_json::Value)> = Vec::new();
    for (label, requests) in [
        ("partial fill, 6 requests", 6u32),
        ("saturating, 40 requests", 40),
    ] {
        let results = placement::run(8, requests, 7);
        report.push((label.to_string(), serde_json::to_value(&results)));
        let mut t = Table::new(
            format!("X-PLC — placement ablation (8 hosts, {label}, n ∈ 1..=4)"),
            &[
                "policy",
                "admitted",
                "rejected",
                "instances",
                "nodes",
                "cpu-util std",
            ],
        );
        for r in &results {
            t.row(cells![
                r.policy,
                r.admitted,
                r.rejected,
                r.instances_placed,
                r.nodes_created,
                format!("{:.4}", r.cpu_util_std),
            ]);
        }
        t.print();
        println!();
    }
    println!("worst-fit (the Master's default) trades node fan-out (more, smaller nodes)");
    println!("for balance; at partial fill its utilisation spread is the lowest, and");
    println!("first-fit leaves whole hosts idle. Admission yield converges at saturation");
    println!("because SODA services may span hosts (§3.2's one-node-per-host granularity).");
    soda_bench::emit_json("exp_placement", &serde_json::Value::Object(report));
}
