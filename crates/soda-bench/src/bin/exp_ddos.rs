//! Extension X-DDOS (§3.5 limitation 2): a DDoS flood at one service's
//! switch degrades a co-hosted bystander — the isolation violation the
//! paper acknowledges.

use soda_bench::experiments::ddos;

fn main() {
    let r = ddos::run(60, 60, 21);
    println!("== X-DDOS — flood at the victim's switch host ==");
    println!(
        "bystander mean response, quiet   : {:.4} s",
        r.baseline_secs
    );
    println!("bystander mean response, flooded : {:.4} s", r.flooded_secs);
    println!("degradation                      : {:.1}x", r.degradation());
    println!("paper (§3.5): the switch \"will be inundated with requests, affecting other");
    println!("virtual service nodes in the same HUP host and therefore violating the");
    println!("service isolation\" — reproduced.");
    soda_bench::emit_json("exp_ddos", &r);
}
