//! Extension X-CHAOS: randomized fault-plan soak with self-healing.
//!
//! Usage: `exp_chaos_soak [seed]` (default seed 42). Exits non-zero if
//! the routing invariant (never route to a known-dead VSN) was ever
//! violated, so CI can gate on it.

use soda_bench::experiments::chaos_soak;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);
    let r = chaos_soak::run(seed);
    println!("== X-CHAOS — fault-plan soak (seed {seed}) ==");
    println!("faults injected             : {}", r.faults_injected);
    println!(
        "host-down detections        : {} (mean {:.2} s, max {:.2} s after crash)",
        r.detections, r.mean_detection_secs, r.max_detection_secs
    );
    println!(
        "recoveries completed        : {} (mean {:.2} s, max {:.2} s after detection)",
        r.recoveries, r.mean_recovery_secs, r.max_recovery_secs
    );
    println!(
        "requests completed / dropped: {} / {}",
        r.completed, r.dropped
    );
    println!("time at degraded capacity   : {:.1} s", r.degraded_secs);
    println!(
        "degradations / sheds        : {} / {}",
        r.degradations, r.sheds
    );
    println!(
        "false alarms / retries      : {} / {}",
        r.false_alarms, r.retries
    );
    println!("invariant violations        : {}", r.invariant_violations);
    println!(
        "event-log fingerprint       : {:#018x}",
        r.event_fingerprint
    );
    soda_bench::emit_json("exp_chaos_soak", &r);
    if r.invariant_violations > 0 {
        eprintln!("FAIL: switch routed to a known-dead VSN");
        std::process::exit(1);
    }
}
