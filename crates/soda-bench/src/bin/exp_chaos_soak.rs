//! Extension X-CHAOS: randomized fault-plan soak with self-healing.
//!
//! Usage: `exp_chaos_soak [--master-faults N] [seed ...]` (default
//! seed 42). `--master-faults N` folds `N` Master-crash faults into
//! each seed's plan, exercising journaled warm-standby failover under
//! the same converging-soak gate. With several
//! seeds the soaks fan out across cores via [`soda_bench::SweepRunner`] —
//! each soak is an independent single-threaded simulation, so per-seed
//! results are identical to serial runs. Exits non-zero if any seed's
//! routing invariant (never route to a known-dead VSN) was violated, so
//! CI can gate on it.

use soda_bench::experiments::chaos_soak::{self, ChaosSoakResult};
use soda_bench::{BenchRecord, SweepRunner};

fn print_result(r: &ChaosSoakResult) {
    println!("== X-CHAOS — fault-plan soak (seed {}) ==", r.seed);
    println!("faults injected             : {}", r.faults_injected);
    println!(
        "host-down detections        : {} (mean {:.2} s, max {:.2} s after crash)",
        r.detections, r.mean_detection_secs, r.max_detection_secs
    );
    println!(
        "recoveries completed        : {} (mean {:.2} s, max {:.2} s after detection)",
        r.recoveries, r.mean_recovery_secs, r.max_recovery_secs
    );
    println!(
        "requests completed / dropped: {} / {}",
        r.completed, r.dropped
    );
    println!("time at degraded capacity   : {:.1} s", r.degraded_secs);
    println!(
        "degradations / sheds        : {} / {}",
        r.degradations, r.sheds
    );
    println!(
        "false alarms / retries      : {} / {}",
        r.false_alarms, r.retries
    );
    println!("invariant violations        : {}", r.invariant_violations);
    if r.master_crashes > 0 {
        println!(
            "master crashes / failovers  : {} / {} (mean {:.2} s, max {:.2} s to takeover)",
            r.master_crashes, r.master_failovers, r.mean_failover_secs, r.max_failover_secs
        );
        println!(
            "journal                     : {} entries appended, longest replay {}",
            r.journal_appended, r.max_journal_replay
        );
    }
    println!(
        "response time (ms)          : p50 {:.2} / p99 {:.2} / p999 {:.2} / max {:.2} over {}",
        r.latency.p50_ms, r.latency.p99_ms, r.latency.p999_ms, r.latency.max_ms, r.latency.count
    );
    println!(
        "event-log fingerprint       : {:#018x}",
        r.event_fingerprint
    );
}

fn main() {
    let mut master_faults: u32 = 0;
    let mut seeds: Vec<u64> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--master-faults" {
            master_faults = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--master-faults takes a count");
        } else if let Ok(s) = a.parse() {
            seeds.push(s);
        }
    }
    if seeds.is_empty() {
        seeds.push(42);
    }
    let wall_start = std::time::Instant::now();
    let results: Vec<ChaosSoakResult> = if seeds.len() == 1 {
        vec![chaos_soak::run_with_faults(seeds[0], master_faults).0]
    } else {
        let runner = SweepRunner::from_env();
        println!(
            "fanning {} soak seeds over {} thread(s)",
            seeds.len(),
            runner.threads()
        );
        let sweep = runner.run(seeds, move |s| {
            chaos_soak::run_with_faults(s, master_faults).0
        });
        println!(
            "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
            sweep.wall_secs,
            sweep.serial_estimate_secs(),
            sweep.speedup_vs_serial()
        );
        sweep.results
    };
    let wall_secs = wall_start.elapsed().as_secs_f64();
    for r in &results {
        print_result(r);
    }
    // Aggregate trajectory: counts sum, peaks max, one wall for the
    // whole (possibly parallel) region.
    let events: u64 = results.iter().map(|r| r.events).sum();
    let requests: u64 = results.iter().map(|r| r.completed + r.dropped).sum();
    soda_bench::emit_bench(&BenchRecord {
        experiment: "exp_chaos_soak".to_string(),
        wall_secs,
        sim_secs: results.iter().map(|r| r.sim_secs).sum(),
        events,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        requests,
        requests_per_sec: requests as f64 / wall_secs.max(1e-9),
        peak_queue_depth: results
            .iter()
            .map(|r| r.peak_queue_depth as u64)
            .max()
            .unwrap_or(0),
        peak_live_flows: results.iter().map(|r| r.peak_live_flows).max().unwrap_or(0),
        peak_open_requests: results
            .iter()
            .map(|r| r.peak_open_requests)
            .max()
            .unwrap_or(0),
        master_failovers: results.iter().map(|r| r.master_failovers as u64).sum(),
        mean_failover_secs: {
            let n: usize = results.iter().map(|r| r.master_failovers).sum();
            if n == 0 {
                0.0
            } else {
                results
                    .iter()
                    .map(|r| r.mean_failover_secs * r.master_failovers as f64)
                    .sum::<f64>()
                    / n as f64
            }
        },
        max_journal_replay: results
            .iter()
            .map(|r| r.max_journal_replay)
            .max()
            .unwrap_or(0),
        threads: 1,
        epochs: 0,
        barrier_wait_secs: 0.0,
        peak_rss_bytes: soda_bench::memtrack::peak_rss_bytes(),
        bytes_per_host: 0,
    });
    // Single-seed runs keep the original object-shaped JSON; multi-seed
    // runs emit an array.
    if results.len() == 1 {
        soda_bench::emit_json("exp_chaos_soak", &results[0]);
    } else {
        soda_bench::emit_json("exp_chaos_soak", &results);
    }
    let violations: u64 = results.iter().map(|r| r.invariant_violations).sum();
    if violations > 0 {
        eprintln!("FAIL: switch routed to a known-dead VSN");
        std::process::exit(1);
    }
    // A crashed Master must always be replaced: a standby that never
    // takes over leaves the control plane dead for the rest of the run.
    if results
        .iter()
        .any(|r| r.master_crashes > 0 && r.master_failovers == 0)
    {
        eprintln!("FAIL: master crashed but no standby takeover completed");
        std::process::exit(1);
    }
}
