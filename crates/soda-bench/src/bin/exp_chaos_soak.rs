//! Extension X-CHAOS: randomized fault-plan soak with self-healing.
//!
//! Usage: `exp_chaos_soak [seed ...]` (default seed 42). With several
//! seeds the soaks fan out across cores via [`soda_bench::SweepRunner`] —
//! each soak is an independent single-threaded simulation, so per-seed
//! results are identical to serial runs. Exits non-zero if any seed's
//! routing invariant (never route to a known-dead VSN) was violated, so
//! CI can gate on it.

use soda_bench::experiments::chaos_soak::{self, ChaosSoakResult};
use soda_bench::SweepRunner;

fn print_result(r: &ChaosSoakResult) {
    println!("== X-CHAOS — fault-plan soak (seed {}) ==", r.seed);
    println!("faults injected             : {}", r.faults_injected);
    println!(
        "host-down detections        : {} (mean {:.2} s, max {:.2} s after crash)",
        r.detections, r.mean_detection_secs, r.max_detection_secs
    );
    println!(
        "recoveries completed        : {} (mean {:.2} s, max {:.2} s after detection)",
        r.recoveries, r.mean_recovery_secs, r.max_recovery_secs
    );
    println!(
        "requests completed / dropped: {} / {}",
        r.completed, r.dropped
    );
    println!("time at degraded capacity   : {:.1} s", r.degraded_secs);
    println!(
        "degradations / sheds        : {} / {}",
        r.degradations, r.sheds
    );
    println!(
        "false alarms / retries      : {} / {}",
        r.false_alarms, r.retries
    );
    println!("invariant violations        : {}", r.invariant_violations);
    println!(
        "event-log fingerprint       : {:#018x}",
        r.event_fingerprint
    );
}

fn main() {
    let seeds: Vec<u64> = {
        let parsed: Vec<u64> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if parsed.is_empty() {
            vec![42]
        } else {
            parsed
        }
    };
    let results: Vec<ChaosSoakResult> = if seeds.len() == 1 {
        vec![chaos_soak::run(seeds[0])]
    } else {
        let runner = SweepRunner::from_env();
        println!(
            "fanning {} soak seeds over {} thread(s)",
            seeds.len(),
            runner.threads()
        );
        let sweep = runner.run(seeds, chaos_soak::run);
        println!(
            "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
            sweep.wall_secs,
            sweep.serial_estimate_secs(),
            sweep.speedup_vs_serial()
        );
        sweep.results
    };
    for r in &results {
        print_result(r);
    }
    // Single-seed runs keep the original object-shaped JSON; multi-seed
    // runs emit an array.
    if results.len() == 1 {
        soda_bench::emit_json("exp_chaos_soak", &results[0]);
    } else {
        soda_bench::emit_json("exp_chaos_soak", &results);
    }
    let violations: u64 = results.iter().map(|r| r.invariant_violations).sum();
    if violations > 0 {
        eprintln!("FAIL: switch routed to a known-dead VSN");
        std::process::exit(1);
    }
}
