//! Extension X-CHAOS: randomized fault-plan soak with self-healing.
//!
//! Usage: `exp_chaos_soak [seed ...]` (default seed 42). With several
//! seeds the soaks fan out across cores via [`soda_bench::SweepRunner`] —
//! each soak is an independent single-threaded simulation, so per-seed
//! results are identical to serial runs. Exits non-zero if any seed's
//! routing invariant (never route to a known-dead VSN) was violated, so
//! CI can gate on it.

use soda_bench::experiments::chaos_soak::{self, ChaosSoakResult};
use soda_bench::{BenchRecord, SweepRunner};

fn print_result(r: &ChaosSoakResult) {
    println!("== X-CHAOS — fault-plan soak (seed {}) ==", r.seed);
    println!("faults injected             : {}", r.faults_injected);
    println!(
        "host-down detections        : {} (mean {:.2} s, max {:.2} s after crash)",
        r.detections, r.mean_detection_secs, r.max_detection_secs
    );
    println!(
        "recoveries completed        : {} (mean {:.2} s, max {:.2} s after detection)",
        r.recoveries, r.mean_recovery_secs, r.max_recovery_secs
    );
    println!(
        "requests completed / dropped: {} / {}",
        r.completed, r.dropped
    );
    println!("time at degraded capacity   : {:.1} s", r.degraded_secs);
    println!(
        "degradations / sheds        : {} / {}",
        r.degradations, r.sheds
    );
    println!(
        "false alarms / retries      : {} / {}",
        r.false_alarms, r.retries
    );
    println!("invariant violations        : {}", r.invariant_violations);
    println!(
        "response time (ms)          : p50 {:.2} / p99 {:.2} / p999 {:.2} / max {:.2} over {}",
        r.latency.p50_ms, r.latency.p99_ms, r.latency.p999_ms, r.latency.max_ms, r.latency.count
    );
    println!(
        "event-log fingerprint       : {:#018x}",
        r.event_fingerprint
    );
}

fn main() {
    let seeds: Vec<u64> = {
        let parsed: Vec<u64> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if parsed.is_empty() {
            vec![42]
        } else {
            parsed
        }
    };
    let wall_start = std::time::Instant::now();
    let results: Vec<ChaosSoakResult> = if seeds.len() == 1 {
        vec![chaos_soak::run(seeds[0])]
    } else {
        let runner = SweepRunner::from_env();
        println!(
            "fanning {} soak seeds over {} thread(s)",
            seeds.len(),
            runner.threads()
        );
        let sweep = runner.run(seeds, chaos_soak::run);
        println!(
            "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
            sweep.wall_secs,
            sweep.serial_estimate_secs(),
            sweep.speedup_vs_serial()
        );
        sweep.results
    };
    let wall_secs = wall_start.elapsed().as_secs_f64();
    for r in &results {
        print_result(r);
    }
    // Aggregate trajectory: counts sum, peaks max, one wall for the
    // whole (possibly parallel) region.
    let events: u64 = results.iter().map(|r| r.events).sum();
    let requests: u64 = results.iter().map(|r| r.completed + r.dropped).sum();
    soda_bench::emit_bench(&BenchRecord {
        experiment: "exp_chaos_soak".to_string(),
        wall_secs,
        sim_secs: results.iter().map(|r| r.sim_secs).sum(),
        events,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        requests,
        requests_per_sec: requests as f64 / wall_secs.max(1e-9),
        peak_queue_depth: results
            .iter()
            .map(|r| r.peak_queue_depth as u64)
            .max()
            .unwrap_or(0),
        peak_live_flows: results.iter().map(|r| r.peak_live_flows).max().unwrap_or(0),
        peak_open_requests: results
            .iter()
            .map(|r| r.peak_open_requests)
            .max()
            .unwrap_or(0),
    });
    // Single-seed runs keep the original object-shaped JSON; multi-seed
    // runs emit an array.
    if results.len() == 1 {
        soda_bench::emit_json("exp_chaos_soak", &results[0]);
    } else {
        soda_bench::emit_json("exp_chaos_soak", &results);
    }
    let violations: u64 = results.iter().map(|r| r.invariant_violations).sum();
    if violations > 0 {
        eprintln!("FAIL: switch routed to a known-dead VSN");
        std::process::exit(1);
    }
}
