//! Extension X-BILL: reservation-based vs usage-based billing over the
//! Figure 5 node mix.

use soda_bench::cells;
use soda_bench::experiments::usage_billing;
use soda_bench::Table;

fn main() {
    let rows = usage_billing::run(3600, 60.0, 11);
    let mut t = Table::new(
        "X-BILL — one host-hour of the web/comp/log mix at 60 units/CPU-hour",
        &["node", "CPU-seconds used", "reserved bill", "usage bill"],
    );
    for r in &rows {
        t.row(cells![
            r.node,
            format!("{:.0}", r.used_cpu_secs),
            format!("{:.2}", r.reserved_bill),
            format!("{:.2}", r.usage_bill),
        ]);
    }
    t.print();
    println!("under full overload the work-conserving proportional scheduler keeps usage");
    println!("near the equal shares, so the two models nearly agree; the gap opens when a");
    println!("tenant idles — its reserved bill stays flat while its usage bill drops");
    soda_bench::emit_json("exp_usage_billing", &rows);
}
