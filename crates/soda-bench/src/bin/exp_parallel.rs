//! Extension X-PARALLEL: epoch-synchronized parallel DES speedup sweep
//! + serial-oracle differential gate.
//!
//! Usage:
//!   `exp_parallel`            — full sweep: the 1,000-host × 1M-request
//!                               workload at 8 cells under serial and
//!                               1/2/4/8 threads (the speedup curve),
//!                               plus a 10,000-host cell×thread grid.
//!   `exp_parallel gate [T]`   — CI differential gate: `Parallel(1)` and
//!                               `Parallel(T)` (default 4) must replay
//!                               the serial oracle bit-identically
//!                               (trajectory + event fingerprints) on a
//!                               compact multi-cell point and a chaos
//!                               seed, the one-cell serial run must
//!                               replay the X-SCALE monolith, and the
//!                               profiler must bucket every event.
//!                               Exits non-zero on any failed check.
//!   `exp_parallel skew [HOSTS REQUESTS CELLS T]` — adaptive-epoch-width
//!                               study on a deliberately imbalanced
//!                               partition (cell 0 carries 90% of the
//!                               load): fixed vs adaptive policies, each
//!                               under serial and `T` threads, with the
//!                               per-worker barrier-wait histogram.
//!                               Gates: each policy's parallel run must
//!                               replay its own serial oracle, and
//!                               adaptive must collapse the epoch count
//!                               and cut total barrier wait vs fixed.
//!                               Exits non-zero on any failure.
//!   `exp_parallel HOSTS REQUESTS CELLS [T...]` — custom sweep over the
//!                               given thread counts (default {1,2,4,8}).
//!
//! Points run one after another (each point is itself multi-threaded,
//! unlike the across-run `SweepRunner` fan-out). All points land in
//! `results/exp_parallel.json` and the aggregate trajectory in
//! `results/BENCH_exp_parallel.json`.

use soda_bench::experiments::parallel::{self, ParallelConfig, ParallelResult};
use soda_bench::{BenchRecord, Table};

/// Exact heap accounting for the bench records (see
/// `soda_bench::memtrack`); the parallel engine's hot path is epoch
/// batches, so two relaxed atomics per allocation are noise here.
#[global_allocator]
static GLOBAL: soda_bench::memtrack::TrackingAllocator = soda_bench::memtrack::TrackingAllocator;

fn print_points(results: &[ParallelResult]) {
    let mut t = Table::new(
        "X-PARALLEL — epoch-synchronized speedup",
        &[
            "hosts",
            "requests",
            "cells",
            "engine",
            "policy",
            "epochs",
            "msgs",
            "barrier s",
            "wall s",
            "ev/s",
            "speedup",
            "traj",
        ],
    );
    // Speedup is relative to the serial point of the same (hosts,
    // cells, requests, policy) workload, where one exists in the
    // result set.
    let serial_wall = |r: &ParallelResult| {
        results
            .iter()
            .find(|s| {
                s.engine == "serial"
                    && s.hosts == r.hosts
                    && s.cells == r.cells
                    && s.requests == r.requests
                    && s.policy == r.policy
            })
            .map(|s| s.wall_secs)
    };
    for r in results {
        let speedup = serial_wall(r)
            .map(|w| format!("{:.2}x", w / r.wall_secs.max(1e-9)))
            .unwrap_or_else(|| "-".to_string());
        t.row(soda_bench::cells![
            r.hosts,
            r.requests,
            r.cells,
            r.engine,
            r.policy,
            r.epochs,
            r.remote_msgs,
            format!("{:.2}", r.barrier_wait_secs),
            format!("{:.2}", r.wall_secs),
            format!("{:.0}", r.events_per_sec),
            speedup,
            format!("{:#018x}", r.trajectory_fingerprint),
        ]);
    }
    t.print();
}

/// Per-worker barrier-wait histogram for the parallel points: where the
/// idle time actually sat. With a skewed partition under fixed epochs
/// the workers that own only light cells park for most of the run;
/// adaptive widths should flatten these bars toward zero.
fn print_barrier_histogram(results: &[ParallelResult]) {
    for r in results {
        if r.barrier_wait_by_worker.is_empty() {
            continue;
        }
        let max = r
            .barrier_wait_by_worker
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        println!(
            "barrier wait by worker — {} {} cells={} ({} epochs, {:.2} s total):",
            r.engine, r.policy, r.cells, r.epochs, r.barrier_wait_secs
        );
        for (w, secs) in r.barrier_wait_by_worker.iter().enumerate() {
            let width = if max > 0.0 {
                ((secs / max) * 40.0).round() as usize
            } else {
                0
            };
            println!("  w{w}: {:>8.2} s |{}", secs, "#".repeat(width));
        }
    }
}

/// Reduce sweep points to one aggregate trajectory record.
fn bench_record(name: &str, results: &[ParallelResult]) -> BenchRecord {
    let mut it = results.iter().map(|r| BenchRecord {
        experiment: name.to_string(),
        wall_secs: r.wall_secs,
        sim_secs: r.sim_secs,
        events: r.events,
        events_per_sec: r.events_per_sec,
        requests: r.requests,
        requests_per_sec: r.requests_per_sec,
        peak_queue_depth: r.peak_queue_depth as u64,
        peak_live_flows: r.peak_live_flows,
        peak_open_requests: r.peak_open_requests,
        master_failovers: 0,
        mean_failover_secs: 0.0,
        max_journal_replay: 0,
        threads: r.threads,
        epochs: r.epochs,
        barrier_wait_secs: r.barrier_wait_secs,
        peak_rss_bytes: soda_bench::memtrack::peak_rss_bytes(),
        bytes_per_host: soda_bench::memtrack::peak_rss_bytes() / u64::from(r.hosts.max(1)),
    });
    let mut acc = it.next().expect("at least one sweep point");
    for rec in it {
        acc.fold(&rec);
    }
    acc
}

fn run_grid(grid: Vec<ParallelConfig>) -> Vec<ParallelResult> {
    grid.iter()
        .map(|cfg| {
            let r = parallel::run(cfg);
            println!(
                "  {} cells={} {} {}: {:.2}s wall, {} epochs, {} remote msgs",
                r.hosts, r.cells, r.engine, r.policy, r.wall_secs, r.epochs, r.remote_msgs
            );
            r
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== X-PARALLEL — conservative parallel DES vs the serial oracle ==");

    if args.first().map(String::as_str) == Some("gate") {
        let t: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
        let report = parallel::gate(t);
        for c in &report.checks {
            println!(
                "{} {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        print_points(&report.points);
        soda_bench::emit_json("exp_parallel", &report);
        soda_bench::emit_bench(&bench_record("exp_parallel", &report.points));
        if !report.passed {
            eprintln!("FAIL: parallel engine diverged from the serial oracle");
            std::process::exit(1);
        }
        println!("gate passed: parallel-1 and parallel-{t} replay the serial oracle bit-for-bit");
        return;
    }

    if args.first().map(String::as_str) == Some("skew") {
        // Default size note: barrier wait has two components — parking
        // for the straggler's per-epoch work (invariant to epoch width;
        // only repartitioning the cells could remove it) and the
        // per-crossing synchronization overhead, which scales with the
        // epoch count. The default workload keeps the straggler real
        // (cell 0 still carries 90% of the requests) but small enough
        // that the crossing overhead is visible, so the adaptive
        // policy's epoch collapse shows up in the measured totals
        // instead of drowning in parking time.
        let hosts: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_000);
        let requests: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50_000);
        let cells: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
        let threads: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(8);
        println!(
            "skew study: {hosts} hosts, {requests} requests, {cells} cells \
             (cell 0 carries 90% of the load), {threads} threads"
        );
        let results = run_grid(parallel::skew_grid(hosts, requests, cells, threads));
        print_points(&results);
        print_barrier_histogram(&results);
        soda_bench::emit_json("exp_parallel_skew", &results);
        soda_bench::emit_bench(&bench_record("exp_parallel_skew", &results));

        // Gates. Each policy's parallel run must replay its own serial
        // oracle (fixed and adaptive legitimately walk different
        // trajectories — epoch boundaries shift engine seq numbers of
        // same-time cross-cell arrivals — so the comparison never
        // crosses policies), and adaptive must actually cut the idle
        // time the skew creates.
        let mut failed = false;
        let find = |policy: &str, engine: &str| {
            results
                .iter()
                .find(|r| r.policy == policy && r.engine == engine)
                .unwrap_or_else(|| panic!("skew grid has a {policy}/{engine} point"))
        };
        for policy in ["fixed", "adaptive"] {
            let serial = find(policy, "serial");
            let par = results
                .iter()
                .find(|r| r.policy == policy && r.engine != "serial")
                .expect("skew grid has a parallel point per policy");
            let ok = serial.trajectory_fingerprint == par.trajectory_fingerprint
                && serial.event_fingerprint == par.event_fingerprint
                && serial.events == par.events;
            println!(
                "{} {policy}: parallel ≡ serial — traj {:#018x} vs {:#018x}",
                if ok { "PASS" } else { "FAIL" },
                par.trajectory_fingerprint,
                serial.trajectory_fingerprint
            );
            failed |= !ok;
        }
        let fixed_par = results
            .iter()
            .find(|r| r.policy == "fixed" && r.engine != "serial")
            .expect("fixed parallel point");
        let adapt_par = results
            .iter()
            .find(|r| r.policy == "adaptive" && r.engine != "serial")
            .expect("adaptive parallel point");
        // Deterministic gate first: adaptive must collapse the epoch
        // count (the light cells drain early and promise `MAX`, so
        // their bounds stop dragging the straggler). Then the measured
        // consequence: fewer crossings mean less synchronization
        // overhead, so total barrier wait must drop too.
        let epochs_ok = adapt_par.epochs < fixed_par.epochs;
        println!(
            "{} adaptive collapses epochs: {} < {}",
            if epochs_ok { "PASS" } else { "FAIL" },
            adapt_par.epochs,
            fixed_par.epochs
        );
        failed |= !epochs_ok;
        let cut_ok = adapt_par.barrier_wait_secs < fixed_par.barrier_wait_secs;
        println!(
            "{} adaptive cuts barrier wait: {:.2} s < {:.2} s ({} vs {} epochs)",
            if cut_ok { "PASS" } else { "FAIL" },
            adapt_par.barrier_wait_secs,
            fixed_par.barrier_wait_secs,
            adapt_par.epochs,
            fixed_par.epochs
        );
        failed |= !cut_ok;
        if failed {
            eprintln!("FAIL: skew study gates did not hold");
            std::process::exit(1);
        }
        println!("skew study passed: adaptive widths tame the imbalanced partition");
        return;
    }

    let results: Vec<ParallelResult> = match (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
        args.get(2).and_then(|s| s.parse::<u32>().ok()),
    ) {
        (Some(hosts), Some(requests), Some(cells)) => {
            let threads: Vec<u32> = if args.len() > 3 {
                args[3..].iter().filter_map(|s| s.parse().ok()).collect()
            } else {
                vec![1, 2, 4, 8]
            };
            run_grid(parallel::speedup_grid(hosts, requests, cells, &threads))
        }
        _ => {
            // The ROADMAP workload: 1k hosts / 1M requests (~3.1 s
            // serial before this PR), 8 cells, the full thread curve —
            // then a 10k-host point at two cell widths to show the
            // partition's effect at scale.
            let mut results = run_grid(parallel::speedup_grid(1_000, 1_000_000, 8, &[1, 2, 4, 8]));
            for cells in [4, 16] {
                results.extend(run_grid(parallel::speedup_grid(
                    10_000,
                    1_000_000,
                    cells,
                    &[8],
                )));
            }
            results
        }
    };
    print_points(&results);
    soda_bench::emit_json("exp_parallel", &results);
    soda_bench::emit_bench(&bench_record("exp_parallel", &results));
}
