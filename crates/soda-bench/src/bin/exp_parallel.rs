//! Extension X-PARALLEL: epoch-synchronized parallel DES speedup sweep
//! + serial-oracle differential gate.
//!
//! Usage:
//!   `exp_parallel`            — full sweep: the 1,000-host × 1M-request
//!                               workload at 8 cells under serial and
//!                               1/2/4/8 threads (the speedup curve),
//!                               plus a 10,000-host cell×thread grid.
//!   `exp_parallel gate [T]`   — CI differential gate: `Parallel(1)` and
//!                               `Parallel(T)` (default 4) must replay
//!                               the serial oracle bit-identically
//!                               (trajectory + event fingerprints) on a
//!                               compact multi-cell point and a chaos
//!                               seed, the one-cell serial run must
//!                               replay the X-SCALE monolith, and the
//!                               profiler must bucket every event.
//!                               Exits non-zero on any failed check.
//!   `exp_parallel HOSTS REQUESTS CELLS [T...]` — custom sweep over the
//!                               given thread counts (default {1,2,4,8}).
//!
//! Points run one after another (each point is itself multi-threaded,
//! unlike the across-run `SweepRunner` fan-out). All points land in
//! `results/exp_parallel.json` and the aggregate trajectory in
//! `results/BENCH_exp_parallel.json`.

use soda_bench::experiments::parallel::{self, ParallelConfig, ParallelResult};
use soda_bench::{BenchRecord, Table};

fn print_points(results: &[ParallelResult]) {
    let mut t = Table::new(
        "X-PARALLEL — epoch-synchronized speedup",
        &[
            "hosts",
            "requests",
            "cells",
            "engine",
            "epochs",
            "msgs",
            "barrier s",
            "wall s",
            "ev/s",
            "speedup",
            "traj",
        ],
    );
    // Speedup is relative to the serial point of the same (hosts,
    // cells, requests) workload, where one exists in the result set.
    let serial_wall = |r: &ParallelResult| {
        results
            .iter()
            .find(|s| {
                s.engine == "serial"
                    && s.hosts == r.hosts
                    && s.cells == r.cells
                    && s.requests == r.requests
            })
            .map(|s| s.wall_secs)
    };
    for r in results {
        let speedup = serial_wall(r)
            .map(|w| format!("{:.2}x", w / r.wall_secs.max(1e-9)))
            .unwrap_or_else(|| "-".to_string());
        t.row(soda_bench::cells![
            r.hosts,
            r.requests,
            r.cells,
            r.engine,
            r.epochs,
            r.remote_msgs,
            format!("{:.2}", r.barrier_wait_secs),
            format!("{:.2}", r.wall_secs),
            format!("{:.0}", r.events_per_sec),
            speedup,
            format!("{:#018x}", r.trajectory_fingerprint),
        ]);
    }
    t.print();
}

/// Reduce sweep points to one aggregate trajectory record.
fn bench_record(results: &[ParallelResult]) -> BenchRecord {
    let mut it = results.iter().map(|r| BenchRecord {
        experiment: "exp_parallel".to_string(),
        wall_secs: r.wall_secs,
        sim_secs: r.sim_secs,
        events: r.events,
        events_per_sec: r.events_per_sec,
        requests: r.requests,
        requests_per_sec: r.requests_per_sec,
        peak_queue_depth: r.peak_queue_depth as u64,
        peak_live_flows: r.peak_live_flows,
        peak_open_requests: r.peak_open_requests,
        master_failovers: 0,
        mean_failover_secs: 0.0,
        max_journal_replay: 0,
        threads: r.threads,
        epochs: r.epochs,
        barrier_wait_secs: r.barrier_wait_secs,
    });
    let mut acc = it.next().expect("at least one sweep point");
    for rec in it {
        acc.fold(&rec);
    }
    acc
}

fn run_grid(grid: Vec<ParallelConfig>) -> Vec<ParallelResult> {
    grid.iter()
        .map(|cfg| {
            let r = parallel::run(cfg);
            println!(
                "  {} cells={} {}: {:.2}s wall, {} epochs, {} remote msgs",
                r.hosts, r.cells, r.engine, r.wall_secs, r.epochs, r.remote_msgs
            );
            r
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== X-PARALLEL — conservative parallel DES vs the serial oracle ==");

    if args.first().map(String::as_str) == Some("gate") {
        let t: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
        let report = parallel::gate(t);
        for c in &report.checks {
            println!(
                "{} {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        print_points(&report.points);
        soda_bench::emit_json("exp_parallel", &report);
        soda_bench::emit_bench(&bench_record(&report.points));
        if !report.passed {
            eprintln!("FAIL: parallel engine diverged from the serial oracle");
            std::process::exit(1);
        }
        println!("gate passed: parallel-1 and parallel-{t} replay the serial oracle bit-for-bit");
        return;
    }

    let results: Vec<ParallelResult> = match (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
        args.get(2).and_then(|s| s.parse::<u32>().ok()),
    ) {
        (Some(hosts), Some(requests), Some(cells)) => {
            let threads: Vec<u32> = if args.len() > 3 {
                args[3..].iter().filter_map(|s| s.parse().ok()).collect()
            } else {
                vec![1, 2, 4, 8]
            };
            run_grid(parallel::speedup_grid(hosts, requests, cells, &threads))
        }
        _ => {
            // The ROADMAP workload: 1k hosts / 1M requests (~3.1 s
            // serial before this PR), 8 cells, the full thread curve —
            // then a 10k-host point at two cell widths to show the
            // partition's effect at scale.
            let mut results = run_grid(parallel::speedup_grid(1_000, 1_000_000, 8, &[1, 2, 4, 8]));
            for cells in [4, 16] {
                results.extend(run_grid(parallel::speedup_grid(
                    10_000,
                    1_000_000,
                    cells,
                    &[8],
                )));
            }
            results
        }
    };
    print_points(&results);
    soda_bench::emit_json("exp_parallel", &results);
    soda_bench::emit_bench(&bench_record(&results));
}
