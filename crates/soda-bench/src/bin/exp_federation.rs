//! Extension X-FED (§3.5): federated wide-area HUPs — overflow from a
//! small home site into peers and the WAN image-shipping cost.

use soda_bench::experiments::federation;

fn main() {
    let r = federation::run(30);
    println!("== X-FED — 30 requests preferring the 1-host home site ==");
    println!("placed at home site   : {}", r.placed_home);
    println!("placed at remote sites: {}", r.placed_remote);
    println!("rejected              : {}", r.rejected);
    println!(
        "mean WAN shipping time: {:.1} s per remote placement",
        r.mean_wan_secs
    );
    soda_bench::emit_json("exp_federation", &r);
}
