//! Regenerates the §4.3 measurement: service-image download time over
//! the 100 Mbps LAN grows linearly with image size.

use soda_bench::cells;
use soda_bench::experiments::download;
use soda_bench::Table;

fn main() {
    let rows = download::run();
    let mut t = Table::new(
        "Image download time over the 100 Mbps LAN (§4.3)",
        &["image size", "analytic (s)", "simulated (s)"],
    );
    for r in &rows {
        t.row(cells![
            format!("{:.1}MB", r.image_bytes as f64 / 1e6),
            format!("{:.2}", r.analytic_secs),
            format!("{:.2}", r.simulated_secs),
        ]);
    }
    t.print();
    println!("linearity R² = {:.6}", download::linearity_r2(&rows));
    soda_bench::emit_json("exp_download", &rows);
}
