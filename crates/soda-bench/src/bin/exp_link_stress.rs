//! Extension X-LINK: fan-in stress on one processor-sharing NIC.
//!
//! Usage:
//!   `exp_link_stress`                — default 200k flow arrivals
//!   `exp_link_stress FLOWS`          — custom arrival count
//!   `exp_link_stress FLOWS BUDGET`   — with a wall-clock budget in
//!                                      seconds; exits non-zero if the
//!                                      indexed run overruns (CI gate).
//!
//! Always runs the virtual-time indexed link; pass a third argument
//! `oracle` to also replay the schedule on the O(n) oracle and print
//! the speedup (the fingerprints must match — that's asserted).
//!
//! The result is written to `results/exp_link_stress.json`, plus the
//! standardized trajectory record `results/BENCH_exp_link_stress.json`.

use soda_bench::experiments::link_stress::{self, StressConfig, StressResult};
use soda_bench::BenchRecord;

fn print_result(tag: &str, r: &StressResult) {
    println!(
        "{tag:>8}: {:>8} flows | {:>8} done {:>7} cancelled | peak {:>7} active | {:>8.2} sim s | {:>7.3} wall s | {:>11.0} ev/s | fp {:#018x}",
        r.flows,
        r.completions,
        r.cancellations,
        r.peak_active,
        r.sim_secs,
        r.wall_secs,
        r.events_per_sec,
        r.fingerprint,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flows: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let budget_secs: Option<f64> = args.get(1).and_then(|s| s.parse().ok());
    let with_oracle = args.iter().any(|a| a == "oracle");
    println!("== X-LINK — fan-in stress on one processor-sharing NIC ==");
    let cfg = StressConfig {
        flows,
        ..StressConfig::default()
    };
    let indexed = link_stress::run(&cfg);
    print_result("indexed", &indexed);
    if with_oracle {
        let slow = link_stress::run_oracle(&cfg);
        print_result("oracle", &slow);
        assert_eq!(
            indexed.fingerprint, slow.fingerprint,
            "indexed and oracle must replay identical completion sequences"
        );
        println!(
            "speedup {:.1}x (identical fingerprints)",
            slow.wall_secs / indexed.wall_secs.max(1e-9)
        );
    }
    soda_bench::emit_json("exp_link_stress", &indexed);
    // The link has no admission path: peak active flows stands in for
    // queue depth, and nothing is ever "open" at a switch.
    soda_bench::emit_bench(&BenchRecord {
        experiment: "exp_link_stress".to_string(),
        wall_secs: indexed.wall_secs,
        sim_secs: indexed.sim_secs,
        events: indexed.events,
        events_per_sec: indexed.events_per_sec,
        requests: indexed.flows,
        requests_per_sec: indexed.flows as f64 / indexed.wall_secs.max(1e-9),
        peak_queue_depth: indexed.peak_active,
        peak_live_flows: indexed.peak_active,
        peak_open_requests: 0,
        master_failovers: 0,
        mean_failover_secs: 0.0,
        max_journal_replay: 0,
        threads: 1,
        epochs: 0,
        barrier_wait_secs: 0.0,
        peak_rss_bytes: soda_bench::memtrack::peak_rss_bytes(),
        bytes_per_host: 0,
    });
    if let Some(budget) = budget_secs {
        if indexed.wall_secs > budget {
            eprintln!(
                "FAIL: stress run took {:.3} s (budget {budget:.2} s)",
                indexed.wall_secs
            );
            std::process::exit(1);
        }
        println!("within budget: {:.3} s <= {budget:.2} s", indexed.wall_secs);
    }
}
