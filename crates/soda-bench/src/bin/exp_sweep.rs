//! Extension X-SWEEP: parallel deterministic seed sweep.
//!
//! Usage: `exp_sweep [EXP] [N_SEEDS] [BASE_SEED] [BUDGET_SECS]`
//!
//! * `EXP`         — `chaos` (default) or `scale`; the experiment each
//!                   seed runs.
//! * `N_SEEDS`     — sweep width (default 4), seeds `BASE..BASE+N`.
//! * `BASE_SEED`   — first seed (default 1).
//! * `BUDGET_SECS` — optional wall-clock budget for the parallel sweep;
//!                   exits non-zero when exceeded (CI gate).
//!
//! The sweep fans `(seed × experiment)` simulations across cores via
//! [`soda_bench::SweepRunner`]; each run is single-threaded and owns its
//! world, so parallel results must be bit-identical to serial ones. The
//! binary proves it: after the parallel sweep it re-runs the first
//! (pinned) seed serially on the calling thread and exits non-zero if
//! any fingerprint differs. Results — per-seed fingerprints, wall
//! clocks, and the parallel-vs-serial speedup — land in
//! `results/exp_sweep.json`.

use serde::Serialize;
use soda_bench::experiments::chaos_soak::{self, LatencyDigest};
use soda_bench::experiments::scale::{self, ScaleConfig};
use soda_bench::{BenchRecord, SweepRunner};
use soda_sim::Histogram;

/// One seed's run, reduced to what the sweep report needs.
#[derive(Clone, Debug, Serialize)]
struct SeedRun {
    /// Seed this run derives from.
    seed: u64,
    /// Determinism witness: the experiment's event-log fingerprint for
    /// `chaos`, the trajectory fingerprint for `scale`.
    fingerprint: u64,
    /// Worker wall-clock for this seed, seconds.
    wall_secs: f64,
    /// Requests completed.
    completed: u64,
    /// Requests dropped.
    dropped: u64,
    /// Engine events executed.
    events: u64,
    /// Virtual time simulated, seconds.
    sim_secs: f64,
    /// Event-queue high-water mark.
    peak_queue_depth: u64,
    /// High-water mark of concurrently active NIC flows.
    peak_live_flows: u64,
    /// High-water mark of in-flight requests.
    peak_open_requests: u64,
}

/// Pinned-seed parallel-vs-serial comparison.
#[derive(Clone, Debug, Serialize)]
struct PinnedCheck {
    /// The seed re-run serially (the sweep's first).
    seed: u64,
    /// Fingerprint from the parallel sweep.
    parallel_fingerprint: u64,
    /// Fingerprint from the serial re-run.
    serial_fingerprint: u64,
    /// Whether the two match bit for bit.
    identical: bool,
}

/// The merged sweep report written to `results/exp_sweep.json`.
#[derive(Clone, Debug, Serialize)]
struct SweepReport {
    /// Experiment swept (`"chaos"` / `"scale"`).
    experiment: String,
    /// Worker threads the parallel sweep used.
    threads: usize,
    /// Per-seed runs, in seed order.
    runs: Vec<SeedRun>,
    /// Wall seconds for the parallel region.
    parallel_wall_secs: f64,
    /// Sum of per-seed walls: what a serial sweep would cost.
    serial_estimate_secs: f64,
    /// `serial_estimate_secs / parallel_wall_secs`.
    speedup: f64,
    /// Client-visible latency folded across every seed's merged
    /// `switch.response_time` histogram (`None` when the swept
    /// experiment records no latency — `scale` runs with obs off).
    latency: Option<LatencyDigest>,
    /// Pinned-seed bit-identity proof.
    pinned: PinnedCheck,
}

fn run_one(experiment: &str, seed: u64) -> (SeedRun, Option<Histogram>) {
    match experiment {
        "scale" => {
            let r = scale::run(&ScaleConfig {
                hosts: 10,
                requests: 50_000,
                seed,
                ..ScaleConfig::default()
            });
            let run = SeedRun {
                seed,
                fingerprint: r.trajectory_fingerprint,
                wall_secs: r.wall_secs,
                completed: r.completed,
                dropped: r.dropped,
                events: r.events,
                sim_secs: r.sim_secs,
                peak_queue_depth: r.peak_queue_depth as u64,
                peak_live_flows: r.peak_live_flows,
                peak_open_requests: r.peak_open_requests,
            };
            (run, None)
        }
        _ => {
            let wall = std::time::Instant::now();
            let (r, hist) = chaos_soak::run_with_latency(seed);
            let run = SeedRun {
                seed,
                fingerprint: r.event_fingerprint,
                wall_secs: wall.elapsed().as_secs_f64(),
                completed: r.completed,
                dropped: r.dropped,
                events: r.events,
                sim_secs: r.sim_secs,
                peak_queue_depth: r.peak_queue_depth as u64,
                peak_live_flows: r.peak_live_flows,
                peak_open_requests: r.peak_open_requests,
            };
            (run, hist)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = match args.first().map(String::as_str) {
        Some("scale") => "scale".to_string(),
        _ => "chaos".to_string(),
    };
    let n_seeds: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let base_seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let budget_secs: Option<f64> = args.get(3).and_then(|s| s.parse().ok());
    let seeds: Vec<u64> = (base_seed..base_seed + n_seeds).collect();

    println!("== X-SWEEP — parallel deterministic seed sweep ==");
    let runner = SweepRunner::from_env();
    println!(
        "experiment {experiment}, seeds {}..{}, {} thread(s)",
        base_seed,
        base_seed + n_seeds - 1,
        runner.threads()
    );
    let exp = experiment.clone();
    let sweep = runner.run(seeds.clone(), move |seed| run_one(&exp, seed));
    // Per-seed latency folds across seeds via Histogram::merge — the
    // log-bucketed histograms add bucket-wise, so the merged digest is
    // exactly what one big serial run over all seeds would have seen.
    let (mut runs, hists): (Vec<SeedRun>, Vec<Option<Histogram>>) =
        sweep.results.into_iter().unzip();
    let latency: Option<LatencyDigest> = {
        let mut merged: Option<Histogram> = None;
        for h in hists.into_iter().flatten() {
            match &mut merged {
                Some(m) => m.merge(&h),
                None => merged = Some(h),
            }
        }
        merged.as_ref().map(LatencyDigest::from_nanos)
    };
    // The runner times each job on its worker; use those walls (not the
    // in-result ones) so chaos and scale are measured the same way.
    for (run, &secs) in runs.iter_mut().zip(&sweep.job_secs) {
        run.wall_secs = secs;
    }
    for r in &runs {
        println!(
            "seed {:>4} | fp {:#018x} | {:>7.2} s | completed {:>7} | dropped {:>5}",
            r.seed, r.fingerprint, r.wall_secs, r.completed, r.dropped
        );
    }
    // Determinism proof: re-run the pinned first seed serially, on this
    // thread, and require a bit-identical fingerprint. Its wall clock
    // doubles as an uncontended cost sample for the serial estimate.
    let pinned_seed = seeds[0];
    let serial_start = std::time::Instant::now();
    let (serial, _) = run_one(&experiment, pinned_seed);
    let serial_pinned_secs = serial_start.elapsed().as_secs_f64();

    // Serial estimate: scale the pinned seed's *uncontended* wall by the
    // seeds' relative sizes as measured inside the sweep. Summing the
    // in-sweep walls directly would overstate serial cost whenever the
    // workers contend for cores (each job's wall then includes time spent
    // descheduled), which flatters the speedup — on an oversubscribed
    // machine, absurdly so.
    let in_sweep_total: f64 = sweep.job_secs.iter().sum();
    let serial_estimate_secs = if sweep.job_secs[0] > 0.0 {
        serial_pinned_secs * (in_sweep_total / sweep.job_secs[0])
    } else {
        in_sweep_total
    };
    let speedup = if sweep.wall_secs > 0.0 && serial_estimate_secs > 0.0 {
        serial_estimate_secs / sweep.wall_secs
    } else {
        1.0
    };
    println!(
        "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
        sweep.wall_secs, serial_estimate_secs, speedup
    );

    let pinned = PinnedCheck {
        seed: pinned_seed,
        parallel_fingerprint: runs[0].fingerprint,
        serial_fingerprint: serial.fingerprint,
        identical: runs[0].fingerprint == serial.fingerprint,
    };
    println!(
        "pinned seed {}: parallel {:#018x} vs serial {:#018x} — {}",
        pinned.seed,
        pinned.parallel_fingerprint,
        pinned.serial_fingerprint,
        if pinned.identical {
            "identical"
        } else {
            "MISMATCH"
        }
    );

    if let Some(l) = &latency {
        println!(
            "merged latency over {} responses: p50 {:.2} ms / p99 {:.2} ms / p999 {:.2} ms",
            l.count, l.p50_ms, l.p99_ms, l.p999_ms
        );
    }

    let report = SweepReport {
        experiment: experiment.clone(),
        threads: sweep.threads,
        runs: runs.clone(),
        parallel_wall_secs: sweep.wall_secs,
        serial_estimate_secs,
        speedup,
        latency,
        pinned: pinned.clone(),
    };
    soda_bench::emit_json("exp_sweep", &report);
    let events: u64 = runs.iter().map(|r| r.events).sum();
    let requests: u64 = runs.iter().map(|r| r.completed + r.dropped).sum();
    soda_bench::emit_bench(&BenchRecord {
        experiment: "exp_sweep".to_string(),
        wall_secs: sweep.wall_secs,
        sim_secs: runs.iter().map(|r| r.sim_secs).sum(),
        events,
        events_per_sec: events as f64 / sweep.wall_secs.max(1e-9),
        requests,
        requests_per_sec: requests as f64 / sweep.wall_secs.max(1e-9),
        peak_queue_depth: runs.iter().map(|r| r.peak_queue_depth).max().unwrap_or(0),
        peak_live_flows: runs.iter().map(|r| r.peak_live_flows).max().unwrap_or(0),
        peak_open_requests: runs.iter().map(|r| r.peak_open_requests).max().unwrap_or(0),
        master_failovers: 0,
        mean_failover_secs: 0.0,
        max_journal_replay: 0,
        threads: 1,
        epochs: 0,
        barrier_wait_secs: 0.0,
        peak_rss_bytes: soda_bench::memtrack::peak_rss_bytes(),
        bytes_per_host: 0,
    });

    if !pinned.identical {
        eprintln!("FAIL: parallel sweep diverged from serial on the pinned seed");
        std::process::exit(1);
    }
    if let Some(budget) = budget_secs {
        if sweep.wall_secs > budget {
            eprintln!(
                "FAIL: parallel sweep took {:.2} s (budget {budget:.2} s)",
                sweep.wall_secs
            );
            std::process::exit(1);
        }
        println!("within budget: {:.2} s <= {budget:.2} s", sweep.wall_secs);
    }
}
