//! Extension X-SWEEP: parallel deterministic seed sweep.
//!
//! Usage: `exp_sweep [EXP] [N_SEEDS] [BASE_SEED] [BUDGET_SECS]`
//!
//! * `EXP`         — `chaos` (default) or `scale`; the experiment each
//!                   seed runs.
//! * `N_SEEDS`     — sweep width (default 4), seeds `BASE..BASE+N`.
//! * `BASE_SEED`   — first seed (default 1).
//! * `BUDGET_SECS` — optional wall-clock budget for the parallel sweep;
//!                   exits non-zero when exceeded (CI gate).
//!
//! The sweep fans `(seed × experiment)` simulations across cores via
//! [`soda_bench::SweepRunner`]; each run is single-threaded and owns its
//! world, so parallel results must be bit-identical to serial ones. The
//! binary proves it: after the parallel sweep it re-runs the first
//! (pinned) seed serially on the calling thread and exits non-zero if
//! any fingerprint differs. Results — per-seed fingerprints, wall
//! clocks, and the parallel-vs-serial speedup — land in
//! `results/exp_sweep.json`.

use serde::Serialize;
use soda_bench::experiments::chaos_soak;
use soda_bench::experiments::scale::{self, ScaleConfig};
use soda_bench::SweepRunner;

/// One seed's run, reduced to what the sweep report needs.
#[derive(Clone, Debug, Serialize)]
struct SeedRun {
    /// Seed this run derives from.
    seed: u64,
    /// Determinism witness: the experiment's event-log fingerprint for
    /// `chaos`, the trajectory fingerprint for `scale`.
    fingerprint: u64,
    /// Worker wall-clock for this seed, seconds.
    wall_secs: f64,
    /// Requests completed.
    completed: u64,
    /// Requests dropped.
    dropped: u64,
}

/// Pinned-seed parallel-vs-serial comparison.
#[derive(Clone, Debug, Serialize)]
struct PinnedCheck {
    /// The seed re-run serially (the sweep's first).
    seed: u64,
    /// Fingerprint from the parallel sweep.
    parallel_fingerprint: u64,
    /// Fingerprint from the serial re-run.
    serial_fingerprint: u64,
    /// Whether the two match bit for bit.
    identical: bool,
}

/// The merged sweep report written to `results/exp_sweep.json`.
#[derive(Clone, Debug, Serialize)]
struct SweepReport {
    /// Experiment swept (`"chaos"` / `"scale"`).
    experiment: String,
    /// Worker threads the parallel sweep used.
    threads: usize,
    /// Per-seed runs, in seed order.
    runs: Vec<SeedRun>,
    /// Wall seconds for the parallel region.
    parallel_wall_secs: f64,
    /// Sum of per-seed walls: what a serial sweep would cost.
    serial_estimate_secs: f64,
    /// `serial_estimate_secs / parallel_wall_secs`.
    speedup: f64,
    /// Pinned-seed bit-identity proof.
    pinned: PinnedCheck,
}

fn run_one(experiment: &str, seed: u64) -> SeedRun {
    match experiment {
        "scale" => {
            let r = scale::run(&ScaleConfig {
                hosts: 10,
                requests: 50_000,
                seed,
                ..ScaleConfig::default()
            });
            SeedRun {
                seed,
                fingerprint: r.trajectory_fingerprint,
                wall_secs: r.wall_secs,
                completed: r.completed,
                dropped: r.dropped,
            }
        }
        _ => {
            let wall = std::time::Instant::now();
            let r = chaos_soak::run(seed);
            SeedRun {
                seed,
                fingerprint: r.event_fingerprint,
                wall_secs: wall.elapsed().as_secs_f64(),
                completed: r.completed,
                dropped: r.dropped,
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = match args.first().map(String::as_str) {
        Some("scale") => "scale".to_string(),
        _ => "chaos".to_string(),
    };
    let n_seeds: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let base_seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let budget_secs: Option<f64> = args.get(3).and_then(|s| s.parse().ok());
    let seeds: Vec<u64> = (base_seed..base_seed + n_seeds).collect();

    println!("== X-SWEEP — parallel deterministic seed sweep ==");
    let runner = SweepRunner::from_env();
    println!(
        "experiment {experiment}, seeds {}..{}, {} thread(s)",
        base_seed,
        base_seed + n_seeds - 1,
        runner.threads()
    );
    let exp = experiment.clone();
    let sweep = runner.run(seeds.clone(), move |seed| run_one(&exp, seed));
    // The runner times each job on its worker; use those walls (not the
    // in-result ones) so chaos and scale are measured the same way.
    let mut runs = sweep.results;
    for (run, &secs) in runs.iter_mut().zip(&sweep.job_secs) {
        run.wall_secs = secs;
    }
    for r in &runs {
        println!(
            "seed {:>4} | fp {:#018x} | {:>7.2} s | completed {:>7} | dropped {:>5}",
            r.seed, r.fingerprint, r.wall_secs, r.completed, r.dropped
        );
    }
    // Determinism proof: re-run the pinned first seed serially, on this
    // thread, and require a bit-identical fingerprint. Its wall clock
    // doubles as an uncontended cost sample for the serial estimate.
    let pinned_seed = seeds[0];
    let serial_start = std::time::Instant::now();
    let serial = run_one(&experiment, pinned_seed);
    let serial_pinned_secs = serial_start.elapsed().as_secs_f64();

    // Serial estimate: scale the pinned seed's *uncontended* wall by the
    // seeds' relative sizes as measured inside the sweep. Summing the
    // in-sweep walls directly would overstate serial cost whenever the
    // workers contend for cores (each job's wall then includes time spent
    // descheduled), which flatters the speedup — on an oversubscribed
    // machine, absurdly so.
    let in_sweep_total: f64 = sweep.job_secs.iter().sum();
    let serial_estimate_secs = if sweep.job_secs[0] > 0.0 {
        serial_pinned_secs * (in_sweep_total / sweep.job_secs[0])
    } else {
        in_sweep_total
    };
    let speedup = if sweep.wall_secs > 0.0 && serial_estimate_secs > 0.0 {
        serial_estimate_secs / sweep.wall_secs
    } else {
        1.0
    };
    println!(
        "sweep wall {:.2} s vs serial est {:.2} s — speedup {:.2}x",
        sweep.wall_secs, serial_estimate_secs, speedup
    );

    let pinned = PinnedCheck {
        seed: pinned_seed,
        parallel_fingerprint: runs[0].fingerprint,
        serial_fingerprint: serial.fingerprint,
        identical: runs[0].fingerprint == serial.fingerprint,
    };
    println!(
        "pinned seed {}: parallel {:#018x} vs serial {:#018x} — {}",
        pinned.seed,
        pinned.parallel_fingerprint,
        pinned.serial_fingerprint,
        if pinned.identical {
            "identical"
        } else {
            "MISMATCH"
        }
    );

    let report = SweepReport {
        experiment,
        threads: sweep.threads,
        runs,
        parallel_wall_secs: sweep.wall_secs,
        serial_estimate_secs,
        speedup,
        pinned: pinned.clone(),
    };
    soda_bench::emit_json("exp_sweep", &report);

    if !pinned.identical {
        eprintln!("FAIL: parallel sweep diverged from serial on the pinned seed");
        std::process::exit(1);
    }
    if let Some(budget) = budget_secs {
        if sweep.wall_secs > budget {
            eprintln!(
                "FAIL: parallel sweep took {:.2} s (budget {budget:.2} s)",
                sweep.wall_secs
            );
            std::process::exit(1);
        }
        println!("within budget: {:.2} s <= {budget:.2} s", sweep.wall_secs);
    }
}
