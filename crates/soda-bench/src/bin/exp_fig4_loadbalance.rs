//! Regenerates Figure 4: per-node mean response time of the web content
//! service under weighted-round-robin 2:1 switching, across six dataset
//! sizes. Sweep points run in parallel (each is an independent
//! deterministic simulation).
//!
//! `exp_fig4_loadbalance trace [SAMPLE_ONE_IN]` instead runs one traced
//! point (1-in-N head sampling, default 8) and writes the sampled
//! causal traces as Chrome trace-event JSON
//! (`results/exp_fig4_trace.json`, loadable in Perfetto) plus the
//! per-request critical-path breakdown
//! (`results/exp_fig4_critical_paths.json`).

use rayon::prelude::*;
use soda_bench::cells;
use soda_bench::experiments::fig4;
use soda_bench::Table;
use soda_workload::datasets::FIG4_SWEEP;

fn main() {
    let measure_secs = 120;
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        let sample_one_in: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
        let point = &FIG4_SWEEP[2];
        println!(
            "== Figure 4, traced ({}kB @ {} req/s, 1-in-{sample_one_in} sampling) ==",
            point.dataset_bytes / 1000,
            point.rate_rps
        );
        let traced = fig4::run_point_traced(point, measure_secs, 1, sample_one_in);
        println!(
            "kept {} traces over {} completed requests; served ratio {:.2}, response ratio {:.2}",
            traced.traces_kept,
            traced.completed.len(),
            traced.row.served_ratio(),
            traced.row.response_ratio()
        );
        soda_bench::emit_json("exp_fig4_trace", &traced.chrome_trace);
        soda_bench::emit_json("exp_fig4_critical_paths", &traced.critical_paths);
        // The run's metric snapshot, digestible via `soda-cli obs`.
        soda_bench::emit_json("exp_fig4_trace_metrics", &traced.snapshot);
        return;
    }
    let rows: Vec<fig4::Row> = FIG4_SWEEP
        .par_iter()
        .map(|p| fig4::run_point(p, measure_secs, 1))
        .collect();
    let mut t = Table::new(
        "Figure 4 — per-node mean response time, WRR 2:1",
        &[
            "dataset",
            "rate (req/s)",
            "seattle served",
            "tacoma served",
            "served ratio",
            "seattle mean (s)",
            "tacoma mean (s)",
            "resp ratio",
        ],
    );
    for r in &rows {
        t.row(cells![
            format!("{}kB", r.dataset_bytes / 1000),
            r.rate_rps,
            r.seattle_served,
            r.tacoma_served,
            format!("{:.2}", r.served_ratio()),
            format!("{:.4}", r.seattle_mean_secs),
            format!("{:.4}", r.tacoma_mean_secs),
            format!("{:.2}", r.response_ratio()),
        ]);
    }
    t.print();
    println!("paper: served ratio ≈ 2 and response ratio ≈ 1 at every size");

    // Cross-check with siege-faithful closed-loop clients at one point.
    let c = fig4::run_point_closed(&FIG4_SWEEP[2], 12, measure_secs, 1);
    println!(
        "closed-loop cross-check ({}kB, 12 clients): served ratio {:.2}, response ratio {:.2}",
        c.dataset_bytes / 1000,
        c.served_ratio(),
        c.response_ratio()
    );
    soda_bench::emit_json("exp_fig4_loadbalance", &rows);
}
