//! Regenerates the §5 attack-isolation experiment: the honeypot is
//! repeatedly exploited and crashed while the co-hosted web content
//! service keeps serving — and the host-direct counterfactual shows the
//! blast radius SODA prevents.

use soda_bench::cells;
use soda_bench::experiments::attack;
use soda_bench::Table;

fn main() {
    let secs = 300;
    let soda = attack::run(true, secs, 3);
    let direct = attack::run(false, secs, 3);
    let mut t = Table::new(
        "Attack isolation (§5): ghttpd exploit campaign against the honeypot",
        &[
            "honeypot mode",
            "honeypot crashes",
            "honeypot uptime",
            "web completed",
            "web offered",
            "web mean (s)",
            "co-hosted web uptime",
        ],
    );
    for r in [&soda, &direct] {
        t.row(cells![
            r.honeypot_mode,
            r.honeypot_crashes,
            format!("{:.1}%", r.honeypot_availability * 100.0),
            r.web_completed,
            r.web_offered,
            format!("{:.4}", r.web_mean_secs),
            format!("{:.1}%", r.web_cohosted_availability * 100.0),
        ]);
    }
    t.print();
    println!("paper: with SODA the web content service is NOT affected by the attacks");
    soda_bench::emit_json("exp_attack_isolation", &[&soda, &direct]);
}
