//! Extension X-SHARD: shard-count scaling sweep + differential gate.
//!
//! Usage:
//!   `exp_shard`            — full sweep: 1,000 hosts × 1M requests at
//!                            n ∈ {1, 2, 4, 8}, plus a 10,000-host point
//!                            at n ∈ {1, 8}; points fanned across cores.
//!   `exp_shard gate [N]`   — CI differential gate: `Sharded(1)` must be
//!                            bit-identical to `Monolith` (trajectory +
//!                            event fingerprints) on a compact grid point
//!                            and the chaos soak, and `Sharded(N)`
//!                            (default 4) must conserve admissions and
//!                            requests with zero invariant violations.
//!                            Exits non-zero on any failed check.
//!   `exp_shard HOSTS REQUESTS [N...]` — custom sweep over the given
//!                            shard counts (default {1, 2, 4, 8}).
//!
//! All points land in `results/exp_shard.json` and the aggregate
//! throughput trajectory in `results/BENCH_exp_shard.json`.

use soda_bench::experiments::scale::ScaleResult;
use soda_bench::experiments::shard;
use soda_bench::{BenchRecord, Table};

fn print_points(results: &[ScaleResult]) {
    let mut t = Table::new(
        "X-SHARD — per-shard-count scaling",
        &[
            "hosts", "requests", "plane", "spills", "msgs", "wall s", "ev/s", "traj",
        ],
    );
    for r in results {
        t.row(soda_bench::cells![
            r.hosts,
            r.requests,
            r.control_plane,
            r.shard_spills,
            r.shard_msgs_sent,
            format!("{:.2}", r.wall_secs),
            format!("{:.0}", r.events_per_sec),
            format!("{:#018x}", r.trajectory_fingerprint),
        ]);
    }
    t.print();
}

/// Reduce sweep points to one aggregate trajectory record.
fn bench_record(results: &[ScaleResult]) -> BenchRecord {
    let mut it = results.iter().map(|r| BenchRecord {
        experiment: "exp_shard".to_string(),
        wall_secs: r.wall_secs,
        sim_secs: r.sim_secs,
        events: r.events,
        events_per_sec: r.events_per_sec,
        requests: r.requests,
        requests_per_sec: r.requests_per_sec,
        peak_queue_depth: r.peak_queue_depth as u64,
        peak_live_flows: r.peak_live_flows,
        peak_open_requests: r.peak_open_requests,
        master_failovers: 0,
        mean_failover_secs: 0.0,
        max_journal_replay: 0,
        threads: 1,
        epochs: 0,
        barrier_wait_secs: 0.0,
        peak_rss_bytes: r.peak_rss_bytes,
        bytes_per_host: r.peak_rss_bytes / u64::from(r.hosts.max(1)),
    });
    let mut acc = it.next().expect("at least one sweep point");
    for rec in it {
        acc.fold(&rec);
    }
    acc
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== X-SHARD — sharded control plane vs the monolith oracle ==");

    if args.first().map(String::as_str) == Some("gate") {
        let n: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
        let report = shard::gate(n);
        for c in &report.checks {
            println!(
                "{} {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        print_points(&report.scale_points);
        soda_bench::emit_json("exp_shard", &report);
        soda_bench::emit_bench(&bench_record(&report.scale_points));
        if !report.passed {
            eprintln!("FAIL: sharded control plane diverged from the monolith oracle");
            std::process::exit(1);
        }
        println!("gate passed: sharded-1 is the monolith, sharded-{n} conserves");
        return;
    }

    let results: Vec<ScaleResult> = match (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(hosts), Some(requests)) => {
            let counts: Vec<u32> = if args.len() > 2 {
                args[2..].iter().filter_map(|s| s.parse().ok()).collect()
            } else {
                vec![1, 2, 4, 8]
            };
            shard::sweep(shard::sweep_grid(hosts, requests, &counts))
        }
        _ => {
            let mut grid = shard::sweep_grid(1_000, 1_000_000, &[1, 2, 4, 8]);
            grid.extend(shard::sweep_grid(10_000, 1_000_000, &[1, 8]));
            let runner = soda_bench::SweepRunner::from_env();
            println!(
                "fanning {} sweep points over {} thread(s)",
                grid.len(),
                runner.threads()
            );
            shard::sweep(grid)
        }
    };
    print_points(&results);
    soda_bench::emit_json("exp_shard", &results);
    soda_bench::emit_bench(&bench_record(&results));
}
