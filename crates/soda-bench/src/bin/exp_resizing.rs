//! Extension X-RSZ: `SODA_service_resizing` — correctness and cost of a
//! grow/shrink schedule.

use soda_bench::cells;
use soda_bench::experiments::resize;
use soda_bench::Table;

fn main() {
    let steps = resize::run(&[1, 2, 3, 5, 3, 1], 1);
    let mut t = Table::new(
        "X-RSZ — resize schedule 1 → 2 → 3 → 5 → 3 → 1 instances",
        &[
            "target n",
            "placed",
            "nodes",
            "in-place",
            "removed",
            "added",
            "added bootstrap (s)",
        ],
    );
    for s in &steps {
        t.row(cells![
            s.target_instances,
            s.placed_after,
            s.nodes_after,
            s.in_place,
            s.removed,
            s.added,
            format!("{:.2}", s.added_bootstrap_secs),
        ]);
    }
    t.print();
    println!("in-place resizes are instant; only freshly placed nodes pay a bootstrap");
    soda_bench::emit_json("exp_resizing", &steps);
}
