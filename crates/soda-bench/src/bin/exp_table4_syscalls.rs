//! Regenerates Table 4: system-call completion cycles in UML vs the
//! host OS.

use soda_bench::cells;
use soda_bench::experiments::table4;
use soda_bench::Table;

fn main() {
    let rows = table4::run();
    let mut t = Table::new(
        "Table 4 — syscall slow-down (clock cycles)",
        &[
            "System call",
            "in UML",
            "in host OS",
            "penalty",
            "paper UML",
            "paper host",
        ],
    );
    for (row, (_, pu, ph)) in rows.iter().zip(table4::PAPER_CYCLES) {
        t.row(cells![
            row.call,
            row.uml_cycles,
            row.host_cycles,
            format!("{:.1}x", row.penalty),
            pu,
            ph,
        ]);
    }
    t.print();

    // Ablation: UML's later "skas" mode halves the interception traffic.
    let skas = table4::run_mode(soda_vmm::intercept::UmlMode::Skas);
    let mut t2 = Table::new(
        "ablation — skas mode (post-2003 UML)",
        &["System call", "in UML (skas)", "penalty"],
    );
    for row in &skas {
        t2.row(cells![
            row.call,
            row.uml_cycles,
            format!("{:.1}x", row.penalty)
        ]);
    }
    t2.print();
    soda_bench::emit_json(
        "exp_table4_syscalls",
        &serde_json::Value::Object(vec![
            ("tt_mode".into(), serde_json::to_value(&rows)),
            ("skas_mode".into(), serde_json::to_value(&skas)),
        ]),
    );
}
