//! Extension X-INFL (footnote 2): sensitivity of admission yield to the
//! slow-down inflation factor.

use soda_bench::cells;
use soda_bench::experiments::inflation;
use soda_bench::Table;

fn main() {
    let rows = inflation::run();
    let mut t = Table::new(
        "X-INFL — slow-down inflation factor vs admission yield",
        &["factor", "services admitted", "covers measured slowdown?"],
    );
    for r in &rows {
        t.row(cells![r.factor, r.admitted, r.covers_measured]);
    }
    t.print();
    println!("the paper's conservative 1.5 covers the measured ~1.2x at some yield cost");
    soda_bench::emit_json("exp_inflation", &rows);
}
