//! Extension X-HOST: whole-host failure, heartbeat detection and
//! self-healing failover on a three-host HUP.

use soda_bench::experiments::host_failure;

fn main() {
    let r = host_failure::run(17);
    println!("== X-HOST — host failure and self-healing failover ==");
    println!("nodes downed by the failure : {}", r.nodes_downed);
    println!(
        "detection time              : {:.1} s (heartbeat timeout)",
        r.detection_secs
    );
    println!(
        "recovery time               : {:.1} s (image re-fetch + bootstrap)",
        r.recovery_secs
    );
    println!(
        "requests completed / dropped: {} / {}",
        r.completed, r.dropped
    );
    println!(
        "final capacity              : {} instances (restored)",
        r.final_capacity
    );
    println!("mean response before        : {:.4} s", r.mean_before);
    println!("mean response degraded      : {:.4} s", r.mean_degraded);
    println!("the heartbeat monitor drains the dead backends on timeout; the Master");
    println!("re-places the lost capacity via the same placement + priming path as creation");
    soda_bench::emit_json("exp_host_failure", &r);
}
