//! Extension X-HOST: whole-host failure and failover on a three-host
//! HUP.

use soda_bench::experiments::host_failure;

fn main() {
    let r = host_failure::run(17);
    println!("== X-HOST — host failure and failover ==");
    println!("nodes downed by the failure : {}", r.nodes_downed);
    println!(
        "recovery time               : {:.1} s (image re-fetch + bootstrap)",
        r.recovery_secs
    );
    println!(
        "requests completed / dropped: {} / {}",
        r.completed, r.dropped
    );
    println!(
        "final capacity              : {} instances (restored)",
        r.final_capacity
    );
    println!("mean response before        : {:.4} s", r.mean_before);
    println!("mean response degraded      : {:.4} s", r.mean_degraded);
    println!("the switch health-outs the dead backend instantly; the Master re-places");
    println!("the lost capacity via the same placement + priming path as creation");
    soda_bench::emit_json("exp_host_failure", &r);
}
