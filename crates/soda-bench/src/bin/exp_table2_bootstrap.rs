//! Regenerates Table 2: service bootstrapping time for four application
//! services on *seattle* and *tacoma*, with the seattle stage breakdown.

use soda_bench::cells;
use soda_bench::experiments::table2;
use soda_bench::Table;

fn main() {
    let rows = table2::run();
    let mut t = Table::new(
        "Table 2 — service bootstrapping time",
        &[
            "App. service",
            "Linux configuration",
            "Image size",
            "Time (seattle)",
            "Time (tacoma)",
            "paper (seattle)",
            "paper (tacoma)",
        ],
    );
    for (row, (_, ps, pt)) in rows.iter().zip(table2::PAPER_SECONDS) {
        t.row(cells![
            row.service,
            row.linux_configuration,
            format!("{:.1}MB", row.image_bytes as f64 / 1e6),
            format!("{:.1} sec.", row.seattle_secs),
            format!("{:.1} sec.", row.tacoma_secs),
            format!("{ps:.1} sec."),
            format!("{pt:.1} sec."),
        ]);
    }
    t.print();

    let mut stages = Table::new(
        "seattle stage breakdown (seconds)",
        &["service", "customize", "mount", "kernel", "services", "app"],
    );
    for row in &rows {
        let s = row.seattle_stages;
        stages.row(cells![
            row.service,
            format!("{:.2}", s[0]),
            format!("{:.2}", s[1]),
            format!("{:.2}", s[2]),
            format!("{:.2}", s[3]),
            format!("{:.2}", s[4]),
        ]);
    }
    stages.print();
    soda_bench::emit_json("exp_table2_bootstrap", &rows);
}
