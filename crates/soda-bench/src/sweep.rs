//! Parallel deterministic sweep runner.
//!
//! Simulations in this workspace are single-threaded and bit-deterministic
//! from their seed — so the *only* safe parallelism is across independent
//! `(seed × grid-point)` runs, never inside one. [`SweepRunner`] fans a
//! vector of jobs out over a rayon thread pool, one whole simulation per
//! work item, and re-assembles results in input order. Because each run's
//! world is thread-confined, a parallel sweep must produce bit-identical
//! fingerprints to a serial one; `exp_sweep` asserts exactly that by
//! re-running a pinned seed serially and comparing.
//!
//! The runner also measures what the parallelism bought: per-job wall
//! times (summed, they estimate the serial cost) against the parallel
//! region's wall clock.

use rayon::prelude::*;
use std::time::Instant;

/// Outcome of one parallel sweep: results in input order plus timing.
pub struct SweepOutcome<R> {
    /// One result per job, in input order.
    pub results: Vec<R>,
    /// Per-job wall seconds (input order), measured on the worker.
    pub job_secs: Vec<f64>,
    /// Wall seconds for the whole parallel region.
    pub wall_secs: f64,
    /// Worker threads the sweep ran on.
    pub threads: usize,
}

impl<R> SweepOutcome<R> {
    /// Estimated serial wall time: the sum of per-job walls (each job is
    /// an independent single-threaded simulation, so running them back to
    /// back would cost their sum). Caveat: job walls are measured inside
    /// the parallel region, so when workers outnumber cores each wall
    /// also counts time spent descheduled and the sum overstates serial
    /// cost. `exp_sweep` corrects for this by rescaling against an
    /// uncontended serial run; treat this raw estimate as an upper bound.
    pub fn serial_estimate_secs(&self) -> f64 {
        self.job_secs.iter().sum()
    }

    /// Wall-clock speedup of the parallel sweep versus the serial
    /// estimate (1.0 when there is nothing to speed up).
    pub fn speedup_vs_serial(&self) -> f64 {
        let serial = self.serial_estimate_secs();
        if self.wall_secs <= 0.0 || serial <= 0.0 {
            1.0
        } else {
            serial / self.wall_secs
        }
    }
}

/// Fans independent deterministic simulations out across cores.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner sized by the environment: `RAYON_NUM_THREADS` if set,
    /// otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        SweepRunner {
            threads: rayon::current_num_threads().max(1),
        }
    }

    /// A runner with a fixed worker count (1 = serial, on the calling
    /// thread).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// Worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over every job in parallel. `f` must be a pure function of
    /// its job (each call builds and runs its own simulation); results
    /// come back in input order regardless of completion order.
    pub fn run<J, R, F>(&self, jobs: Vec<J>, f: F) -> SweepOutcome<R>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync + Send,
    {
        let threads = self.threads.min(jobs.len()).max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let wall_start = Instant::now();
        let timed: Vec<(R, f64)> = pool.install(|| {
            jobs.into_par_iter()
                .map(|job| {
                    let job_start = Instant::now();
                    let result = f(job);
                    (result, job_start.elapsed().as_secs_f64())
                })
                .collect()
        });
        let wall_secs = wall_start.elapsed().as_secs_f64();
        let (results, job_secs) = timed.into_iter().unzip();
        SweepOutcome {
            results,
            job_secs,
            wall_secs,
            threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let runner = SweepRunner::with_threads(4);
        let out = runner.run((0u64..32).collect(), |x| x * 10);
        assert_eq!(out.results, (0u64..32).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(out.job_secs.len(), 32);
        assert_eq!(out.threads, 4);
        assert!(out.wall_secs >= 0.0);
    }

    #[test]
    fn serial_runner_matches_parallel_bit_for_bit() {
        // A deterministic "simulation": seeded xorshift churn.
        let sim = |seed: u64| {
            let mut x = seed | 1;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let seeds: Vec<u64> = (1..=8).collect();
        let par = SweepRunner::with_threads(4).run(seeds.clone(), sim);
        let ser = SweepRunner::with_threads(1).run(seeds, sim);
        assert_eq!(par.results, ser.results);
        assert_eq!(ser.threads, 1);
    }

    #[test]
    fn speedup_is_sane() {
        let out = SweepRunner::with_threads(2).run(vec![1u64, 2], |x| x);
        let est = out.serial_estimate_secs();
        assert!(est >= 0.0);
        assert!(out.speedup_vs_serial() > 0.0);
    }
}
