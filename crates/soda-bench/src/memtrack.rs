//! Process-wide heap high-water tracking for the perf experiments.
//!
//! The xl scale tier budgets *resident memory*, not just wall clock —
//! a dense-arena world that quietly doubled its footprint would pass a
//! wall-only gate. `VmHWM` is the obvious measure but it is quantized
//! to pages, inflated by allocator slack and thread stacks, and
//! unavailable off Linux. This module offers the precise alternative:
//! a counting [`GlobalAlloc`] wrapper that tracks live heap bytes and
//! their high-water mark in two relaxed atomics.
//!
//! Usage, in an `exp_*` binary that wants exact numbers:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: soda_bench::memtrack::TrackingAllocator =
//!     soda_bench::memtrack::TrackingAllocator;
//! ```
//!
//! then read [`peak_bytes`] after the run. [`peak_rss_bytes`] is the
//! funnel the bench records use: the allocator's mark when one is
//! installed, `VmHWM` otherwise, 0 when neither exists — so the same
//! reporting code works in binaries with and without the wrapper.
//!
//! The counters are global to the process (allocation has no useful
//! per-experiment scope), and the per-op cost is two relaxed atomic
//! RMWs — noise against `System`'s own bookkeeping, but enough that
//! latency-sensitive binaries (the no-alloc guards) should not install
//! it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap bytes currently live (allocated minus deallocated).
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE`].
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that maintains [`live_bytes`] /
/// [`peak_bytes`]. Install with `#[global_allocator]`.
pub struct TrackingAllocator;

fn count_alloc(size: u64) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            count_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            count_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            count_alloc(new_size as u64);
        }
        new_ptr
    }
}

/// Heap bytes live right now (0 unless [`TrackingAllocator`] is the
/// global allocator).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes (0 unless [`TrackingAllocator`]
/// is the global allocator).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// `VmHWM` from `/proc/self/status` in bytes (0 off Linux or when
/// unreadable). Page-quantized and slack-inflated, but available
/// without installing the allocator.
pub fn vm_hwm_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        return kb.parse::<u64>().unwrap_or(0) * 1024;
                    }
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// The bench-record funnel: the tracking allocator's high-water mark
/// when one is installed, `VmHWM` otherwise, 0 when neither exists.
pub fn peak_rss_bytes() -> u64 {
    let tracked = peak_bytes();
    if tracked > 0 {
        tracked
    } else {
        vm_hwm_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, ordered phases: the counters are process-global, so
    // separate tests would race in the parallel harness. The test
    // binary does NOT install the tracking allocator (the harness
    // allocates on many threads and exact assertions would be racy) —
    // the counters are driven directly instead.
    #[test]
    fn funnel_and_counting_arithmetic() {
        // Phase 1: untouched counters → the funnel falls back to VmHWM.
        assert_eq!(peak_bytes(), 0);
        assert_eq!(live_bytes(), 0);
        #[cfg(target_os = "linux")]
        {
            assert!(vm_hwm_bytes() > 0, "VmHWM readable on Linux");
            assert_eq!(peak_rss_bytes(), vm_hwm_bytes());
        }

        // Phase 2: the counting arithmetic peaks and releases.
        count_alloc(1000);
        assert_eq!(live_bytes(), 1000);
        assert_eq!(peak_bytes(), 1000);
        count_alloc(500);
        assert_eq!(live_bytes(), 1500);
        assert_eq!(peak_bytes(), 1500);
        LIVE.fetch_sub(1500, Ordering::Relaxed);
        assert_eq!(live_bytes(), 0);
        assert_eq!(peak_bytes(), 1500, "peak never decreases");

        // Phase 3: with a nonzero mark the funnel prefers it.
        assert_eq!(peak_rss_bytes(), 1500);
    }
}
