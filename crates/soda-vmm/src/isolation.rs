//! Fault/attack isolation — blast-radius model.
//!
//! §2.1's ghttpd example: a buffer-overflow in the honeypot's web server
//! gives the attacker a root shell. "With SODA, since the root that runs
//! ghttpd is the root of the *guest OS*, not the host OS, the attack
//! will *not* affect the host OS as well as other services." The
//! counterfactual — all services running directly at host-OS level — is
//! what SODA avoids: there, the same exploit owns the host and every
//! co-hosted service.
//!
//! This module computes the blast radius of a fault or compromise given
//! how a service executes. The attack-isolation experiment (§5) and the
//! non-isolated baseline both drive it.

/// How a service instance executes on a HUP host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Inside a virtual service node (a UML guest) — SODA's way.
    GuestIsolated,
    /// Directly on the host OS, as an ordinary root-owned daemon — the
    /// baseline active-service way (§2.2 justification (2)).
    HostDirect,
}

/// What went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The service process crashed (bug, resource exhaustion).
    Crash,
    /// A remote exploit granted the attacker the privileges of the
    /// service's root (the ghttpd buffer overflow).
    RootCompromise,
}

/// The computed blast radius.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blast {
    /// The faulting service instance itself is down.
    pub service_down: bool,
    /// The host OS is compromised or crashed.
    pub host_down: bool,
    /// Every other service on the same host is affected.
    pub cohosted_down: bool,
    /// The attacker holds a root that matters beyond the service.
    pub attacker_has_host_root: bool,
}

impl Blast {
    /// Blast radius of `fault` on a service running in `mode`.
    pub fn of(mode: ExecutionMode, fault: FaultKind) -> Blast {
        match (mode, fault) {
            // SODA: the guest "jails" the impact (§3.5: it only helps to
            // jail the impact of fault or attack within one service,
            // not to save the service).
            (ExecutionMode::GuestIsolated, FaultKind::Crash)
            | (ExecutionMode::GuestIsolated, FaultKind::RootCompromise) => Blast {
                service_down: true,
                host_down: false,
                cohosted_down: false,
                attacker_has_host_root: false,
            },
            // Host-direct crash of a root daemon: the service dies; in
            // the benign-crash case the host survives but shared fate is
            // already worse (no admin isolation, shared root).
            (ExecutionMode::HostDirect, FaultKind::Crash) => Blast {
                service_down: true,
                host_down: false,
                cohosted_down: false,
                attacker_has_host_root: false,
            },
            // Host-direct root compromise: the attacker owns the host —
            // every co-hosted service falls with it.
            (ExecutionMode::HostDirect, FaultKind::RootCompromise) => Blast {
                service_down: true,
                host_down: true,
                cohosted_down: true,
                attacker_has_host_root: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_isolation_jails_compromise() {
        let b = Blast::of(ExecutionMode::GuestIsolated, FaultKind::RootCompromise);
        assert!(b.service_down, "the honeypot itself does crash");
        assert!(!b.host_down);
        assert!(!b.cohosted_down, "the web content service is NOT affected");
        assert!(
            !b.attacker_has_host_root,
            "attacker only owns the guest root"
        );
    }

    #[test]
    fn guest_isolation_jails_crash() {
        let b = Blast::of(ExecutionMode::GuestIsolated, FaultKind::Crash);
        assert!(b.service_down);
        assert!(!b.cohosted_down && !b.host_down);
    }

    #[test]
    fn host_direct_compromise_owns_everything() {
        let b = Blast::of(ExecutionMode::HostDirect, FaultKind::RootCompromise);
        assert!(b.service_down && b.host_down && b.cohosted_down);
        assert!(b.attacker_has_host_root);
    }

    #[test]
    fn host_direct_benign_crash_is_contained() {
        let b = Blast::of(ExecutionMode::HostDirect, FaultKind::Crash);
        assert!(b.service_down);
        assert!(!b.host_down);
    }

    #[test]
    fn isolation_strictly_dominates() {
        // For every fault kind, guest isolation's blast radius is a
        // subset of host-direct's.
        for fault in [FaultKind::Crash, FaultKind::RootCompromise] {
            let g = Blast::of(ExecutionMode::GuestIsolated, fault);
            let h = Blast::of(ExecutionMode::HostDirect, fault);
            assert!(g.host_down <= h.host_down);
            assert!(g.cohosted_down <= h.cohosted_down);
            assert!(g.attacker_has_host_root <= h.attacker_has_host_root);
        }
    }
}
