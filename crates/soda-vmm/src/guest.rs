//! The guest OS instance.
//!
//! A running UML presents a complete Linux to the ASP: its own kernel
//! banner, its own root account, its own process table view (Figure 3's
//! side-by-side `ps -ef`), its own service list. The ASP has full
//! administrator privilege *inside* the guest — administration isolation
//! (§2.1): "the root that runs ghttpd is the root of the guest OS, not
//! the host OS".

use std::collections::BTreeSet;

use soda_hostos::process::{Pid, ProcessTable, Uid};

use crate::sysservices::{ServiceCatalog, SystemServiceId};

/// A booted guest operating system.
#[derive(Clone, Debug)]
pub struct GuestOs {
    /// Guest hostname (e.g. `"Web"` or `"Honeypot"` in Figure 3).
    pub hostname: String,
    /// Kernel version string — the testbed ran UML kernel 2.4.19.
    pub kernel_version: &'static str,
    /// Host-side uid all of this guest's processes bear.
    pub uid: Uid,
    /// System services running inside the guest.
    running_services: BTreeSet<SystemServiceId>,
}

impl GuestOs {
    /// Boot banner components matching the paper's screenshot.
    pub const BANNER: &'static str = "Welcome to SODA";
    /// The guest kernel the prototype used.
    pub const KERNEL: &'static str = "2.4.19";

    /// A freshly booted guest with the given retained services.
    pub fn boot(
        hostname: impl Into<String>,
        uid: Uid,
        services: BTreeSet<SystemServiceId>,
    ) -> Self {
        GuestOs {
            hostname: hostname.into(),
            kernel_version: Self::KERNEL,
            uid,
            running_services: services,
        }
    }

    /// The login banner as the console would print it (Figure 3).
    pub fn login_banner(&self) -> String {
        format!(
            "{}\nKernel {} on a i686\n{} login:",
            Self::BANNER,
            self.kernel_version,
            self.hostname
        )
    }

    /// Spawn the init-time processes of this guest into the host process
    /// table (kernel threads + one process per running service), naming
    /// them by their catalog entries. Returns the spawned pids.
    pub fn spawn_initial_processes(
        &self,
        table: &mut ProcessTable,
        catalog: &ServiceCatalog,
    ) -> Vec<Pid> {
        let mut pids = Vec::new();
        // UML kernel threads, as visible in the Figure 3 screenshot.
        for kthread in ["init", "[kswapd]", "[bdflush]", "[kupdated]"] {
            pids.push(table.spawn(self.uid, kthread));
        }
        for id in &self.running_services {
            if let Some(svc) = catalog.get(*id) {
                // init is already present as the guest's pid-1 thread.
                if svc.name != "init" {
                    pids.push(table.spawn(self.uid, svc.name));
                }
            }
        }
        pids
    }

    /// The guest's own `ps -ef`: only processes bearing its uid.
    pub fn ps<'a>(&self, table: &'a ProcessTable) -> Vec<&'a str> {
        table.ps_uid(self.uid).map(|p| p.command.as_str()).collect()
    }

    /// Is a given system service running in this guest?
    pub fn is_running(&self, id: SystemServiceId) -> bool {
        self.running_services.contains(&id)
    }

    /// Number of running system services.
    pub fn service_count(&self) -> usize {
        self.running_services.len()
    }

    /// Stop a service inside the guest (ASP administration: the ASP has
    /// root here). Returns whether it was running.
    pub fn stop_service(&mut self, id: SystemServiceId) -> bool {
        self.running_services.remove(&id)
    }

    /// Start a service inside the guest.
    pub fn start_service(&mut self, id: SystemServiceId) {
        self.running_services.insert(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> ServiceCatalog {
        ServiceCatalog::standard()
    }

    fn guest(name: &str, uid: u32, req: &[&str]) -> GuestOs {
        let c = catalog();
        GuestOs::boot(name, Uid(uid), c.closure(req))
    }

    #[test]
    fn banner_matches_screenshot() {
        let g = guest("Web", 100, &["httpd"]);
        let banner = g.login_banner();
        assert!(banner.contains("Welcome to SODA"));
        assert!(banner.contains("Kernel 2.4.19 on a i686"));
        assert!(banner.contains("Web login:"));
    }

    #[test]
    fn two_guests_have_isolated_process_views() {
        // The Figure 3 demonstration: web and honeypot guests coexist,
        // each sees only its own processes.
        let c = catalog();
        let web = guest("Web", 100, &["httpd"]);
        let honeypot = guest("Honeypot", 101, &["ghttpd"]);
        let mut table = ProcessTable::new();
        web.spawn_initial_processes(&mut table, &c);
        honeypot.spawn_initial_processes(&mut table, &c);
        let web_ps = web.ps(&table);
        let hp_ps = honeypot.ps(&table);
        assert!(web_ps.contains(&"httpd"));
        assert!(
            !web_ps.contains(&"ghttpd"),
            "web guest must not see honeypot procs"
        );
        assert!(hp_ps.contains(&"ghttpd"));
        assert!(!hp_ps.contains(&"httpd"));
        // Both show UML kernel threads.
        assert!(web_ps.contains(&"[kswapd]"));
        assert!(hp_ps.contains(&"[kswapd]"));
        // The host sees everything.
        assert_eq!(table.ps_all().count(), web_ps.len() + hp_ps.len());
    }

    #[test]
    fn service_lifecycle_inside_guest() {
        let c = catalog();
        let mut g = guest("Web", 100, &["httpd"]);
        let httpd = c.by_name("httpd").unwrap().id;
        assert!(g.is_running(httpd));
        assert!(g.stop_service(httpd));
        assert!(!g.is_running(httpd));
        assert!(!g.stop_service(httpd), "stopping twice is false");
        g.start_service(httpd);
        assert!(g.is_running(httpd));
    }

    #[test]
    fn service_count_reflects_closure() {
        let g = guest("Web", 100, &["httpd"]);
        // httpd + network + syslogd + init.
        assert_eq!(g.service_count(), 4);
    }
}
