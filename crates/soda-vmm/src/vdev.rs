//! UML virtual device cost models.
//!
//! A UML guest reaches disk and network through user-space devices:
//! `ubd` (the user-mode block device backed by the rootfs file) and the
//! TUN/TAP ethernet device the host bridge attaches to (§3.3). Both
//! paths multiply host syscalls: every guest block request becomes
//! host-side `read`/`write` calls plus interception overhead, and every
//! guest packet crosses the tracer, a TAP `read`/`write` and the bridge.
//!
//! These models ground the *network* half of
//! [`crate::intercept::SlowdownFactors`]: the per-byte overhead of the
//! virtual NIC path relative to a host-native socket.

use soda_hostos::cpu::CpuSpec;
use soda_hostos::syscall::Syscall;
use soda_sim::SimDuration;

use crate::intercept::InterceptCostModel;

/// The `ubd` block-device path.
#[derive(Clone, Debug)]
pub struct UbdModel {
    /// Interception model (each guest block request is a guest syscall).
    pub intercept: InterceptCostModel,
    /// Bytes the guest kernel batches per `ubd` request.
    pub request_bytes: u64,
    /// Extra copy cost per byte (guest buffer ↔ host page cache),
    /// cycles/byte.
    pub copy_cycles_per_byte: f64,
}

impl Default for UbdModel {
    fn default() -> Self {
        UbdModel {
            intercept: InterceptCostModel::default(),
            request_bytes: 32 * 1024,
            copy_cycles_per_byte: 0.6,
        }
    }
}

impl UbdModel {
    /// The default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// CPU cycles of virtualisation overhead to move `bytes` through
    /// `ubd` (excludes the physical disk time, which the host disk model
    /// accounts).
    pub fn overhead_cycles(&self, bytes: u64) -> u64 {
        let requests = bytes.div_ceil(self.request_bytes).max(1);
        // Per request: one intercepted syscall + the host-side I/O call.
        let per_request = self.intercept.uml_cycles(Syscall::Read)
            + self.intercept.native.native_cycles(Syscall::Read);
        requests * per_request + (bytes as f64 * self.copy_cycles_per_byte) as u64
    }

    /// Wall-clock CPU overhead on `cpu`.
    pub fn overhead_time(&self, bytes: u64, cpu: &CpuSpec) -> SimDuration {
        cpu.cycles_to_time(self.overhead_cycles(bytes))
    }
}

/// The TUN/TAP virtual NIC path.
#[derive(Clone, Debug)]
pub struct NetDevModel {
    /// Interception model.
    pub intercept: InterceptCostModel,
    /// MTU — bytes per packet on the virtual wire.
    pub mtu: u64,
    /// Bridge forwarding cycles per packet (table lookup + queueing).
    pub bridge_cycles: u64,
    /// Copy cost per byte (guest buffer → TAP → bridge), cycles/byte.
    pub copy_cycles_per_byte: f64,
}

impl Default for NetDevModel {
    fn default() -> Self {
        NetDevModel {
            intercept: InterceptCostModel::default(),
            mtu: 1500,
            bridge_cycles: 900,
            copy_cycles_per_byte: 0.9,
        }
    }
}

impl NetDevModel {
    /// The default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Virtualisation overhead cycles to transmit `bytes` from the guest
    /// (on top of what a host-native sender pays).
    pub fn tx_overhead_cycles(&self, bytes: u64) -> u64 {
        let packets = bytes.div_ceil(self.mtu).max(1);
        // Per packet: the guest's write is intercepted; the host then
        // writes to TAP (native) and the bridge forwards.
        let per_packet = self.intercept.uml_cycles(Syscall::Write)
            - self.intercept.native.native_cycles(Syscall::Write) // host write is paid natively anyway
            + self.bridge_cycles;
        packets * per_packet + (bytes as f64 * self.copy_cycles_per_byte) as u64
    }

    /// Cycles a *host-native* sender pays for the same bytes (syscall per
    /// packet + single copy).
    pub fn native_tx_cycles(&self, bytes: u64) -> u64 {
        let packets = bytes.div_ceil(self.mtu).max(1);
        packets * self.intercept.native.native_cycles(Syscall::Write) + (bytes as f64 * 0.5) as u64
    }

    /// The network slow-down factor for bulk transmission: total guest
    /// cycles over total native cycles. This is what
    /// [`crate::intercept::SlowdownFactors`]'s network component models.
    pub fn tx_slowdown(&self, bytes: u64) -> f64 {
        let native = self.native_tx_cycles(bytes);
        if native == 0 {
            return 1.0;
        }
        (native + self.tx_overhead_cycles(bytes)) as f64 / native as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubd_overhead_scales_with_requests() {
        let m = UbdModel::new();
        let one = m.overhead_cycles(10_000); // 1 request
        let many = m.overhead_cycles(320_000); // 10 requests
        assert!(many > 8 * one && many < 16 * one, "one {one} many {many}");
        // Even 1 byte pays a full request.
        assert!(m.overhead_cycles(1) >= m.intercept.uml_cycles(Syscall::Read));
    }

    #[test]
    fn ubd_time_scales_with_clock() {
        let m = UbdModel::new();
        let fast = m.overhead_time(1_000_000, &CpuSpec::seattle());
        let slow = m.overhead_time(1_000_000, &CpuSpec::tacoma());
        assert!(slow > fast);
        // ~31 requests × ~28 k cycles + copies ≈ well under 1 ms at 2.6 GHz.
        assert!(fast < SimDuration::from_millis(2), "{fast}");
    }

    #[test]
    fn netdev_slowdown_is_bounded_and_flat() {
        // The TX slow-down factor must be meaningfully above 1 but far
        // below the syscall penalty, and roughly constant across
        // transfer sizes (Figure 6's flatness comes from this).
        let m = NetDevModel::new();
        let small = m.tx_slowdown(10_000);
        let large = m.tx_slowdown(1_000_000);
        for f in [small, large] {
            assert!(f > 1.5 && f < 40.0, "factor {f}");
        }
        assert!(
            (small / large - 1.0).abs() < 0.35,
            "small {small} large {large}"
        );
    }

    #[test]
    fn netdev_per_packet_costs_dominate_small_packets() {
        let m = NetDevModel::new();
        // One MTU vs one byte: same packet count, nearly same overhead.
        let one_byte = m.tx_overhead_cycles(1);
        let one_mtu = m.tx_overhead_cycles(1_500);
        assert!(one_mtu < one_byte * 2, "{one_byte} vs {one_mtu}");
    }
}
