//! Root-filesystem images and tailoring.
//!
//! The four images of Table 2, with the structure the tailoring step
//! needs: an image splits into a *system* part (init scripts, daemons,
//! libraries — what customisation prunes) and a *data* part (the
//! application service's files, untouched). "The customized root file
//! system is light-weight and reconfigurable — in many cases it can be
//! mounted in RAM disk for fast bootstrapping." (§4.3)

use std::collections::BTreeSet;

use crate::sysservices::{ServiceCatalog, SystemServiceId};

/// A packaged root filesystem (the ASP ships the service image inside
/// it; "the application service image is also part of the root file
/// system", footnote 4).
#[derive(Clone, Debug)]
pub struct RootFsImage {
    /// Image name as shipped, e.g. `"rootfs_base_1.0"`.
    pub name: String,
    /// System part: init scripts, daemons, shared libraries (bytes).
    pub system_bytes: u64,
    /// Data part: the application's executables and data files (bytes).
    pub data_bytes: u64,
    /// System services installed in the image.
    pub installed: BTreeSet<SystemServiceId>,
    /// A pristine image boots as-is — the SODA Daemon does not tailor it
    /// (Table 2's `S_IV` "requires a full-blown Linux server").
    pub pristine: bool,
}

impl RootFsImage {
    /// Total image size on the wire and on disk.
    pub fn total_bytes(&self) -> u64 {
        self.system_bytes + self.data_bytes
    }

    /// Number of installed system services.
    pub fn installed_count(&self) -> usize {
        self.installed.len()
    }
}

/// Result of tailoring an image for a given application service.
#[derive(Clone, Debug)]
pub struct TailoredFs {
    /// Services retained (dependency closure of the app's requirements,
    /// intersected with what the image has installed).
    pub kept: BTreeSet<SystemServiceId>,
    /// Size of the customised root filesystem.
    pub size_bytes: u64,
    /// True if no tailoring was applied (pristine image).
    pub pristine: bool,
}

impl TailoredFs {
    /// RAM-disk cap: a customised filesystem is mounted in RAM when it
    /// fits in half the host's memory, capped at 256 MB (the guest also
    /// needs RAM to run in).
    pub fn ramdisk_eligible(&self, host_mem_mb: u32) -> bool {
        if self.pristine {
            return false;
        }
        let cap_bytes = u64::from(host_mem_mb / 2).min(256) * 1_000_000;
        self.size_bytes <= cap_bytes
    }
}

/// Fixed overhead of any bootable filesystem (kernel modules, /bin,
/// core libraries) that tailoring cannot remove.
pub const BASE_FS_BYTES: u64 = 8_000_000;

/// The catalog of Table 2's images plus a builder for custom ones.
#[derive(Clone, Debug, Default)]
pub struct RootFsCatalog {
    services: ServiceCatalog,
}

impl RootFsCatalog {
    /// A catalog backed by the standard service database.
    pub fn new() -> Self {
        RootFsCatalog {
            services: ServiceCatalog::standard(),
        }
    }

    /// The service database in use.
    pub fn services(&self) -> &ServiceCatalog {
        &self.services
    }

    /// `rootfs_base_1.0` — Table 2's `S_I` image: 29.3 MB, a minimal
    /// bootable system with a web server.
    pub fn base_1_0(&self) -> RootFsImage {
        RootFsImage {
            name: "rootfs_base_1.0".into(),
            system_bytes: 26_000_000,
            data_bytes: 3_300_000,
            installed: self.services.ids_of(&[
                "init", "keytable", "random", "syslogd", "klogd", "network", "inetd", "httpd",
                "crond", "sshd",
            ]),
            pristine: false,
        }
    }

    /// `root_fs_tomrtbt_1.7.205` — `S_II`: 15 MB, the tomsrtbt rescue
    /// floppy image, very few services.
    pub fn tomsrtbt(&self) -> RootFsImage {
        RootFsImage {
            name: "root_fs_tomrtbt_1.7.205".into(),
            system_bytes: 13_000_000,
            data_bytes: 2_000_000,
            installed: self
                .services
                .ids_of(&["init", "keytable", "random", "syslogd", "network", "inetd"]),
            pristine: false,
        }
    }

    /// `root_fs_lfs_4.0` — `S_III`: 400 MB Linux-From-Scratch image; big
    /// because of bundled data, not because of services.
    pub fn lfs_4_0(&self) -> RootFsImage {
        RootFsImage {
            name: "root_fs_lfs_4.0".into(),
            system_bytes: 20_000_000,
            data_bytes: 380_000_000,
            installed: self.services.ids_of(&[
                "init", "keytable", "random", "syslogd", "klogd", "network", "netfs", "portmap",
                "inetd", "sshd", "crond", "httpd",
            ]),
            pristine: false,
        }
    }

    /// `root_fs.rh-7.2-server.pristine.20021012` — `S_IV`: 253 MB
    /// full-blown Red Hat 7.2 server, boots everything it ships.
    pub fn rh72_server_pristine(&self) -> RootFsImage {
        RootFsImage {
            name: "root_fs.rh-7.2-server.pristine.20021012".into(),
            system_bytes: 233_000_000,
            data_bytes: 20_000_000,
            installed: self.services.ids_of(&[
                "init", "keytable", "random", "syslogd", "klogd", "network", "netfs", "portmap",
                "inetd", "xinetd", "sshd", "crond", "atd", "sendmail", "httpd", "nfs", "nfslock",
                "ypbind", "autofs", "apmd", "gpm", "kudzu", "lpd", "identd", "rstatd", "rusersd",
                "rwhod", "snmpd", "mysqld", "anacron",
            ]),
            pristine: true,
        }
    }

    /// A custom image for examples/extensions.
    pub fn custom(
        &self,
        name: impl Into<String>,
        system_bytes: u64,
        data_bytes: u64,
        installed: &[&str],
        pristine: bool,
    ) -> RootFsImage {
        RootFsImage {
            name: name.into(),
            system_bytes,
            data_bytes,
            installed: self.services.ids_of(installed),
            pristine,
        }
    }

    /// Tailor an image for an application needing `required` system
    /// services — the SODA Daemon's customisation step. Pristine images
    /// are returned untailored with every installed service kept.
    ///
    /// ```
    /// use soda_vmm::rootfs::RootFsCatalog;
    /// let catalog = RootFsCatalog::new();
    /// let image = catalog.base_1_0(); // 29.3 MB, 10 installed services
    /// let tailored = catalog.tailor(&image, &["network", "syslogd"]);
    /// // Only the dependency closure survives; the fs shrinks enough to
    /// // mount in a RAM disk on the 768 MB tacoma host.
    /// assert!(tailored.kept.len() < image.installed_count());
    /// assert!(tailored.size_bytes < image.total_bytes());
    /// assert!(tailored.ramdisk_eligible(768));
    /// ```
    pub fn tailor(&self, image: &RootFsImage, required: &[&str]) -> TailoredFs {
        if image.pristine {
            return TailoredFs {
                kept: image.installed.clone(),
                size_bytes: image.total_bytes(),
                pristine: true,
            };
        }
        let closure = self.services.closure(required);
        let kept: BTreeSet<SystemServiceId> =
            closure.intersection(&image.installed).copied().collect();
        let size_bytes = BASE_FS_BYTES + self.services.footprint_bytes(&kept) + image.data_bytes;
        TailoredFs {
            kept,
            size_bytes,
            pristine: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_image_sizes() {
        let c = RootFsCatalog::new();
        assert_eq!(c.base_1_0().total_bytes(), 29_300_000);
        assert_eq!(c.tomsrtbt().total_bytes(), 15_000_000);
        assert_eq!(c.lfs_4_0().total_bytes(), 400_000_000);
        assert_eq!(c.rh72_server_pristine().total_bytes(), 253_000_000);
    }

    #[test]
    fn table2_image_service_counts_order() {
        // The paper: S_I..S_III need tailored subsets, S_IV a full server.
        let c = RootFsCatalog::new();
        assert_eq!(c.tomsrtbt().installed_count(), 6);
        assert_eq!(c.base_1_0().installed_count(), 10);
        assert_eq!(c.lfs_4_0().installed_count(), 12);
        assert_eq!(c.rh72_server_pristine().installed_count(), 30);
        assert!(c.rh72_server_pristine().pristine);
        assert!(!c.base_1_0().pristine);
    }

    #[test]
    fn tailoring_prunes_to_closure() {
        let c = RootFsCatalog::new();
        let img = c.base_1_0();
        let t = c.tailor(&img, &["httpd"]);
        assert!(!t.pristine);
        // Kept: httpd + network + syslogd + init (what the image has of
        // the closure).
        let names: Vec<&str> = t
            .kept
            .iter()
            .map(|id| c.services().get(*id).unwrap().name)
            .collect();
        assert!(names.contains(&"httpd"));
        assert!(names.contains(&"network"));
        assert!(!names.contains(&"sshd"), "sshd must be pruned");
        assert!(!names.contains(&"crond"), "crond must be pruned");
        // Tailored size below original.
        assert!(t.size_bytes < img.total_bytes());
        // But keeps base + data.
        assert!(t.size_bytes >= BASE_FS_BYTES + img.data_bytes);
    }

    #[test]
    fn tailoring_keeps_only_installed_services() {
        let c = RootFsCatalog::new();
        let img = c.tomsrtbt(); // has no httpd
        let t = c.tailor(&img, &["httpd"]);
        let names: Vec<&str> = t
            .kept
            .iter()
            .map(|id| c.services().get(*id).unwrap().name)
            .collect();
        assert!(
            !names.contains(&"httpd"),
            "cannot keep what is not installed"
        );
        assert!(names.contains(&"network"));
    }

    #[test]
    fn pristine_is_not_tailored() {
        let c = RootFsCatalog::new();
        let img = c.rh72_server_pristine();
        let t = c.tailor(&img, &["httpd"]);
        assert!(t.pristine);
        assert_eq!(t.kept.len(), img.installed_count());
        assert_eq!(t.size_bytes, img.total_bytes());
        assert!(!t.ramdisk_eligible(4096), "pristine never RAM-disks");
    }

    #[test]
    fn ramdisk_eligibility() {
        let c = RootFsCatalog::new();
        // Small tailored base image fits in RAM disk on both hosts.
        let t = c.tailor(&c.base_1_0(), &["httpd"]);
        assert!(t.ramdisk_eligible(2048)); // seattle
        assert!(t.ramdisk_eligible(768)); // tacoma
                                          // The 400 MB LFS image exceeds the 256 MB cap everywhere.
        let t3 = c.tailor(&c.lfs_4_0(), &["httpd", "sshd"]);
        assert!(!t3.ramdisk_eligible(2048));
        assert!(!t3.ramdisk_eligible(768));
    }

    #[test]
    fn custom_image_builder() {
        let c = RootFsCatalog::new();
        let img = c.custom(
            "genome_fs",
            20_000_000,
            500_000_000,
            &["httpd", "mysqld"],
            false,
        );
        assert_eq!(img.total_bytes(), 520_000_000);
        assert_eq!(img.installed_count(), 2);
        let t = c.tailor(&img, &["mysqld"]);
        let names: Vec<&str> = t
            .kept
            .iter()
            .map(|id| c.services().get(*id).unwrap().name)
            .collect();
        assert!(names.contains(&"mysqld"));
        assert!(!names.contains(&"httpd"));
    }

    #[test]
    fn tailored_size_monotone_in_requirements() {
        let c = RootFsCatalog::new();
        let img = c.rh72_server_pristine();
        // For a non-pristine copy of the same content:
        let img = RootFsImage {
            pristine: false,
            ..img
        };
        let small = c.tailor(&img, &["inetd"]);
        let large = c.tailor(&img, &["inetd", "httpd", "sendmail", "nfs", "mysqld"]);
        assert!(large.size_bytes > small.size_bytes);
        assert!(large.kept.is_superset(&small.kept));
    }
}
