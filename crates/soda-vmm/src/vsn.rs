//! The virtual service node state machine.
//!
//! "Each virtual machine is called a virtual service node, which is
//! physically a 'slice' of a HUP host. Each node runs a guest OS on top
//! of the host OS; while service S runs on top of the guest OS.
//! Moreover, an IP address is assigned to each virtual service node so
//! that it can communicate like a physical server." (§2.1)
//!
//! Lifecycle:
//!
//! ```text
//! Allocated ──start_priming──▶ Priming ──booted──▶ Running
//!     │                           │                   │
//!     └────────teardown───────────┴──────┬────────────┤
//!                                        ▼            ▼
//!                                    TornDown ◀── Crashed
//!                                        (crashed nodes can be torn
//!                                         down or re-primed)
//! ```

use std::fmt;

use soda_hostos::process::Uid;
use soda_net::addr::Ipv4Addr;
use soda_sim::SimTime;

use crate::guest::GuestOs;

/// Identifier of a virtual service node, unique across the HUP.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VsnId(pub u64);

impl fmt::Display for VsnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vsn-{}", self.0)
    }
}

/// Lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VsnState {
    /// Slice reserved; nothing downloaded or booted yet.
    Allocated,
    /// Image download + bootstrap in progress.
    Priming,
    /// Guest OS and application up, serving.
    Running,
    /// The guest crashed (fault or successful attack). The slice is
    /// still reserved; the host and co-hosted nodes are unaffected.
    Crashed,
    /// Resources released; terminal.
    TornDown,
}

/// Invalid lifecycle transitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VsnError {
    /// The node.
    pub vsn: VsnId,
    /// What was attempted.
    pub attempted: &'static str,
    /// The state it was in.
    pub state: VsnState,
}

impl fmt::Display for VsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: cannot {} from state {:?}",
            self.vsn, self.attempted, self.state
        )
    }
}

impl std::error::Error for VsnError {}

/// A virtual service node.
#[derive(Clone, Debug)]
pub struct VirtualServiceNode {
    /// Node id.
    pub id: VsnId,
    /// Host-side uid of every process in this node.
    pub uid: Uid,
    /// The node's IP address (assigned during priming).
    pub ip: Option<Ipv4Addr>,
    /// Relative capacity in machine instances `M` (Table 3's "Capacity"
    /// column; ≥ 1).
    pub capacity: u32,
    /// Reservation id in the host ledger.
    pub reservation: u64,
    /// Current state.
    state: VsnState,
    /// The booted guest (present in Running/Crashed).
    guest: Option<GuestOs>,
    /// When the node entered Running (for billing).
    pub running_since: Option<SimTime>,
    /// Crash counter (the honeypot's is large).
    pub crash_count: u32,
}

impl VirtualServiceNode {
    /// A freshly allocated node.
    pub fn allocated(id: VsnId, uid: Uid, capacity: u32, reservation: u64) -> Self {
        VirtualServiceNode {
            id,
            uid,
            ip: None,
            capacity: capacity.max(1),
            reservation,
            state: VsnState::Allocated,
            guest: None,
            running_since: None,
            crash_count: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> &VsnState {
        &self.state
    }

    /// The booted guest, if any.
    pub fn guest(&self) -> Option<&GuestOs> {
        self.guest.as_ref()
    }

    /// Mutable guest access (ASP administration inside the node).
    pub fn guest_mut(&mut self) -> Option<&mut GuestOs> {
        self.guest.as_mut()
    }

    /// True iff the node can serve requests.
    pub fn is_running(&self) -> bool {
        self.state == VsnState::Running
    }

    fn err(&self, attempted: &'static str) -> VsnError {
        VsnError {
            vsn: self.id,
            attempted,
            state: self.state,
        }
    }

    /// Begin priming (download + bootstrap). Allowed from Allocated, and
    /// from Crashed (re-priming a crashed node — how the honeypot is
    /// revived between attacks).
    pub fn start_priming(&mut self) -> Result<(), VsnError> {
        match self.state {
            VsnState::Allocated | VsnState::Crashed => {
                self.state = VsnState::Priming;
                self.guest = None;
                self.running_since = None;
                Ok(())
            }
            _ => Err(self.err("start_priming")),
        }
    }

    /// Complete priming: the guest has booted, the IP is assigned.
    pub fn booted(&mut self, guest: GuestOs, ip: Ipv4Addr, now: SimTime) -> Result<(), VsnError> {
        match self.state {
            VsnState::Priming => {
                self.state = VsnState::Running;
                self.guest = Some(guest);
                self.ip = Some(ip);
                self.running_since = Some(now);
                Ok(())
            }
            _ => Err(self.err("booted")),
        }
    }

    /// The guest crashed (fault or successful attack). Only valid while
    /// running — the isolation property is that *this* is the entire
    /// blast radius.
    pub fn crash(&mut self) -> Result<(), VsnError> {
        match self.state {
            VsnState::Running => {
                self.state = VsnState::Crashed;
                self.crash_count += 1;
                self.running_since = None;
                Ok(())
            }
            _ => Err(self.err("crash")),
        }
    }

    /// Tear the node down, releasing it. Valid from any non-terminal
    /// state.
    pub fn teardown(&mut self) -> Result<(), VsnError> {
        match self.state {
            VsnState::TornDown => Err(self.err("teardown")),
            _ => {
                self.state = VsnState::TornDown;
                self.guest = None;
                self.running_since = None;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_hostos::process::Uid;
    use std::collections::BTreeSet;

    fn node() -> VirtualServiceNode {
        VirtualServiceNode::allocated(VsnId(1), Uid(100), 2, 77)
    }

    fn guest() -> GuestOs {
        GuestOs::boot("Web", Uid(100), BTreeSet::new())
    }

    fn ip() -> Ipv4Addr {
        "128.10.9.125".parse().unwrap()
    }

    #[test]
    fn happy_path_lifecycle() {
        let mut n = node();
        assert_eq!(*n.state(), VsnState::Allocated);
        assert!(!n.is_running());
        n.start_priming().unwrap();
        assert_eq!(*n.state(), VsnState::Priming);
        n.booted(guest(), ip(), SimTime::from_secs(3)).unwrap();
        assert!(n.is_running());
        assert_eq!(n.ip, Some(ip()));
        assert_eq!(n.running_since, Some(SimTime::from_secs(3)));
        assert!(n.guest().is_some());
        n.teardown().unwrap();
        assert_eq!(*n.state(), VsnState::TornDown);
        assert!(n.guest().is_none());
    }

    #[test]
    fn crash_and_reprime() {
        let mut n = node();
        n.start_priming().unwrap();
        n.booted(guest(), ip(), SimTime::ZERO).unwrap();
        n.crash().unwrap();
        assert_eq!(*n.state(), VsnState::Crashed);
        assert_eq!(n.crash_count, 1);
        assert!(n.running_since.is_none());
        // The honeypot cycle: crash, re-prime, crash again.
        n.start_priming().unwrap();
        n.booted(guest(), ip(), SimTime::from_secs(10)).unwrap();
        n.crash().unwrap();
        assert_eq!(n.crash_count, 2);
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut n = node();
        // Cannot boot before priming.
        let e = n.booted(guest(), ip(), SimTime::ZERO).unwrap_err();
        assert_eq!(e.attempted, "booted");
        assert_eq!(e.state, VsnState::Allocated);
        // Cannot crash a node that is not running.
        assert!(n.crash().is_err());
        // Cannot prime while priming.
        n.start_priming().unwrap();
        assert!(n.start_priming().is_err());
        // Teardown is terminal.
        n.teardown().unwrap();
        assert!(n.teardown().is_err());
        assert!(n.start_priming().is_err());
        assert!(n.crash().is_err());
    }

    #[test]
    fn capacity_clamped_to_one() {
        let n = VirtualServiceNode::allocated(VsnId(2), Uid(1), 0, 1);
        assert_eq!(n.capacity, 1);
    }

    #[test]
    fn error_display() {
        let mut n = node();
        let e = n.crash().unwrap_err();
        assert!(e.to_string().contains("vsn-1"));
        assert!(e.to_string().contains("crash"));
    }
}
