//! UML syscall interception cost model — Table 4's "in UML" column —
//! and the derived application-level slowdown (Figure 6).
//!
//! §4.2: "A special thread is created to intercept the system calls made
//! by all process threads of the UML, and redirect them into the host OS
//! kernel." Mechanically (UML's "tt" mode, the 2003 implementation):
//!
//! 1. the guest process traps; the host stops it (`ptrace`),
//! 2. the host context-switches to the tracing thread,
//! 3. the tracer reads the registers, nullifies the original call and
//!    redirects control into the guest kernel (several `ptrace`
//!    operations, each itself a native syscall),
//! 4. the guest kernel runs the call's work in user space and issues the
//!    real host syscall,
//! 5. the tracer restores and resumes the guest process (another context
//!    switch pair).
//!
//! So one guest syscall costs ~4 context switches + ~4 ptrace calls +
//! guest-kernel work + the native call — which is why Table 4 shows a
//! 20–27× penalty. `gettimeofday` pays extra: UML virtualises time, so
//! the guest kernel does additional bookkeeping.

use soda_hostos::cpu::CpuSpec;
use soda_hostos::syscall::{Syscall, SyscallCostModel};
use soda_sim::SimDuration;

/// UML execution mode. The 2003 prototype ran "tt" (tracing-thread)
/// mode; UML later grew "skas" (separate kernel address space), which
/// halves the context switching per intercepted call. Modelled as the
/// paper's natural future-work ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UmlMode {
    /// Tracing-thread mode: every guest syscall bounces through the
    /// tracer — 4 context switches + 4 ptrace operations.
    Tt,
    /// Separate-kernel-address-space mode: the guest kernel runs in its
    /// own host process; a syscall costs 2 context switches + 2 ptrace
    /// operations.
    Skas,
}

/// Calibrated costs of the interception path.
///
/// ```
/// use soda_hostos::syscall::Syscall;
/// use soda_vmm::intercept::InterceptCostModel;
/// let model = InterceptCostModel::new();
/// // Table 4's getpid row: ~26.6k cycles in UML vs ~1.1k natively.
/// let penalty = model.penalty(Syscall::Getpid);
/// assert!(penalty > 20.0 && penalty < 30.0);
/// ```
#[derive(Clone, Debug)]
pub struct InterceptCostModel {
    /// The native model underneath (the redirected call still executes).
    pub native: SyscallCostModel,
    /// One host context switch (save/restore + scheduler pass + cache
    /// disturbance).
    pub context_switch_cycles: u64,
    /// Context switches per intercepted call (stop→tracer, tracer→guest
    /// kernel, and back).
    pub context_switches: u64,
    /// `ptrace` operations the tracer issues per call (PEEKUSER ×2,
    /// POKEUSER, CONT), each costing about a native trap.
    pub ptrace_ops: u64,
    /// Cycles of each ptrace operation.
    pub ptrace_op_cycles: u64,
    /// Guest-kernel work in user space per call (entry bookkeeping,
    /// dispatch, signal checks).
    pub guest_kernel_cycles: u64,
    /// Extra guest-kernel work for time virtualisation on
    /// `gettimeofday`.
    pub time_virtualization_cycles: u64,
}

impl Default for InterceptCostModel {
    fn default() -> Self {
        InterceptCostModel {
            native: SyscallCostModel::default(),
            context_switch_cycles: 4_700,
            context_switches: 4,
            ptrace_ops: 4,
            ptrace_op_cycles: 1_100,
            guest_kernel_cycles: 2_100,
            time_virtualization_cycles: 9_200,
        }
    }
}

impl InterceptCostModel {
    /// The default calibration (reproduces Table 4's magnitudes on the
    /// 2.6 GHz Xeon) — tt mode, as in the paper.
    pub fn new() -> Self {
        Self::default()
    }

    /// The model for a given UML mode. `Tt` matches [`Self::new`]; `Skas`
    /// halves the context switches and ptrace traffic.
    pub fn for_mode(mode: UmlMode) -> Self {
        let mut m = Self::default();
        if mode == UmlMode::Skas {
            m.context_switches = 2;
            m.ptrace_ops = 2;
        }
        m
    }

    /// Total cycles for one syscall issued *inside* the UML guest.
    pub fn uml_cycles(&self, call: Syscall) -> u64 {
        let base = self.context_switches * self.context_switch_cycles
            + self.ptrace_ops * self.ptrace_op_cycles
            + self.guest_kernel_cycles
            + self.native.native_cycles(call);
        match call {
            Syscall::Gettimeofday => base + self.time_virtualization_cycles,
            _ => base,
        }
    }

    /// Wall time of one in-guest syscall on `cpu`.
    pub fn uml_time(&self, call: Syscall, cpu: &CpuSpec) -> SimDuration {
        cpu.cycles_to_time(self.uml_cycles(call))
    }

    /// The per-call penalty factor (UML / native) for one syscall.
    pub fn penalty(&self, call: Syscall) -> f64 {
        self.uml_cycles(call) as f64 / self.native.native_cycles(call) as f64
    }

    /// Application-level slowdown factors for a workload characterised by
    /// its syscall density.
    ///
    /// Figure 6's point: although a single syscall is 20–27× slower in
    /// UML, a real service spends most of its cycles in user-space work
    /// and I/O wait, so the end-to-end slowdown is modest and roughly
    /// constant across dataset sizes. Given a workload that performs
    /// `user_cycles` of computation and `syscalls` kernel crossings per
    /// request, the CPU slowdown is:
    ///
    /// `(user + Σ uml) / (user + Σ native)`
    pub fn workload_slowdown(&self, user_cycles: u64, calls: &[(Syscall, u64)]) -> f64 {
        let native: u64 = calls
            .iter()
            .map(|&(c, n)| n * self.native.native_cycles(c))
            .sum();
        let uml: u64 = calls.iter().map(|&(c, n)| n * self.uml_cycles(c)).sum();
        let base = user_cycles + native;
        if base == 0 {
            return 1.0;
        }
        (user_cycles + uml) as f64 / base as f64
    }
}

/// Slow-down factors applied to a virtual service node's execution,
/// relative to running directly on the host OS.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowdownFactors {
    /// CPU-path slowdown (service-time inflation).
    pub cpu: f64,
    /// Network-path slowdown (the guest's packets traverse the bridge
    /// and the tracer).
    pub network: f64,
}

impl SlowdownFactors {
    /// The paper's conservative engineering estimate (footnote 2: "we
    /// set the slow-down factor to be 1.5"), used by the SODA Master for
    /// resource inflation during admission.
    pub const CONSERVATIVE: SlowdownFactors = SlowdownFactors {
        cpu: 1.5,
        network: 1.5,
    };

    /// No slowdown — a service running directly on the host OS.
    pub const NONE: SlowdownFactors = SlowdownFactors {
        cpu: 1.0,
        network: 1.0,
    };

    /// Derive measured factors for a typical request-serving workload
    /// from the interception model: a web-style request does parsing and
    /// content handling in user space plus a handful of syscalls
    /// (accept/read/write/close and a stat-like open).
    pub fn measured_web(model: &InterceptCostModel) -> SlowdownFactors {
        // Per request: ~2.5 M user cycles; syscalls: socket ops, reads,
        // writes, open/close, time.
        let calls = [
            (Syscall::SocketOp, 3u64),
            (Syscall::Read, 4),
            (Syscall::Write, 6),
            (Syscall::Open, 1),
            (Syscall::Close, 2),
            (Syscall::Gettimeofday, 2),
        ];
        let cpu = model.workload_slowdown(2_500_000, &calls);
        // Network path: one extra copy + tracer crossing per packet,
        // amortised — empirically close to the CPU-path factor.
        SlowdownFactors {
            cpu,
            network: 1.0 + (cpu - 1.0) * 0.8,
        }
    }

    /// Inflate a service time by the CPU factor.
    pub fn inflate_cpu(&self, d: SimDuration) -> SimDuration {
        d.mul_f64(self.cpu)
    }

    /// Inflate a transmission time by the network factor.
    pub fn inflate_network(&self, d: SimDuration) -> SimDuration {
        d.mul_f64(self.network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_uml_magnitudes() {
        let m = InterceptCostModel::new();
        // Paper (cycles): dup2 27276, getpid 26648, geteuid 26904,
        // mmap 27864, mmap_munmap 27044, gettimeofday 37004.
        let within = |got: u64, paper: u64| {
            let rel = (got as f64 - paper as f64).abs() / paper as f64;
            assert!(
                rel < 0.15,
                "got {got}, paper {paper} ({:.1}% off)",
                rel * 100.0
            );
        };
        within(m.uml_cycles(Syscall::Dup2), 27_276);
        within(m.uml_cycles(Syscall::Getpid), 26_648);
        within(m.uml_cycles(Syscall::Geteuid), 26_904);
        within(m.uml_cycles(Syscall::Mmap), 27_864);
        within(m.uml_cycles(Syscall::MmapMunmap), 27_044);
        within(m.uml_cycles(Syscall::Gettimeofday), 37_004);
    }

    #[test]
    fn penalty_factor_in_paper_band() {
        // Paper penalties run ~20×–27× for the Table 4 calls.
        let m = InterceptCostModel::new();
        for call in Syscall::TABLE4 {
            let p = m.penalty(call);
            assert!((15.0..35.0).contains(&p), "{call:?} penalty {p}");
        }
    }

    #[test]
    fn gettimeofday_is_worst_in_uml() {
        let m = InterceptCostModel::new();
        let g = m.uml_cycles(Syscall::Gettimeofday);
        for call in Syscall::TABLE4 {
            assert!(m.uml_cycles(call) <= g, "{call:?}");
        }
    }

    #[test]
    fn uml_time_scales_with_clock() {
        let m = InterceptCostModel::new();
        let fast = m.uml_time(Syscall::Getpid, &CpuSpec::seattle());
        let slow = m.uml_time(Syscall::Getpid, &CpuSpec::tacoma());
        assert!(slow > fast);
        // ~26 k cycles at 2.6 GHz ≈ 10 µs.
        assert!((8..14).contains(&fast.as_micros()), "{fast}");
    }

    #[test]
    fn workload_slowdown_is_modest() {
        // Figure 6: app-level slowdown ≪ the syscall-level 20×.
        let m = InterceptCostModel::new();
        let f = SlowdownFactors::measured_web(&m);
        assert!(f.cpu > 1.05, "must show some slowdown: {}", f.cpu);
        assert!(f.cpu < 1.6, "must be far below 20×: {}", f.cpu);
        assert!(f.network >= 1.0 && f.network <= f.cpu);
    }

    #[test]
    fn workload_slowdown_edge_cases() {
        let m = InterceptCostModel::new();
        // Pure user-space work: no slowdown.
        assert_eq!(m.workload_slowdown(1_000_000, &[]), 1.0);
        // Empty workload: defined as 1.0.
        assert_eq!(m.workload_slowdown(0, &[]), 1.0);
        // Pure syscall workload: approaches the per-call penalty.
        let f = m.workload_slowdown(0, &[(Syscall::Getpid, 100)]);
        assert!((f - m.penalty(Syscall::Getpid)).abs() < 1e-9);
    }

    #[test]
    fn conservative_constant_matches_footnote2() {
        assert_eq!(SlowdownFactors::CONSERVATIVE.cpu, 1.5);
        assert_eq!(SlowdownFactors::CONSERVATIVE.network, 1.5);
        assert_eq!(SlowdownFactors::NONE.cpu, 1.0);
    }

    #[test]
    fn inflation_applies_factor() {
        let f = SlowdownFactors {
            cpu: 1.5,
            network: 1.2,
        };
        assert_eq!(
            f.inflate_cpu(SimDuration::from_millis(100)).as_millis(),
            150
        );
        assert_eq!(
            f.inflate_network(SimDuration::from_millis(100)).as_millis(),
            120
        );
        let none = SlowdownFactors::NONE;
        assert_eq!(
            none.inflate_cpu(SimDuration::from_millis(100)).as_millis(),
            100
        );
    }

    #[test]
    fn skas_mode_roughly_halves_the_penalty() {
        let tt = InterceptCostModel::for_mode(UmlMode::Tt);
        let skas = InterceptCostModel::for_mode(UmlMode::Skas);
        for call in Syscall::TABLE4 {
            let pt = tt.penalty(call);
            let ps = skas.penalty(call);
            // gettimeofday keeps its time-virtualisation cost, so the
            // reduction is bounded by ~0.7 there and ~0.56 elsewhere.
            assert!(ps < pt * 0.7, "{call:?}: skas {ps} vs tt {pt}");
            assert!(ps > 5.0, "{call:?}: skas still pays interception: {ps}");
        }
        // And the app-level slowdown shrinks accordingly.
        let ft = SlowdownFactors::measured_web(&tt).cpu;
        let fs = SlowdownFactors::measured_web(&skas).cpu;
        assert!(fs < ft);
        assert!(fs > 1.0);
    }

    #[test]
    fn measured_slowdown_flat_across_work_scale() {
        // Scaling the per-request dataset (more user cycles AND more
        // write syscalls proportionally) keeps the factor roughly
        // constant — Figure 6's "remains approximately the same under
        // different dataset sizes".
        let m = InterceptCostModel::new();
        let small = m.workload_slowdown(2_000_000, &[(Syscall::Write, 5), (Syscall::Read, 3)]);
        let large = m.workload_slowdown(20_000_000, &[(Syscall::Write, 50), (Syscall::Read, 30)]);
        assert!(
            (small - large).abs() < 0.05,
            "small {small} vs large {large}"
        );
    }
}
