//! # soda-vmm
//!
//! Virtual-machine layer for the SODA reproduction — the model of
//! User-Mode Linux (UML) that the paper uses as guest OS, plus the
//! bootstrapping machinery the SODA Daemon drives.
//!
//! §4.2: "a UML runs directly in the unmodified user space of the host
//! OS… A special thread is created to intercept the system calls made by
//! all process threads of the UML, and redirect them into the host OS
//! kernel." That interception is the source of the slow-down measured in
//! Table 4; the bootstrap pipeline (root-filesystem customisation,
//! RAM-disk mounting, service startup) is the source of the boot times in
//! Table 2.
//!
//! * [`sysservices`] — catalog of Linux system services with dependencies
//!   and startup costs.
//! * [`rootfs`] — the four root-filesystem images of Table 2 and the SODA
//!   Daemon's tailoring (dependency-closure customisation).
//! * [`bootstrap`] — the priming pipeline and its timing model.
//! * [`intercept`] — UML syscall interception cost model (Table 4's
//!   "in UML" column) and derived application-level slowdown factors.
//! * [`guest`] — the guest OS instance (kernel banner, runtime service
//!   list, per-uid process view).
//! * [`vsn`] — the virtual service node state machine.
//! * [`isolation`] — fault/attack blast-radius model: guest-level
//!   crashes stay in the guest; host-level crashes take down every
//!   co-hosted service (the counterfactual SODA avoids).

pub mod bootstrap;
pub mod guest;
pub mod intercept;
pub mod isolation;
pub mod rootfs;
pub mod sysservices;
pub mod vdev;
pub mod vsn;

pub use bootstrap::{BootstrapHostProfile, BootstrapModel, BootstrapTiming};
pub use guest::GuestOs;
pub use intercept::{InterceptCostModel, SlowdownFactors, UmlMode};
pub use isolation::{Blast, ExecutionMode, FaultKind};
pub use rootfs::{RootFsCatalog, RootFsImage, TailoredFs};
pub use sysservices::{ServiceCatalog, SystemServiceId};
pub use vdev::{NetDevModel, UbdModel};
pub use vsn::{VirtualServiceNode, VsnError, VsnId, VsnState};
