//! Catalog of Linux system services.
//!
//! Table 2's point is that bootstrap time "is not solely dependent on the
//! service image size, it is more dependent on the number and type of
//! Linux services needed." The SODA Daemon "tailors the root file system
//! of the UML by retaining only the Linux system services (in the /etc/
//! directory) required by the application service; it also checks their
//! dependencies to ensure that only the necessary libraries are
//! included." (§4.3)
//!
//! This module is that dependency database: each system service has a
//! startup cost (cycles of CPU work plus bytes loaded from disk), a disk
//! footprint, and dependencies on other services.

use std::collections::BTreeSet;

/// Identifier of a system service in the catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemServiceId(pub u16);

/// Weight class of a service's startup work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartupClass {
    /// Trivial init scripts (keytable, random seed).
    Trivial,
    /// Typical daemons (syslogd, crond).
    Light,
    /// Heavy daemons that fork, probe hardware, or do crypto on start
    /// (sshd key generation, sendmail, database).
    Heavy,
}

impl StartupClass {
    /// CPU cycles of startup work (reference: the classes roughly map to
    /// 0.08 s / 0.3 s / 1.5 s on the 2.6 GHz testbed host — calibrated so
    /// the full RH 7.2 server's ~30 services reproduce Table 2's S_IV).
    pub fn startup_cycles(self) -> u64 {
        match self {
            StartupClass::Trivial => 208_000_000,
            StartupClass::Light => 780_000_000,
            StartupClass::Heavy => 3_900_000_000,
        }
    }

    /// Bytes read from disk while starting (binaries, libraries, config).
    pub fn startup_disk_bytes(self) -> u64 {
        match self {
            StartupClass::Trivial => 300_000,
            StartupClass::Light => 2_000_000,
            StartupClass::Heavy => 6_000_000,
        }
    }
}

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct SystemService {
    /// Catalog id.
    pub id: SystemServiceId,
    /// Init-script name, e.g. `"syslogd"`.
    pub name: &'static str,
    /// Startup weight class.
    pub class: StartupClass,
    /// Installed footprint on disk (binaries + libraries), bytes.
    pub footprint_bytes: u64,
    /// Services that must be present (and started first).
    pub deps: &'static [&'static str],
}

/// The service catalog — a fixed database resembling a Red Hat 7.2-era
/// `/etc/init.d`.
#[derive(Clone, Debug)]
pub struct ServiceCatalog {
    services: Vec<SystemService>,
}

macro_rules! svc {
    ($id:expr, $name:expr, $class:ident, $fp:expr, [$($dep:expr),*]) => {
        SystemService {
            id: SystemServiceId($id),
            name: $name,
            class: StartupClass::$class,
            footprint_bytes: $fp,
            deps: &[$($dep),*],
        }
    };
}

impl Default for ServiceCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

impl ServiceCatalog {
    /// The standard catalog (31 services, enough to express all four
    /// Table 2 images).
    pub fn standard() -> Self {
        let services = vec![
            svc!(0, "init", Trivial, 600_000, []),
            svc!(1, "keytable", Trivial, 120_000, ["init"]),
            svc!(2, "random", Trivial, 60_000, ["init"]),
            svc!(3, "syslogd", Light, 900_000, ["init"]),
            svc!(4, "klogd", Light, 500_000, ["syslogd"]),
            svc!(5, "network", Light, 1_200_000, ["init"]),
            svc!(6, "netfs", Light, 700_000, ["network"]),
            svc!(7, "portmap", Light, 650_000, ["network"]),
            svc!(8, "inetd", Light, 800_000, ["network", "syslogd"]),
            svc!(9, "xinetd", Light, 1_000_000, ["network", "syslogd"]),
            svc!(
                10,
                "sshd",
                Heavy,
                2_800_000,
                ["network", "random", "syslogd"]
            ),
            svc!(11, "crond", Light, 700_000, ["syslogd"]),
            svc!(12, "atd", Light, 400_000, ["syslogd"]),
            svc!(13, "sendmail", Heavy, 3_600_000, ["network", "syslogd"]),
            svc!(14, "httpd", Heavy, 4_200_000, ["network", "syslogd"]),
            svc!(15, "ghttpd", Light, 300_000, ["network"]),
            svc!(16, "nfs", Heavy, 2_200_000, ["portmap", "netfs"]),
            svc!(17, "nfslock", Light, 500_000, ["portmap"]),
            svc!(18, "ypbind", Light, 800_000, ["portmap"]),
            svc!(19, "autofs", Light, 900_000, ["netfs"]),
            svc!(20, "apmd", Trivial, 300_000, ["init"]),
            svc!(21, "gpm", Trivial, 350_000, ["init"]),
            svc!(22, "kudzu", Heavy, 1_800_000, ["init"]),
            svc!(23, "lpd", Light, 1_100_000, ["network", "syslogd"]),
            svc!(24, "identd", Light, 450_000, ["network"]),
            svc!(25, "rstatd", Light, 400_000, ["portmap"]),
            svc!(26, "rusersd", Light, 400_000, ["portmap"]),
            svc!(27, "rwhod", Light, 350_000, ["network"]),
            svc!(28, "snmpd", Light, 1_300_000, ["network", "syslogd"]),
            svc!(29, "mysqld", Heavy, 9_000_000, ["network", "syslogd"]),
            svc!(30, "anacron", Trivial, 200_000, ["crond"]),
        ];
        ServiceCatalog { services }
    }

    /// Number of services in the catalog.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True iff the catalog is empty (never, for the standard catalog).
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Look up by name.
    pub fn by_name(&self, name: &str) -> Option<&SystemService> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Look up by id.
    pub fn get(&self, id: SystemServiceId) -> Option<&SystemService> {
        self.services.iter().find(|s| s.id == id)
    }

    /// All service names.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.services.iter().map(|s| s.name)
    }

    /// The dependency closure of `required` (names), as a sorted set of
    /// ids — the tailoring step's core. Unknown names are ignored (the
    /// SODA Daemon skips init scripts it does not recognise).
    pub fn closure(&self, required: &[&str]) -> BTreeSet<SystemServiceId> {
        let mut out: BTreeSet<SystemServiceId> = BTreeSet::new();
        let mut stack: Vec<&str> = required.to_vec();
        while let Some(name) = stack.pop() {
            let Some(svc) = self.by_name(name) else {
                continue;
            };
            if out.insert(svc.id) {
                stack.extend(svc.deps.iter().copied());
            }
        }
        out
    }

    /// Total startup cycles for a set of services.
    pub fn startup_cycles(&self, set: &BTreeSet<SystemServiceId>) -> u64 {
        set.iter()
            .filter_map(|id| self.get(*id))
            .map(|s| s.class.startup_cycles())
            .sum()
    }

    /// Total startup disk bytes for a set of services.
    pub fn startup_disk_bytes(&self, set: &BTreeSet<SystemServiceId>) -> u64 {
        set.iter()
            .filter_map(|id| self.get(*id))
            .map(|s| s.class.startup_disk_bytes())
            .sum()
    }

    /// Total installed footprint for a set of services.
    pub fn footprint_bytes(&self, set: &BTreeSet<SystemServiceId>) -> u64 {
        set.iter()
            .filter_map(|id| self.get(*id))
            .map(|s| s.footprint_bytes)
            .sum()
    }

    /// Ids for a list of names (unknown names skipped), without closure.
    pub fn ids_of(&self, names: &[&str]) -> BTreeSet<SystemServiceId> {
        names
            .iter()
            .filter_map(|n| self.by_name(n))
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_formed() {
        let c = ServiceCatalog::standard();
        assert_eq!(c.len(), 31);
        assert!(!c.is_empty());
        // Every dependency resolves to a catalog entry.
        for s in &c.services {
            for dep in s.deps {
                assert!(
                    c.by_name(dep).is_some(),
                    "{} depends on unknown {dep}",
                    s.name
                );
            }
        }
        // Ids are unique.
        let mut ids: Vec<u16> = c.services.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.len());
    }

    #[test]
    fn closure_pulls_dependencies() {
        let c = ServiceCatalog::standard();
        let set = c.closure(&["httpd"]);
        let names: Vec<&str> = set.iter().map(|id| c.get(*id).unwrap().name).collect();
        assert!(names.contains(&"httpd"));
        assert!(names.contains(&"network"));
        assert!(names.contains(&"syslogd"));
        assert!(names.contains(&"init"));
        // And nothing unrelated.
        assert!(!names.contains(&"sendmail"));
        assert!(!names.contains(&"mysqld"));
    }

    #[test]
    fn closure_is_idempotent_and_monotone() {
        let c = ServiceCatalog::standard();
        let a = c.closure(&["sshd"]);
        let b = c.closure(&["sshd", "sshd"]);
        assert_eq!(a, b);
        let bigger = c.closure(&["sshd", "httpd"]);
        assert!(bigger.is_superset(&a));
    }

    #[test]
    fn closure_ignores_unknown_names() {
        let c = ServiceCatalog::standard();
        let set = c.closure(&["no-such-daemon", "ghttpd"]);
        assert!(set.contains(&c.by_name("ghttpd").unwrap().id));
        assert!(set.contains(&c.by_name("network").unwrap().id));
    }

    #[test]
    fn transitive_deps_included() {
        let c = ServiceCatalog::standard();
        // nfs → portmap → network → init.
        let set = c.closure(&["nfs"]);
        for name in ["nfs", "portmap", "network", "netfs", "init"] {
            assert!(set.contains(&c.by_name(name).unwrap().id), "{name} missing");
        }
    }

    #[test]
    fn startup_costs_accumulate() {
        let c = ServiceCatalog::standard();
        let small = c.closure(&["ghttpd"]);
        let big = c.closure(&["httpd", "sshd", "sendmail", "mysqld", "nfs"]);
        assert!(c.startup_cycles(&big) > c.startup_cycles(&small));
        assert!(c.startup_disk_bytes(&big) > c.startup_disk_bytes(&small));
        assert!(c.footprint_bytes(&big) > c.footprint_bytes(&small));
        assert_eq!(c.startup_cycles(&BTreeSet::new()), 0);
    }

    #[test]
    fn heavy_services_dominate() {
        // Table 2's lesson: the number and type of services, not image
        // size, drives startup cost. One heavy daemon outweighs several
        // trivial ones.
        let heavy = StartupClass::Heavy.startup_cycles();
        let trivial = StartupClass::Trivial.startup_cycles();
        assert!(heavy > 10 * trivial);
    }

    #[test]
    fn ids_of_skips_unknown() {
        let c = ServiceCatalog::standard();
        let ids = c.ids_of(&["httpd", "bogus"]);
        assert_eq!(ids.len(), 1);
    }
}
