//! The bootstrap timing model — Table 2.
//!
//! Priming a virtual service node, after the image download, runs five
//! stages (§4.3):
//!
//! 1. **Customise** — the SODA Daemon scans the image's init scripts and
//!    prunes to the dependency closure of the app's requirements
//!    (skipped for pristine images).
//! 2. **Mount** — the customised filesystem is copied into a RAM disk
//!    when it fits, otherwise loopback-mounted from disk (reading
//!    superblock/metadata); on a memory-starved host a large image also
//!    pays paging reads.
//! 3. **Kernel boot** — the UML guest kernel initialises.
//! 4. **Service start** — each retained system service starts (CPU work
//!    + binary/config reads from disk).
//! 5. **App start** — the application service itself launches.
//!
//! The model reproduces Table 2's shape: boot time tracks the *number and
//! type* of system services more than image size (`S_III` is 400 MB yet
//! boots in seconds; `S_IV` is smaller but boots a full server), and the
//! slower desktop host (*tacoma*) trails the server (*seattle*) with the
//! gap widening for disk- and memory-bound images.

use soda_hostos::cpu::CpuSpec;
use soda_hostos::disk::DiskModel;
use soda_sim::SimDuration;

use crate::rootfs::{RootFsCatalog, RootFsImage, TailoredFs};
use crate::sysservices::StartupClass;

/// Static host characteristics the bootstrap model needs.
#[derive(Clone, Debug)]
pub struct BootstrapHostProfile {
    /// CPU spec (clock rate).
    pub cpu: CpuSpec,
    /// Micro-architectural efficiency relative to the reference Xeon
    /// (instructions per cycle factor; the NetBurst P4 trails its clock).
    pub cpu_efficiency: f64,
    /// Host disk.
    pub disk: DiskModel,
    /// Host RAM in MB.
    pub mem_mb: u32,
}

impl BootstrapHostProfile {
    /// *seattle*: 2.6 GHz Xeon, 2 GB RAM, server SCSI disk.
    pub fn seattle() -> Self {
        BootstrapHostProfile {
            cpu: CpuSpec::seattle(),
            cpu_efficiency: 1.0,
            disk: DiskModel::seattle(),
            mem_mb: 2048,
        }
    }

    /// *tacoma*: 1.8 GHz Pentium 4, 768 MB RAM, desktop IDE disk.
    pub fn tacoma() -> Self {
        BootstrapHostProfile {
            cpu: CpuSpec::tacoma(),
            cpu_efficiency: 0.80,
            disk: DiskModel::tacoma(),
            mem_mb: 768,
        }
    }

    /// Wall time for `cycles` of work on this host, accounting for IPC.
    pub fn cpu_time(&self, cycles: u64) -> SimDuration {
        self.cpu
            .cycles_to_time(cycles)
            .mul_f64(1.0 / self.cpu_efficiency.max(0.01))
    }

    /// Wall time to read `bytes` sequentially from this host's disk
    /// (no queueing — bootstrap owns the disk).
    pub fn disk_time(&self, bytes: u64) -> SimDuration {
        self.disk.transfer_time(bytes)
    }
}

/// Per-stage breakdown of one bootstrap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BootstrapTiming {
    /// Stage 1: customisation scan.
    pub customize: SimDuration,
    /// Stage 2: RAM-disk copy or loopback mount (+ paging penalty).
    pub mount: SimDuration,
    /// Stage 3: guest kernel boot.
    pub kernel_boot: SimDuration,
    /// Stage 4: system services start.
    pub services_start: SimDuration,
    /// Stage 5: application start.
    pub app_start: SimDuration,
}

impl BootstrapTiming {
    /// Total bootstrap time.
    pub fn total(&self) -> SimDuration {
        self.customize + self.mount + self.kernel_boot + self.services_start + self.app_start
    }

    /// The five Table 2 stages in execution order, named for the
    /// observability layer (boot-phase events and `daemon.<phase>`
    /// span histograms).
    pub fn phases(&self) -> [(&'static str, SimDuration); 5] {
        [
            ("customize", self.customize),
            ("mount", self.mount),
            ("kernel_boot", self.kernel_boot),
            ("services_start", self.services_start),
            ("app_start", self.app_start),
        ]
    }
}

/// The calibrated timing model.
#[derive(Clone, Debug)]
pub struct BootstrapModel {
    catalog: RootFsCatalog,
    /// Cycles to scan one installed init script during customisation.
    pub customize_cycles_per_service: u64,
    /// Guest kernel boot cycles.
    pub kernel_boot_cycles: u64,
    /// Cycles to launch the application service itself.
    pub app_start_cycles: u64,
    /// Loopback mount reads this base amount of metadata...
    pub mount_meta_base_bytes: u64,
    /// ...plus this fraction of the image.
    pub mount_meta_fraction: f64,
    /// When the mounted image exceeds half the host RAM, this fraction of
    /// it is re-read from disk as paging traffic during boot.
    pub paging_fraction: f64,
}

impl Default for BootstrapModel {
    fn default() -> Self {
        BootstrapModel {
            catalog: RootFsCatalog::new(),
            customize_cycles_per_service: 65_000_000, // ~25 ms each on the Xeon
            kernel_boot_cycles: 1_820_000_000,        // ~0.7 s on the Xeon
            app_start_cycles: 520_000_000,            // ~0.2 s on the Xeon
            mount_meta_base_bytes: 16_000_000,
            mount_meta_fraction: 0.05,
            paging_fraction: 0.30,
        }
    }
}

impl BootstrapModel {
    /// The default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rootfs catalog in use.
    pub fn catalog(&self) -> &RootFsCatalog {
        &self.catalog
    }

    /// Tailor + time one bootstrap. `required` is the list of system
    /// services the application needs; `app_class` is the startup weight
    /// of the application itself.
    pub fn timing(
        &self,
        profile: &BootstrapHostProfile,
        image: &RootFsImage,
        required: &[&str],
        app_class: StartupClass,
    ) -> (TailoredFs, BootstrapTiming) {
        let tailored = self.catalog.tailor(image, required);
        let t = self.timing_of(profile, image, &tailored, app_class);
        (tailored, t)
    }

    /// Time a bootstrap for an already tailored filesystem.
    pub fn timing_of(
        &self,
        profile: &BootstrapHostProfile,
        image: &RootFsImage,
        tailored: &TailoredFs,
        app_class: StartupClass,
    ) -> BootstrapTiming {
        let services = self.catalog.services();

        // Stage 1: customisation scans every *installed* init script
        // (it must look at each to decide). Pristine images skip it.
        let customize = if tailored.pristine {
            SimDuration::ZERO
        } else {
            profile.cpu_time(self.customize_cycles_per_service * image.installed_count() as u64)
        };

        // Stage 2: mount.
        let mut mount = if tailored.ramdisk_eligible(profile.mem_mb) {
            // Copy the tailored fs from disk into the RAM disk.
            profile.disk_time(tailored.size_bytes)
        } else {
            // Loopback mount: superblock + metadata reads.
            let meta = self.mount_meta_base_bytes
                + (tailored.size_bytes as f64 * self.mount_meta_fraction) as u64;
            profile.disk_time(meta)
        };
        // Memory pressure: a mounted image larger than half the RAM
        // causes paging during boot.
        let mem_budget_bytes = u64::from(profile.mem_mb) * 1_000_000 / 2;
        if tailored.size_bytes > mem_budget_bytes {
            let paged = (tailored.size_bytes as f64 * self.paging_fraction) as u64;
            mount += profile.disk_time(paged);
        }

        // Stage 3: kernel.
        let kernel_boot = profile.cpu_time(self.kernel_boot_cycles);

        // Stage 4: start each retained service — CPU work plus loading
        // its binaries from disk (one positioning op per service).
        let cpu_cycles = services.startup_cycles(&tailored.kept);
        let disk_bytes = services.startup_disk_bytes(&tailored.kept);
        let seeks = tailored.kept.len() as u64;
        let services_start = profile.cpu_time(cpu_cycles)
            + SimDuration::from_secs_f64(disk_bytes as f64 / profile.disk.seq_bandwidth_bytes)
            + profile.disk.seek_overhead * seeks;

        // Stage 5: the application itself.
        let app_start = profile.cpu_time(self.app_start_cycles + app_class.startup_cycles())
            + profile.disk_time(app_class.startup_disk_bytes());

        BootstrapTiming {
            customize,
            mount,
            kernel_boot,
            services_start,
            app_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2's four (image, app-requirement) rows.
    fn rows(model: &BootstrapModel) -> Vec<(&'static str, RootFsImage, Vec<&'static str>)> {
        // The application's own daemon (e.g. httpd_19_5 for the web
        // content service) is the *app*, not a system service: the
        // required lists are the guest plumbing each app needs.
        let c = model.catalog();
        vec![
            ("S_I", c.base_1_0(), vec!["network", "syslogd"]),
            ("S_II", c.tomsrtbt(), vec!["network"]),
            ("S_III", c.lfs_4_0(), vec!["network", "syslogd", "sshd"]),
            ("S_IV", c.rh72_server_pristine(), vec!["httpd"]),
        ]
    }

    fn boot_secs(profile: &BootstrapHostProfile, which: usize) -> f64 {
        let m = BootstrapModel::new();
        let (_, img, req) = rows(&m).swap_remove(which);
        let (_, t) = m.timing(profile, &img, &req, StartupClass::Light);
        t.total().as_secs_f64()
    }

    #[test]
    fn seattle_magnitudes_match_table2_band() {
        let p = BootstrapHostProfile::seattle();
        let s1 = boot_secs(&p, 0);
        let s2 = boot_secs(&p, 1);
        let s3 = boot_secs(&p, 2);
        let s4 = boot_secs(&p, 3);
        // Paper: 3.0 / 2.0 / 4.0 / 22.0 seconds.
        assert!((1.5..5.0).contains(&s1), "S_I seattle {s1}");
        assert!((1.0..3.5).contains(&s2), "S_II seattle {s2}");
        assert!((2.0..7.0).contains(&s3), "S_III seattle {s3}");
        assert!((15.0..30.0).contains(&s4), "S_IV seattle {s4}");
    }

    #[test]
    fn tacoma_magnitudes_match_table2_band() {
        let p = BootstrapHostProfile::tacoma();
        let s1 = boot_secs(&p, 0);
        let s2 = boot_secs(&p, 1);
        let s3 = boot_secs(&p, 2);
        let s4 = boot_secs(&p, 3);
        // Paper: 4.0 / 3.0 / 16.0 / 42.0 seconds.
        assert!((2.5..7.0).contains(&s1), "S_I tacoma {s1}");
        assert!((1.5..5.0).contains(&s2), "S_II tacoma {s2}");
        assert!((9.0..22.0).contains(&s3), "S_III tacoma {s3}");
        assert!((30.0..55.0).contains(&s4), "S_IV tacoma {s4}");
    }

    #[test]
    fn ordering_within_each_host() {
        // S_II < S_I < S_III << S_IV on both hosts.
        for p in [
            BootstrapHostProfile::seattle(),
            BootstrapHostProfile::tacoma(),
        ] {
            let s1 = boot_secs(&p, 0);
            let s2 = boot_secs(&p, 1);
            let s3 = boot_secs(&p, 2);
            let s4 = boot_secs(&p, 3);
            assert!(s2 < s1, "{}: S_II {s2} !< S_I {s1}", p.cpu.model);
            assert!(s1 < s3, "{}: S_I {s1} !< S_III {s3}", p.cpu.model);
            // Paper ratios S_IV/S_III: 5.5× on seattle, 2.6× on tacoma.
            assert!(s4 > 2.0 * s3, "{}: S_IV {s4} not ≫ S_III {s3}", p.cpu.model);
        }
    }

    #[test]
    fn tacoma_slower_than_seattle_everywhere() {
        for i in 0..4 {
            let s = boot_secs(&BootstrapHostProfile::seattle(), i);
            let t = boot_secs(&BootstrapHostProfile::tacoma(), i);
            assert!(t > s, "row {i}: tacoma {t} !> seattle {s}");
        }
    }

    #[test]
    fn boot_time_tracks_services_not_size() {
        // The 400 MB S_III must boot far faster than the 253 MB S_IV —
        // Table 2's headline observation.
        let p = BootstrapHostProfile::seattle();
        let s3 = boot_secs(&p, 2);
        let s4 = boot_secs(&p, 3);
        assert!(s4 > 3.0 * s3, "S_IV {s4} vs S_III {s3}");
    }

    #[test]
    fn memory_pressure_penalises_tacoma_on_lfs() {
        // S_III's seattle/tacoma gap must exceed the plain CPU ratio —
        // it is paging, not clock rate (4 s vs 16 s in the paper).
        let s = boot_secs(&BootstrapHostProfile::seattle(), 2);
        let t = boot_secs(&BootstrapHostProfile::tacoma(), 2);
        let cpu_ratio = 2600.0 / 1800.0 / 0.80;
        assert!(
            t / s > cpu_ratio * 1.3,
            "ratio {} not ≫ cpu ratio {cpu_ratio}",
            t / s
        );
    }

    #[test]
    fn stage_breakdown_sums_to_total() {
        let m = BootstrapModel::new();
        let p = BootstrapHostProfile::seattle();
        let img = m.catalog().base_1_0();
        let (_, t) = m.timing(&p, &img, &["httpd"], StartupClass::Light);
        let sum = t.customize + t.mount + t.kernel_boot + t.services_start + t.app_start;
        assert_eq!(sum, t.total());
        assert!(!t.kernel_boot.is_zero());
        assert!(!t.services_start.is_zero());
    }

    #[test]
    fn pristine_skips_customisation() {
        let m = BootstrapModel::new();
        let p = BootstrapHostProfile::seattle();
        let img = m.catalog().rh72_server_pristine();
        let (tailored, t) = m.timing(&p, &img, &["httpd"], StartupClass::Light);
        assert!(tailored.pristine);
        assert!(t.customize.is_zero());
    }

    #[test]
    fn heavier_app_class_boots_slower() {
        let m = BootstrapModel::new();
        let p = BootstrapHostProfile::seattle();
        let img = m.catalog().base_1_0();
        let (_, light) = m.timing(&p, &img, &["httpd"], StartupClass::Light);
        let (_, heavy) = m.timing(&p, &img, &["httpd"], StartupClass::Heavy);
        assert!(heavy.total() > light.total());
        assert_eq!(heavy.kernel_boot, light.kernel_boot);
    }

    #[test]
    fn more_required_services_boot_slower() {
        let m = BootstrapModel::new();
        let p = BootstrapHostProfile::seattle();
        let img = m.catalog().base_1_0();
        let (_, a) = m.timing(&p, &img, &["inetd"], StartupClass::Light);
        let (_, b) = m.timing(
            &p,
            &img,
            &["inetd", "httpd", "sshd", "crond"],
            StartupClass::Light,
        );
        assert!(b.services_start > a.services_start);
    }
}
