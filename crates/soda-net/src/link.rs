//! Flow-level link models.
//!
//! [`ProcessorSharingLink`] models the shared 100 Mbps LAN: every active
//! transfer receives an equal share of the link bandwidth, recomputed
//! whenever a flow starts or finishes (the standard fluid approximation
//! of TCP fair sharing on a LAN). [`LinkSpec`] also serves as a simple
//! uncontended calculator — the §4.3 observation that "downloading time
//! grows linearly with the size of the service image" falls straight out
//! of it.

use soda_sim::{SimDuration, SimTime};

/// Static link characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Construct; panics on a non-positive bandwidth.
    pub fn new(bandwidth_bps: f64, latency: SimDuration) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        LinkSpec {
            bandwidth_bps,
            latency,
        }
    }

    /// The testbed's 100 Mbps departmental LAN (~0.2 ms latency).
    pub fn lan_100mbps() -> Self {
        LinkSpec::new(100e6, SimDuration::from_micros(200))
    }

    /// A wide-area link for the federation extension (default 10 Mbps,
    /// 40 ms one-way).
    pub fn wan(bandwidth_mbps: f64, latency: SimDuration) -> Self {
        LinkSpec::new(bandwidth_mbps * 1e6, latency)
    }

    /// Serialisation time for `bytes` at full link rate.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Uncontended one-way transfer time: latency + serialisation.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + self.serialization_time(bytes)
    }
}

/// Identifier of an active flow on a [`ProcessorSharingLink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Clone, Debug)]
struct Flow {
    id: FlowId,
    remaining_bytes: f64,
}

/// A link whose capacity is shared equally among active flows
/// (processor-sharing fluid model).
///
/// ```
/// use soda_net::link::{LinkSpec, ProcessorSharingLink};
/// use soda_sim::{SimDuration, SimTime};
/// // 8 Mbps = 1 MB/s. Two simultaneous 1 MB flows share the link and
/// // both finish at t = 2 s.
/// let mut link = ProcessorSharingLink::new(LinkSpec::new(8e6, SimDuration::ZERO));
/// link.add_flow(1_000_000, SimTime::ZERO);
/// link.add_flow(1_000_000, SimTime::ZERO);
/// link.advance(SimTime::from_secs(10));
/// let done = link.take_completed();
/// assert_eq!(done.len(), 2);
/// assert!(done.iter().all(|&(_, t)| t == SimTime::from_secs(2)));
/// ```
///
/// Driving pattern: the owner calls [`add_flow`](Self::add_flow) when a
/// transfer starts, schedules an engine event at
/// [`next_completion`](Self::next_completion), and in that event calls
/// [`advance`](Self::advance) then drains
/// [`take_completed`](Self::take_completed). Adding a flow changes every
/// flow's rate, so the owner re-schedules after each add; stale wake-ups
/// are harmless (they find nothing completed and re-arm).
#[derive(Clone, Debug)]
pub struct ProcessorSharingLink {
    spec: LinkSpec,
    flows: Vec<Flow>,
    completed: Vec<(FlowId, SimTime)>,
    last_update: SimTime,
    next_id: u64,
}

impl ProcessorSharingLink {
    /// An idle link.
    pub fn new(spec: LinkSpec) -> Self {
        ProcessorSharingLink {
            spec,
            flows: Vec::new(),
            completed: Vec::new(),
            last_update: SimTime::ZERO,
            next_id: 1,
        }
    }

    /// The link's static characteristics.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Bytes/s each active flow currently receives.
    fn per_flow_rate(&self) -> f64 {
        debug_assert!(!self.flows.is_empty());
        self.spec.bandwidth_bps / 8.0 / self.flows.len() as f64
    }

    /// Residual time of the earliest-finishing flow, rounded **up** to a
    /// whole nanosecond (and at least 1 ns). Rounding up is load-bearing:
    /// rounding down would let [`next_completion`](Self::next_completion)
    /// return the current instant while the flow still has a sliver of
    /// bytes left, and an event-driven caller would re-arm at the same
    /// timestamp forever.
    fn first_finish_delta(&self) -> SimDuration {
        let rate = self.per_flow_rate();
        let min_rem = self
            .flows
            .iter()
            .map(|f| f.remaining_bytes)
            .fold(f64::INFINITY, f64::min);
        let ns = (min_rem / rate * 1e9).ceil();
        SimDuration::from_nanos((ns.max(1.0)).min(u64::MAX as f64) as u64)
    }

    /// Advance the fluid state to `now`, moving any flows that finish on
    /// the way into the completed list (with their finish times, rounded
    /// up to the nanosecond grid).
    pub fn advance(&mut self, now: SimTime) {
        while !self.flows.is_empty() && self.last_update < now {
            let rate = self.per_flow_rate();
            let min_rem = self
                .flows
                .iter()
                .map(|f| f.remaining_bytes)
                .fold(f64::INFINITY, f64::min);
            let finish = self.last_update + self.first_finish_delta();
            if finish <= now {
                let dt = finish.saturating_since(self.last_update).as_secs_f64();
                // The ceil guarantees rate·dt ≥ min_rem, so the earliest
                // flow always completes and the loop strictly progresses.
                let drained = (rate * dt).max(min_rem);
                for f in &mut self.flows {
                    f.remaining_bytes -= drained;
                }
                let completed = &mut self.completed;
                self.flows.retain(|f| {
                    if f.remaining_bytes <= 1e-6 {
                        completed.push((f.id, finish));
                        false
                    } else {
                        true
                    }
                });
                self.last_update = finish;
            } else {
                let horizon = now.saturating_since(self.last_update).as_secs_f64();
                let drained = rate * horizon;
                for f in &mut self.flows {
                    f.remaining_bytes = (f.remaining_bytes - drained).max(0.0);
                }
                self.last_update = now;
            }
        }
        if self.last_update < now {
            self.last_update = now;
        }
    }

    /// Start a transfer of `bytes` at `now`. Zero-byte flows complete
    /// immediately.
    pub fn add_flow(&mut self, bytes: u64, now: SimTime) -> FlowId {
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        if bytes == 0 {
            self.completed.push((id, now));
        } else {
            self.flows.push(Flow {
                id,
                remaining_bytes: bytes as f64,
            });
        }
        id
    }

    /// Abort an active flow (e.g. the requester crashed). Returns true if
    /// the flow was active.
    pub fn cancel(&mut self, id: FlowId, now: SimTime) -> bool {
        self.advance(now);
        let before = self.flows.len();
        self.flows.retain(|f| f.id != id);
        self.flows.len() != before
    }

    /// The absolute time the earliest active flow will finish if no new
    /// flows arrive. `None` when idle.
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        Some(self.last_update + self.first_finish_delta())
    }

    /// Drain flows that have finished (exact finish times attached).
    /// The *delivery* time at the receiver is finish + `spec.latency`.
    pub fn take_completed(&mut self) -> Vec<(FlowId, SimTime)> {
        std::mem::take(&mut self.completed)
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mbps(m: f64) -> LinkSpec {
        LinkSpec::new(m * 1e6, SimDuration::ZERO)
    }

    #[test]
    fn uncontended_transfer_is_linear_in_size() {
        let lan = LinkSpec::lan_100mbps();
        // 100 Mbps = 12.5 MB/s: 125 MB takes 10 s + latency.
        let t = lan.transfer_time(125_000_000);
        assert!((t.as_secs_f64() - 10.0002).abs() < 1e-6, "{t}");
        // Linearity: doubling size doubles serialisation exactly.
        let a = lan.serialization_time(10_000_000).as_nanos();
        let b = lan.serialization_time(20_000_000).as_nanos();
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn single_flow_runs_at_full_rate() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let id = l.add_flow(1_000_000, SimTime::ZERO);
        assert_eq!(l.next_completion(), Some(SimTime::from_secs(1)));
        l.advance(SimTime::from_secs(2));
        let done = l.take_completed();
        assert_eq!(done, vec![(id, SimTime::from_secs(1))]);
        assert_eq!(l.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_evenly() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let a = l.add_flow(1_000_000, SimTime::ZERO);
        let b = l.add_flow(1_000_000, SimTime::ZERO);
        // Equal flows at half rate each: both finish at t=2 s.
        l.advance(SimTime::from_secs(3));
        let done = l.take_completed();
        assert_eq!(done.len(), 2);
        for (id, t) in done {
            assert!(id == a || id == b);
            assert_eq!(t, SimTime::from_secs(2));
        }
    }

    #[test]
    fn late_flow_slows_earlier_flow() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let a = l.add_flow(1_000_000, SimTime::ZERO);
        // At t=0.5 s flow a has 0.5 MB left; a second flow arrives.
        let b = l.add_flow(1_000_000, SimTime::from_millis(500));
        // Now each runs at 0.5 MB/s: a needs 1 more second (t=1.5),
        // then b runs alone with 0.5 MB left at 1 MB/s → t=2.0.
        l.advance(SimTime::from_secs(3));
        let done = l.take_completed();
        assert_eq!(done[0], (a, SimTime::from_millis(1_500)));
        assert_eq!(done[1], (b, SimTime::from_secs(2)));
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let mut l = ProcessorSharingLink::new(mbps(1.0));
        let id = l.add_flow(0, SimTime::from_secs(5));
        let done = l.take_completed();
        assert_eq!(done, vec![(id, SimTime::from_secs(5))]);
    }

    #[test]
    fn cancel_removes_flow_and_speeds_up_rest() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let a = l.add_flow(1_000_000, SimTime::ZERO);
        let b = l.add_flow(1_000_000, SimTime::ZERO);
        assert!(l.cancel(a, SimTime::from_millis(500)));
        assert!(!l.cancel(a, SimTime::from_millis(500)));
        // b had 750 kB left at 0.5 s, now alone at 1 MB/s → 1.25 s.
        l.advance(SimTime::from_secs(2));
        let done = l.take_completed();
        assert_eq!(done, vec![(b, SimTime::from_millis(1_250))]);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut l = ProcessorSharingLink::new(mbps(8.0));
        l.add_flow(1_000_000, SimTime::ZERO);
        l.advance(SimTime::from_millis(400));
        l.advance(SimTime::from_millis(400));
        assert_eq!(l.active_flows(), 1);
        assert_eq!(l.next_completion(), Some(SimTime::from_secs(1)));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        LinkSpec::new(0.0, SimDuration::ZERO);
    }

    proptest! {
        /// Conservation: total bytes delivered over any schedule of adds
        /// equals total bytes offered, and finish times are ordered by
        /// the fluid model's invariant (no flow finishes before an
        /// earlier-finishing smaller flow).
        #[test]
        fn prop_all_flows_complete(
            flows in proptest::collection::vec((1u64..5_000_000, 0u64..3_000), 1..20)
        ) {
            let mut l = ProcessorSharingLink::new(mbps(100.0));
            let mut expected = Vec::new();
            for &(bytes, start_ms) in &flows {
                let id = l.add_flow(bytes, SimTime::from_nanos(start_ms * 1_000_000));
                expected.push(id);
            }
            // Run far past any possible completion.
            l.advance(SimTime::from_secs(100_000));
            let mut done = l.take_completed();
            prop_assert_eq!(done.len(), expected.len());
            done.sort_by_key(|&(id, _)| id);
            let mut ids: Vec<FlowId> = done.iter().map(|&(id, _)| id).collect();
            ids.sort();
            let mut exp = expected.clone();
            exp.sort();
            prop_assert_eq!(ids, exp);
            prop_assert_eq!(l.active_flows(), 0);
        }

        /// With simultaneous arrivals, completion order matches size
        /// order (processor sharing preserves it).
        #[test]
        fn prop_completion_order_matches_size(
            sizes in proptest::collection::vec(1u64..10_000_000, 2..10)
        ) {
            let mut l = ProcessorSharingLink::new(mbps(100.0));
            let ids: Vec<FlowId> =
                sizes.iter().map(|&b| l.add_flow(b, SimTime::ZERO)).collect();
            l.advance(SimTime::from_secs(100_000));
            let done = l.take_completed();
            // Map id -> finish time.
            for i in 0..sizes.len() {
                for j in 0..sizes.len() {
                    if sizes[i] < sizes[j] {
                        let ti = done.iter().find(|&&(id, _)| id == ids[i]).unwrap().1;
                        let tj = done.iter().find(|&&(id, _)| id == ids[j]).unwrap().1;
                        prop_assert!(ti <= tj);
                    }
                }
            }
        }
    }
}
