//! Flow-level link models.
//!
//! [`ProcessorSharingLink`] models the shared 100 Mbps LAN: every active
//! transfer receives an equal share of the link bandwidth, recomputed
//! whenever a flow starts or finishes (the standard fluid approximation
//! of TCP fair sharing on a LAN). [`LinkSpec`] also serves as a simple
//! uncontended calculator — the §4.3 observation that "downloading time
//! grows linearly with the size of the service image" falls straight out
//! of it.
//!
//! # Virtual-time accounting
//!
//! The link is defined on an **integer work grid**: one work unit is the
//! work the link performs in one nanosecond per bit-per-second of
//! capacity, so a flow of `b` bytes needs exactly `b · 8 · 10⁹` units
//! and a link of `C` bps delivers `C` units per nanosecond, split evenly
//! over the `n` active flows. Because every active flow drains at the
//! same rate, the link only tracks one cumulative counter `vwork` — the
//! work each active flow has received since the current busy epoch began
//! — and a flow arriving with `w` units of demand simply finishes when
//! `vwork` crosses its *finish threshold* `vwork + w`. Active flows live
//! in an ordered index keyed by `(threshold, flow id)`:
//!
//! * [`add_flow`](ProcessorSharingLink::add_flow) / [`cancel`](ProcessorSharingLink::cancel)
//!   are O(log n) index updates;
//! * [`next_completion`](ProcessorSharingLink::next_completion) is O(1)
//!   off the minimum threshold;
//! * [`advance`](ProcessorSharingLink::advance) pays O(log n) per
//!   *completion*, not per active flow — under fan-in contention (image
//!   download storms, DDoS floods) the old per-flow scan was the last
//!   O(n) hot path in the simulator.
//!
//! All arithmetic is exact integer math (`u128` intermediates), which is
//! what lets `tests` drive this index and the O(n) scan preserved in
//! [`oracle`] over randomized schedules and require bit-identical
//! `(FlowId, SimTime)` completion sequences — the same differential
//! standard the event-queue and placement oracles set.
//!
//! Two grid choices are load-bearing (see DESIGN.md §10):
//!
//! * completion boundaries round **up** to a whole nanosecond (and at
//!   least 1 ns), so an event-driven owner can never be told to wake at
//!   the current instant while bytes remain;
//! * a partial advance between boundaries credits `⌊C·Δt/n⌋` units —
//!   strictly less than the minimum remaining demand — so no flow can
//!   silently hit zero outside a completion boundary.

use std::collections::{BTreeSet, HashMap};

use soda_sim::{SimDuration, SimTime};

/// Work units per byte: bytes × 8 bits × 10⁹ (the per-nanosecond scale).
const WORK_PER_BYTE: u128 = 8 * 1_000_000_000;

/// Static link characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Construct; panics on a non-positive bandwidth.
    pub fn new(bandwidth_bps: f64, latency: SimDuration) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        LinkSpec {
            bandwidth_bps,
            latency,
        }
    }

    /// The testbed's 100 Mbps departmental LAN (~0.2 ms latency).
    pub fn lan_100mbps() -> Self {
        LinkSpec::new(100e6, SimDuration::from_micros(200))
    }

    /// A wide-area link for the federation extension (default 10 Mbps,
    /// 40 ms one-way).
    pub fn wan(bandwidth_mbps: f64, latency: SimDuration) -> Self {
        LinkSpec::new(bandwidth_mbps * 1e6, latency)
    }

    /// The capacity on the integer work grid: whole bits per second,
    /// rounded to nearest (every modelled link is a whole number anyway).
    fn grid_bps(&self) -> u64 {
        (self.bandwidth_bps.round() as u64).max(1)
    }

    /// Serialisation time for `bytes` at full link rate.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Uncontended one-way transfer time: latency + serialisation.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + self.serialization_time(bytes)
    }
}

/// Identifier of an active flow on a [`ProcessorSharingLink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Residual time until `remaining` work units drain with `n` flows
/// sharing `bps`, rounded **up** to a whole nanosecond (and at least
/// 1 ns). Rounding up is load-bearing: rounding down would let
/// `next_completion` return the current instant while the flow still has
/// a sliver of work left, and an event-driven caller would re-arm at the
/// same timestamp forever.
fn finish_delta(remaining: u128, n: u128, bps: u64) -> SimDuration {
    let ns = remaining.saturating_mul(n).div_ceil(u128::from(bps)).max(1);
    SimDuration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
}

/// Work units each of `n` flows receives over `horizon_ns`, rounded
/// down. When the horizon sits strictly inside a completion boundary
/// this is strictly less than the minimum remaining demand, so partial
/// advances can never complete a flow.
fn drained_work(bps: u64, horizon_ns: u64, n: u128) -> u128 {
    (u128::from(bps) * u128::from(horizon_ns)) / n
}

/// A link whose capacity is shared equally among active flows
/// (processor-sharing fluid model), on the virtual-time index described
/// in the module docs.
///
/// ```
/// use soda_net::link::{LinkSpec, ProcessorSharingLink};
/// use soda_sim::{SimDuration, SimTime};
/// // 8 Mbps = 1 MB/s. Two simultaneous 1 MB flows share the link and
/// // both finish at t = 2 s.
/// let mut link = ProcessorSharingLink::new(LinkSpec::new(8e6, SimDuration::ZERO));
/// link.add_flow(1_000_000, SimTime::ZERO);
/// link.add_flow(1_000_000, SimTime::ZERO);
/// link.advance(SimTime::from_secs(10));
/// let done = link.take_completed();
/// assert_eq!(done.len(), 2);
/// assert!(done.iter().all(|&(_, t)| t == SimTime::from_secs(2)));
/// ```
///
/// Driving pattern: the owner calls [`add_flow`](Self::add_flow) when a
/// transfer starts, schedules an engine event at
/// [`next_completion`](Self::next_completion), and in that event calls
/// [`advance`](Self::advance) then drains
/// [`drain_completed_into`](Self::drain_completed_into). Adding a flow
/// changes every flow's rate, so the owner re-arms after each add;
/// `SodaWorld` generation-stamps those wakeups so the superseded ones
/// are dropped on arrival instead of re-walking the link.
#[derive(Clone, Debug)]
pub struct ProcessorSharingLink {
    spec: LinkSpec,
    /// Capacity on the work grid (whole bits per second).
    bps: u64,
    /// Cumulative work each active flow has received since its epoch
    /// began. Reset to zero whenever the link drains idle, so the
    /// counter stays small over arbitrarily long simulations.
    vwork: u128,
    /// Active flows, ordered by `(finish threshold, flow id)`. Ids are
    /// issued in arrival order, so equal thresholds complete FIFO.
    active: BTreeSet<(u128, u64)>,
    /// Flow id → finish threshold, for O(log n) cancellation.
    thresholds: HashMap<u64, u128>,
    completed: Vec<(FlowId, SimTime)>,
    last_update: SimTime,
    next_id: u64,
}

impl ProcessorSharingLink {
    /// An idle link.
    pub fn new(spec: LinkSpec) -> Self {
        ProcessorSharingLink {
            bps: spec.grid_bps(),
            spec,
            vwork: 0,
            active: BTreeSet::new(),
            thresholds: HashMap::new(),
            completed: Vec::new(),
            last_update: SimTime::ZERO,
            next_id: 1,
        }
    }

    /// The link's static characteristics.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Advance the fluid state to `now`, moving any flows that finish on
    /// the way into the completed list (with their finish times on the
    /// nanosecond grid). Cost: O(log n) per completion, O(1) otherwise.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(&(t_min, _)) = self.active.first() {
            if self.last_update >= now {
                break;
            }
            let n = self.active.len() as u128;
            let remaining = t_min - self.vwork;
            let finish = self.last_update + finish_delta(remaining, n, self.bps);
            if finish <= now {
                // The minimum-threshold flows (ties complete together,
                // FIFO by id) drain exactly `remaining` units each; so
                // does everyone else, via the shared counter.
                self.vwork = t_min;
                while let Some(&(t, id)) = self.active.first() {
                    if t != t_min {
                        break;
                    }
                    self.active.pop_first();
                    self.thresholds.remove(&id);
                    self.completed.push((FlowId(id), finish));
                }
                self.last_update = finish;
                if self.active.is_empty() {
                    // Epoch reset: an idle link forgets its history, so
                    // `vwork` stays bounded by one busy period.
                    self.vwork = 0;
                }
            } else {
                let horizon = now.saturating_since(self.last_update).as_nanos();
                self.vwork += drained_work(self.bps, horizon, n);
                self.last_update = now;
            }
        }
        if self.last_update < now {
            self.last_update = now;
        }
    }

    /// Start a transfer of `bytes` at `now`. Zero-byte flows complete
    /// immediately.
    pub fn add_flow(&mut self, bytes: u64, now: SimTime) -> FlowId {
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        if bytes == 0 {
            self.completed.push((id, now));
        } else {
            let threshold = self.vwork + u128::from(bytes) * WORK_PER_BYTE;
            self.active.insert((threshold, id.0));
            self.thresholds.insert(id.0, threshold);
        }
        id
    }

    /// Abort an active flow (e.g. the requester crashed). Returns true if
    /// the flow was active.
    pub fn cancel(&mut self, id: FlowId, now: SimTime) -> bool {
        self.advance(now);
        match self.thresholds.remove(&id.0) {
            Some(threshold) => {
                self.active.remove(&(threshold, id.0));
                if self.active.is_empty() {
                    self.vwork = 0;
                }
                true
            }
            None => false,
        }
    }

    /// The absolute time the earliest active flow will finish if no new
    /// flows arrive. `None` when idle. O(1).
    pub fn next_completion(&self) -> Option<SimTime> {
        let &(t_min, _) = self.active.first()?;
        let n = self.active.len() as u128;
        Some(self.last_update + finish_delta(t_min - self.vwork, n, self.bps))
    }

    /// Drain flows that have finished (exact finish times attached) into
    /// `out`, appending in completion order and leaving the internal
    /// buffer empty but with its capacity intact — the warm path
    /// allocates nothing. The *delivery* time at the receiver is
    /// finish + `spec.latency`.
    pub fn drain_completed_into(&mut self, out: &mut Vec<(FlowId, SimTime)>) {
        out.append(&mut self.completed);
    }

    /// Like [`drain_completed_into`](Self::drain_completed_into), but
    /// allocates a fresh `Vec` per call. Convenient for tests and
    /// one-shot calculators; the event-driven hot path uses the draining
    /// form with a reused buffer.
    pub fn take_completed(&mut self) -> Vec<(FlowId, SimTime)> {
        std::mem::take(&mut self.completed)
    }

    /// True if completed flows are waiting to be drained.
    pub fn has_completed(&self) -> bool {
        !self.completed.is_empty()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// The cumulative per-flow work counter (test hook: epoch resets).
    #[cfg(test)]
    fn virtual_work(&self) -> u128 {
        self.vwork
    }
}

/// The pre-index implementation: per-flow residual work and an O(n) scan
/// per completion boundary (`advance` is O(k·n) for k completions, and
/// every mutation pays a full-scan `advance`). Preserved as the
/// **differential oracle** for [`ProcessorSharingLink`]: it computes on
/// the same integer work grid with the same [`finish_delta`] /
/// [`drained_work`] arithmetic, so the proptests can require bit-exact
/// `(FlowId, SimTime)` agreement rather than chasing f64 ulps — the
/// precedent the event-queue and placement oracles set.
pub mod oracle {
    use super::{drained_work, finish_delta, FlowId, LinkSpec, WORK_PER_BYTE};
    use soda_sim::SimTime;

    #[derive(Clone, Debug)]
    struct Flow {
        id: FlowId,
        remaining: u128,
    }

    /// A processor-sharing link on the naive per-flow representation.
    #[derive(Clone, Debug)]
    pub struct ProcessorSharingLink {
        spec: LinkSpec,
        bps: u64,
        flows: Vec<Flow>,
        completed: Vec<(FlowId, SimTime)>,
        last_update: SimTime,
        next_id: u64,
    }

    impl ProcessorSharingLink {
        /// An idle link.
        pub fn new(spec: LinkSpec) -> Self {
            ProcessorSharingLink {
                bps: spec.grid_bps(),
                spec,
                flows: Vec::new(),
                completed: Vec::new(),
                last_update: SimTime::ZERO,
                next_id: 1,
            }
        }

        /// The link's static characteristics.
        pub fn spec(&self) -> LinkSpec {
            self.spec
        }

        /// Minimum residual work across active flows.
        fn min_remaining(&self) -> u128 {
            self.flows.iter().map(|f| f.remaining).min().unwrap_or(0)
        }

        /// Advance the fluid state to `now`, walking every active flow
        /// per completion boundary.
        pub fn advance(&mut self, now: SimTime) {
            while !self.flows.is_empty() && self.last_update < now {
                let n = self.flows.len() as u128;
                let r_min = self.min_remaining();
                let finish = self.last_update + finish_delta(r_min, n, self.bps);
                if finish <= now {
                    // Every flow drains exactly the minimum residual; the
                    // minimum flows hit zero and complete, FIFO in
                    // arrival (vector) order.
                    let completed = &mut self.completed;
                    self.flows.retain_mut(|f| {
                        f.remaining -= r_min;
                        if f.remaining == 0 {
                            completed.push((f.id, finish));
                            false
                        } else {
                            true
                        }
                    });
                    self.last_update = finish;
                } else {
                    let horizon = now.saturating_since(self.last_update).as_nanos();
                    let drained = drained_work(self.bps, horizon, n);
                    for f in &mut self.flows {
                        f.remaining -= drained;
                    }
                    self.last_update = now;
                }
            }
            if self.last_update < now {
                self.last_update = now;
            }
        }

        /// Start a transfer of `bytes` at `now`.
        pub fn add_flow(&mut self, bytes: u64, now: SimTime) -> FlowId {
            self.advance(now);
            let id = FlowId(self.next_id);
            self.next_id += 1;
            if bytes == 0 {
                self.completed.push((id, now));
            } else {
                self.flows.push(Flow {
                    id,
                    remaining: u128::from(bytes) * WORK_PER_BYTE,
                });
            }
            id
        }

        /// Abort an active flow. Returns true if the flow was active.
        pub fn cancel(&mut self, id: FlowId, now: SimTime) -> bool {
            self.advance(now);
            let before = self.flows.len();
            self.flows.retain(|f| f.id != id);
            self.flows.len() != before
        }

        /// The absolute time the earliest active flow will finish if no
        /// new flows arrive. `None` when idle.
        pub fn next_completion(&self) -> Option<SimTime> {
            if self.flows.is_empty() {
                return None;
            }
            let n = self.flows.len() as u128;
            Some(self.last_update + finish_delta(self.min_remaining(), n, self.bps))
        }

        /// Drain flows that have finished.
        pub fn take_completed(&mut self) -> Vec<(FlowId, SimTime)> {
            std::mem::take(&mut self.completed)
        }

        /// Number of active flows.
        pub fn active_flows(&self) -> usize {
            self.flows.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mbps(m: f64) -> LinkSpec {
        LinkSpec::new(m * 1e6, SimDuration::ZERO)
    }

    #[test]
    fn uncontended_transfer_is_linear_in_size() {
        let lan = LinkSpec::lan_100mbps();
        // 100 Mbps = 12.5 MB/s: 125 MB takes 10 s + latency.
        let t = lan.transfer_time(125_000_000);
        assert!((t.as_secs_f64() - 10.0002).abs() < 1e-6, "{t}");
        // Linearity: doubling size doubles serialisation exactly.
        let a = lan.serialization_time(10_000_000).as_nanos();
        let b = lan.serialization_time(20_000_000).as_nanos();
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn single_flow_runs_at_full_rate() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let id = l.add_flow(1_000_000, SimTime::ZERO);
        assert_eq!(l.next_completion(), Some(SimTime::from_secs(1)));
        l.advance(SimTime::from_secs(2));
        let done = l.take_completed();
        assert_eq!(done, vec![(id, SimTime::from_secs(1))]);
        assert_eq!(l.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_evenly() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let a = l.add_flow(1_000_000, SimTime::ZERO);
        let b = l.add_flow(1_000_000, SimTime::ZERO);
        // Equal flows at half rate each: both finish at t=2 s.
        l.advance(SimTime::from_secs(3));
        let done = l.take_completed();
        assert_eq!(done.len(), 2);
        for (id, t) in done {
            assert!(id == a || id == b);
            assert_eq!(t, SimTime::from_secs(2));
        }
    }

    #[test]
    fn late_flow_slows_earlier_flow() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let a = l.add_flow(1_000_000, SimTime::ZERO);
        // At t=0.5 s flow a has 0.5 MB left; a second flow arrives.
        let b = l.add_flow(1_000_000, SimTime::from_millis(500));
        // Now each runs at 0.5 MB/s: a needs 1 more second (t=1.5),
        // then b runs alone with 0.5 MB left at 1 MB/s → t=2.0.
        l.advance(SimTime::from_secs(3));
        let done = l.take_completed();
        assert_eq!(done[0], (a, SimTime::from_millis(1_500)));
        assert_eq!(done[1], (b, SimTime::from_secs(2)));
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let mut l = ProcessorSharingLink::new(mbps(1.0));
        let id = l.add_flow(0, SimTime::from_secs(5));
        assert!(l.has_completed());
        let done = l.take_completed();
        assert_eq!(done, vec![(id, SimTime::from_secs(5))]);
        assert!(!l.has_completed());
    }

    #[test]
    fn cancel_removes_flow_and_speeds_up_rest() {
        let mut l = ProcessorSharingLink::new(mbps(8.0)); // 1 MB/s
        let a = l.add_flow(1_000_000, SimTime::ZERO);
        let b = l.add_flow(1_000_000, SimTime::ZERO);
        assert!(l.cancel(a, SimTime::from_millis(500)));
        assert!(!l.cancel(a, SimTime::from_millis(500)));
        // b had 750 kB left at 0.5 s, now alone at 1 MB/s → 1.25 s.
        l.advance(SimTime::from_secs(2));
        let done = l.take_completed();
        assert_eq!(done, vec![(b, SimTime::from_millis(1_250))]);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut l = ProcessorSharingLink::new(mbps(8.0));
        l.add_flow(1_000_000, SimTime::ZERO);
        l.advance(SimTime::from_millis(400));
        l.advance(SimTime::from_millis(400));
        assert_eq!(l.active_flows(), 1);
        assert_eq!(l.next_completion(), Some(SimTime::from_secs(1)));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        LinkSpec::new(0.0, SimDuration::ZERO);
    }

    #[test]
    fn cancel_last_flow_then_next_completion_is_none() {
        let mut l = ProcessorSharingLink::new(mbps(8.0));
        let a = l.add_flow(500_000, SimTime::ZERO);
        assert!(l.next_completion().is_some());
        assert!(l.cancel(a, SimTime::from_millis(100)));
        assert_eq!(l.next_completion(), None);
        assert_eq!(l.active_flows(), 0);
        // The link is genuinely idle: a later flow runs at full rate.
        let b = l.add_flow(1_000_000, SimTime::from_secs(1));
        assert_eq!(l.next_completion(), Some(SimTime::from_secs(2)));
        l.advance(SimTime::from_secs(3));
        assert_eq!(l.take_completed(), vec![(b, SimTime::from_secs(2))]);
    }

    #[test]
    fn same_tick_completions_drain_in_fifo_order() {
        let mut l = ProcessorSharingLink::new(mbps(8.0));
        // Three identical flows arrive together: they share one finish
        // threshold and must complete at one boundary, in arrival order.
        let ids: Vec<FlowId> = (0..3).map(|_| l.add_flow(400_000, SimTime::ZERO)).collect();
        l.advance(SimTime::from_secs(10));
        let done = l.take_completed();
        assert_eq!(done.len(), 3);
        let t0 = done[0].1;
        assert!(done.iter().all(|&(_, t)| t == t0), "one shared tick");
        assert_eq!(
            done.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            ids,
            "FIFO within the tick"
        );
    }

    #[test]
    fn add_after_long_idle_resets_epoch() {
        let mut l = ProcessorSharingLink::new(mbps(8.0));
        l.add_flow(1_000_000, SimTime::ZERO);
        l.advance(SimTime::from_secs(5));
        assert_eq!(l.take_completed().len(), 1);
        assert_eq!(l.virtual_work(), 0, "idle link resets its work epoch");
        // Years of idle time later, a new flow starts a fresh epoch and
        // completes exactly one serialization time after its arrival.
        let idle_until = SimTime::from_secs(3_000_000_000); // ~95 years
        l.advance(idle_until);
        let b = l.add_flow(1_000_000, idle_until);
        assert_eq!(
            l.next_completion(),
            Some(idle_until + SimDuration::from_secs(1))
        );
        l.advance(idle_until + SimDuration::from_secs(2));
        assert_eq!(
            l.take_completed(),
            vec![(b, idle_until + SimDuration::from_secs(1))]
        );
        assert_eq!(l.virtual_work(), 0);
    }

    #[test]
    fn cancel_of_already_completed_id_is_false() {
        let mut l = ProcessorSharingLink::new(mbps(8.0));
        let a = l.add_flow(1_000, SimTime::ZERO);
        l.advance(SimTime::from_secs(1));
        assert_eq!(l.take_completed().len(), 1);
        assert!(!l.cancel(a, SimTime::from_secs(1)), "completed, not active");
        // Unknown ids are equally inert.
        assert!(!l.cancel(FlowId(999), SimTime::from_secs(1)));
    }

    #[test]
    fn drain_completed_into_reuses_buffer() {
        let mut l = ProcessorSharingLink::new(mbps(8.0));
        let a = l.add_flow(1_000, SimTime::ZERO);
        l.advance(SimTime::from_secs(1));
        let mut buf = Vec::new();
        l.drain_completed_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].0, a);
        assert!(!l.has_completed());
        buf.clear();
        l.drain_completed_into(&mut buf);
        assert!(buf.is_empty());
    }

    // -----------------------------------------------------------------
    // Differential schedule driver: the indexed link vs the O(n) oracle.
    // -----------------------------------------------------------------

    /// One step of a randomized schedule.
    #[derive(Clone, Debug)]
    enum Op {
        /// Start a flow of this many bytes (0 = instant completion).
        Add(u64),
        /// Cancel the k-th id issued so far (may already be done).
        Cancel(usize),
        /// Advance the clock by this many nanoseconds.
        Advance(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Arms repeated to weight adds over cancels (the shim's
        // `prop_oneof!` picks arms uniformly).
        prop_oneof![
            (0u64..5_000_000).prop_map(Op::Add),
            (0u64..5_000_000).prop_map(Op::Add),
            (0u64..5_000_000).prop_map(Op::Add),
            (0usize..64).prop_map(Op::Cancel),
            // Horizons spanning sub-boundary creeps, mid-transfer jumps,
            // and epoch-resetting idles (≫ any completion time).
            (1u64..1_000).prop_map(Op::Advance),
            (1u64..1_000_000_000).prop_map(Op::Advance),
            (1u64..4_000_000_000_000).prop_map(Op::Advance),
        ]
    }

    /// Replay `ops` against both implementations, checking the observable
    /// state after every step and the full completion sequences at the
    /// end. Returns the indexed link's completion sequence.
    fn run_differential(spec: LinkSpec, ops: &[Op]) -> Vec<(FlowId, SimTime)> {
        let mut indexed = ProcessorSharingLink::new(spec);
        let mut naive = oracle::ProcessorSharingLink::new(spec);
        let mut now = SimTime::ZERO;
        let mut issued = Vec::new();
        let mut done_indexed = Vec::new();
        let mut done_naive = Vec::new();
        for op in ops {
            match *op {
                Op::Add(bytes) => {
                    let a = indexed.add_flow(bytes, now);
                    let b = naive.add_flow(bytes, now);
                    assert_eq!(a, b, "id streams must match");
                    issued.push(a);
                }
                Op::Cancel(k) => {
                    if !issued.is_empty() {
                        let id = issued[k % issued.len()];
                        assert_eq!(indexed.cancel(id, now), naive.cancel(id, now));
                    }
                }
                Op::Advance(dt) => {
                    now = now + SimDuration::from_nanos(dt);
                    indexed.advance(now);
                    naive.advance(now);
                }
            }
            assert_eq!(indexed.active_flows(), naive.active_flows());
            assert_eq!(indexed.next_completion(), naive.next_completion());
            indexed.drain_completed_into(&mut done_indexed);
            done_naive.extend(naive.take_completed());
        }
        // Run far past any possible completion.
        let horizon = now + SimDuration::from_secs(1_000_000);
        indexed.advance(horizon);
        naive.advance(horizon);
        indexed.drain_completed_into(&mut done_indexed);
        done_naive.extend(naive.take_completed());
        assert_eq!(indexed.active_flows(), 0);
        assert_eq!(naive.active_flows(), 0);
        assert_eq!(
            done_indexed, done_naive,
            "completion sequences must be identical on the ns grid"
        );
        done_indexed
    }

    proptest! {
        /// The virtual-time index and the O(n) oracle produce identical
        /// `(FlowId, SimTime)` completion sequences over randomized
        /// add/cancel/advance schedules, including boundary-straddling
        /// advances and epoch-resetting idles.
        #[test]
        fn prop_indexed_matches_oracle(
            ops in proptest::collection::vec(op_strategy(), 1..80)
        ) {
            run_differential(mbps(100.0), &ops);
        }

        /// Same differential on an odd (non-round) bandwidth, where the
        /// per-flow shares are maximally non-exact divisions.
        #[test]
        fn prop_indexed_matches_oracle_odd_bandwidth(
            ops in proptest::collection::vec(op_strategy(), 1..60)
        ) {
            run_differential(LinkSpec::new(9_999_991.0, SimDuration::ZERO), &ops);
        }

        /// Conservation: every flow added over a schedule of staggered
        /// arrivals eventually completes, exactly once.
        #[test]
        fn prop_all_flows_complete(
            flows in proptest::collection::vec(
                // (bytes, arrival gap in ns): gaps accumulate, so
                // arrivals are non-decreasing — `add_flow` advances the
                // clock monotonically, and a "past" arrival would
                // silently clamp to the link's own `last_update`.
                (1u64..5_000_000, 0u64..3_000_000_000),
                1..20,
            )
        ) {
            let mut l = ProcessorSharingLink::new(mbps(100.0));
            let mut expected = Vec::new();
            let mut at = SimTime::ZERO;
            for &(bytes, gap_ns) in &flows {
                at = at + SimDuration::from_nanos(gap_ns);
                expected.push(l.add_flow(bytes, at));
            }
            // Run far past any possible completion.
            l.advance(at + SimDuration::from_secs(100_000));
            let mut done = l.take_completed();
            prop_assert_eq!(done.len(), expected.len());
            done.sort_by_key(|&(id, _)| id);
            let mut ids: Vec<FlowId> = done.iter().map(|&(id, _)| id).collect();
            ids.sort();
            let mut exp = expected.clone();
            exp.sort();
            prop_assert_eq!(ids, exp);
            prop_assert_eq!(l.active_flows(), 0);
        }

        /// With simultaneous arrivals, completion order matches size
        /// order (processor sharing preserves it).
        #[test]
        fn prop_completion_order_matches_size(
            sizes in proptest::collection::vec(1u64..10_000_000, 2..10)
        ) {
            let mut l = ProcessorSharingLink::new(mbps(100.0));
            let ids: Vec<FlowId> =
                sizes.iter().map(|&b| l.add_flow(b, SimTime::ZERO)).collect();
            l.advance(SimTime::from_secs(100_000));
            let done = l.take_completed();
            // Map id -> finish time.
            for i in 0..sizes.len() {
                for j in 0..sizes.len() {
                    if sizes[i] < sizes[j] {
                        let ti = done.iter().find(|&&(id, _)| id == ids[i]).unwrap().1;
                        let tj = done.iter().find(|&&(id, _)| id == ids[j]).unwrap().1;
                        prop_assert!(ti <= tj);
                    }
                }
            }
        }
    }
}
