//! # soda-net
//!
//! Network model for the SODA reproduction.
//!
//! The paper's testbed is a flat 100 Mbps departmental LAN. Each virtual
//! service node gets its own IP address from a per-host pool; a
//! **bridging module** in the host OS forwards frames between VSNs and
//! the wire (§3.3), with **proxying** noted as the fallback when IP
//! addresses are scarce (footnote 3). Service images are downloaded over
//! HTTP/1.1, and download time "grows linearly with the size of the
//! service image" (§4.3).
//!
//! The model is *flow-level*: a transfer is a byte count sharing link
//! bandwidth with the other active transfers (processor sharing), plus a
//! propagation latency. Packet-level detail would add nothing to the
//! measured quantities (mean response time, download duration).
//!
//! * [`addr`] — IPv4 addresses and subnets.
//! * [`pool`] — disjoint per-host IP pools, allocation/release.
//! * [`link`] — processor-sharing link and the fixed-rate point-to-point
//!   link used for WAN federation.
//! * [`bridge`] — the host's learning bridge with its UML↔IP map.
//! * [`proxy`] — NAT-style proxy alternative to bridging.
//! * [`http`] — HTTP/1.1 request/response and image-download sizing.
//! * [`control`] — per-host partition/loss windows gating control-plane
//!   messages (heartbeats) during chaos runs.

pub mod addr;
pub mod bridge;
pub mod control;
pub mod http;
pub mod link;
pub mod pool;
pub mod proxy;
pub mod topology;

pub use addr::{Ipv4Addr, Subnet};
pub use bridge::Bridge;
pub use control::ControlPlane;
pub use http::{HttpExchange, HttpModel};
pub use link::{FlowId, LinkSpec, ProcessorSharingLink};
pub use pool::{IpPool, PoolError};
pub use proxy::{NatProxy, ProxyError};
pub use topology::{NodeId, Path, Topology};
