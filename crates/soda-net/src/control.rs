//! Control-plane link health: partitions and lossy delivery.
//!
//! Heartbeats between the HUP daemons and the Master travel the same
//! LAN as everything else, and a chaos run can partition a host or make
//! its links lossy for a window. The [`ControlPlane`] tracks those
//! windows per host (raw `u64` ids — this crate sits below the crate
//! that defines `HostId`) and answers the one question the self-healing
//! loop asks: *does a message to/from this host get through right now?*
//!
//! Windows expire by the virtual clock, so no cleanup events are
//! needed; determinism holds because the only randomness involved (the
//! per-message loss draw) is supplied by the caller from the
//! simulation's seeded RNG, and is only requested while a loss window
//! is actually active.

use soda_sim::SimTime;
use std::collections::BTreeMap;

/// Impairments on a single host's links.
#[derive(Clone, Copy, Debug, Default)]
struct LinkHealth {
    partitioned_until: Option<SimTime>,
    loss: f64,
    loss_until: Option<SimTime>,
}

/// Per-host link impairment windows.
#[derive(Clone, Debug, Default)]
pub struct ControlPlane {
    links: BTreeMap<u64, LinkHealth>,
}

impl ControlPlane {
    /// No impairments anywhere.
    pub fn new() -> Self {
        ControlPlane::default()
    }

    /// Partition the host's links until `until` (extends any shorter
    /// existing window).
    pub fn partition(&mut self, host: u64, until: SimTime) {
        let h = self.links.entry(host).or_default();
        h.partitioned_until = Some(h.partitioned_until.map_or(until, |u| u.max(until)));
    }

    /// Make the host's links drop each message with probability `loss`
    /// until `until`.
    pub fn set_loss(&mut self, host: u64, loss: f64, until: SimTime) {
        let h = self.links.entry(host).or_default();
        h.loss = loss.clamp(0.0, 1.0);
        h.loss_until = Some(until);
    }

    /// Clear every impairment on the host immediately.
    pub fn heal(&mut self, host: u64) {
        self.links.remove(&host);
    }

    /// Is the host unreachable at `now`?
    pub fn is_partitioned(&self, host: u64, now: SimTime) -> bool {
        self.links
            .get(&host)
            .and_then(|h| h.partitioned_until)
            .is_some_and(|until| now < until)
    }

    /// The message-loss probability on the host's links at `now`.
    pub fn loss(&self, host: u64, now: SimTime) -> f64 {
        match self.links.get(&host) {
            Some(h) if h.loss_until.is_some_and(|until| now < until) => h.loss,
            _ => 0.0,
        }
    }

    /// Whether one message to/from `host` is delivered at `now`.
    ///
    /// `draw` supplies a uniform `[0, 1)` sample from the caller's
    /// seeded RNG and is invoked only when a loss window is active, so
    /// unimpaired links never consume randomness.
    pub fn delivers(&self, host: u64, now: SimTime, draw: impl FnOnce() -> f64) -> bool {
        if self.is_partitioned(host, now) {
            return false;
        }
        let loss = self.loss(host, now);
        if loss <= 0.0 {
            return true;
        }
        draw() >= loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_window_expires_on_its_own() {
        let mut cp = ControlPlane::new();
        cp.partition(7, SimTime::from_secs(10));
        assert!(cp.is_partitioned(7, SimTime::from_secs(5)));
        assert!(!cp.is_partitioned(7, SimTime::from_secs(10)));
        assert!(!cp.is_partitioned(8, SimTime::from_secs(5)));
    }

    #[test]
    fn partition_extends_never_shrinks() {
        let mut cp = ControlPlane::new();
        cp.partition(1, SimTime::from_secs(20));
        cp.partition(1, SimTime::from_secs(10));
        assert!(cp.is_partitioned(1, SimTime::from_secs(15)));
    }

    #[test]
    fn loss_window_gates_delivery() {
        let mut cp = ControlPlane::new();
        cp.set_loss(3, 0.5, SimTime::from_secs(10));
        let t = SimTime::from_secs(5);
        assert!(!cp.delivers(3, t, || 0.2));
        assert!(cp.delivers(3, t, || 0.8));
        // After the window, everything gets through with no draw.
        let after = SimTime::from_secs(11);
        assert!(cp.delivers(3, after, || unreachable!()));
    }

    #[test]
    fn healthy_links_never_draw_randomness() {
        let cp = ControlPlane::new();
        assert!(cp.delivers(1, SimTime::from_secs(1), || unreachable!()));
    }

    #[test]
    fn partition_beats_loss_and_heal_clears_both() {
        let mut cp = ControlPlane::new();
        cp.set_loss(2, 0.1, SimTime::from_secs(100));
        cp.partition(2, SimTime::from_secs(100));
        assert!(!cp.delivers(2, SimTime::from_secs(1), || 0.99));
        cp.heal(2);
        assert!(cp.delivers(2, SimTime::from_secs(1), || unreachable!()));
        assert_eq!(cp.loss(2, SimTime::from_secs(1)), 0.0);
    }
}
