//! NAT-style proxying — the bridging alternative.
//!
//! Footnote 3 of the paper: "if the scarcity of IP addresses becomes a
//! problem, we will adopt the technique of *proxying* instead of
//! bridging, so that a virtual service node can still communicate with a
//! reserved IP address." The proxy owns one public address and multiplexes
//! VSNs behind it on distinct public ports.

use std::collections::HashMap;
use std::fmt;

use crate::addr::Ipv4Addr;

/// A private (VSN-side) endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrivateEndpoint {
    /// VSN-internal address (may overlap across hosts — that is the
    /// point of proxying).
    pub ip: Ipv4Addr,
    /// VSN-internal port.
    pub port: u16,
}

/// Proxy errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyError {
    /// All public ports in the configured range are bound.
    PortsExhausted,
    /// Releasing/looking up a public port with no binding.
    NoBinding(u16),
    /// The private endpoint is already bound to a public port.
    AlreadyBound(PrivateEndpoint),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::PortsExhausted => write!(f, "proxy public ports exhausted"),
            ProxyError::NoBinding(p) => write!(f, "no binding on public port {p}"),
            ProxyError::AlreadyBound(e) => {
                write!(f, "private endpoint {}:{} already bound", e.ip, e.port)
            }
        }
    }
}

impl std::error::Error for ProxyError {}

/// A NAT proxy fronting the VSNs of one host with a single public
/// address.
#[derive(Clone, Debug)]
pub struct NatProxy {
    public_ip: Ipv4Addr,
    port_lo: u16,
    port_hi: u16,
    next_port: u16,
    inbound: HashMap<u16, PrivateEndpoint>,
    outbound: HashMap<PrivateEndpoint, u16>,
    translated: u64,
}

impl NatProxy {
    /// A proxy on `public_ip` handing out public ports in
    /// `[port_lo, port_hi]`. Panics on an empty range.
    pub fn new(public_ip: Ipv4Addr, port_lo: u16, port_hi: u16) -> Self {
        assert!(port_lo <= port_hi, "empty port range");
        NatProxy {
            public_ip,
            port_lo,
            port_hi,
            next_port: port_lo,
            inbound: HashMap::new(),
            outbound: HashMap::new(),
            translated: 0,
        }
    }

    /// The proxy's public address.
    pub fn public_ip(&self) -> Ipv4Addr {
        self.public_ip
    }

    /// Bind a private endpoint to a fresh public port; returns
    /// `(public_ip, public_port)` — what goes into the service
    /// configuration file in proxy mode.
    pub fn bind(&mut self, private: PrivateEndpoint) -> Result<(Ipv4Addr, u16), ProxyError> {
        if self.outbound.contains_key(&private) {
            return Err(ProxyError::AlreadyBound(private));
        }
        let span = (self.port_hi - self.port_lo) as u32 + 1;
        for _ in 0..span {
            let candidate = self.next_port;
            self.next_port = if self.next_port == self.port_hi {
                self.port_lo
            } else {
                self.next_port + 1
            };
            if let std::collections::hash_map::Entry::Vacant(e) = self.inbound.entry(candidate) {
                e.insert(private);
                self.outbound.insert(private, candidate);
                return Ok((self.public_ip, candidate));
            }
        }
        Err(ProxyError::PortsExhausted)
    }

    /// Remove the binding on a public port.
    pub fn unbind(&mut self, public_port: u16) -> Result<PrivateEndpoint, ProxyError> {
        let private = self
            .inbound
            .remove(&public_port)
            .ok_or(ProxyError::NoBinding(public_port))?;
        self.outbound.remove(&private);
        Ok(private)
    }

    /// Translate an inbound packet addressed to a public port to its
    /// private endpoint.
    pub fn translate_in(&mut self, public_port: u16) -> Result<PrivateEndpoint, ProxyError> {
        let ep = *self
            .inbound
            .get(&public_port)
            .ok_or(ProxyError::NoBinding(public_port))?;
        self.translated += 1;
        Ok(ep)
    }

    /// Translate an outbound packet from a private endpoint to its public
    /// `(ip, port)` pair.
    pub fn translate_out(
        &mut self,
        private: PrivateEndpoint,
    ) -> Result<(Ipv4Addr, u16), ProxyError> {
        let port = *self
            .outbound
            .get(&private)
            .ok_or(ProxyError::NoBinding(private.port))?;
        self.translated += 1;
        Ok((self.public_ip, port))
    }

    /// Number of live bindings.
    pub fn bindings(&self) -> usize {
        self.inbound.len()
    }

    /// Packets translated in either direction.
    pub fn translated(&self) -> u64 {
        self.translated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(ip: &str, port: u16) -> PrivateEndpoint {
        PrivateEndpoint {
            ip: ip.parse().unwrap(),
            port,
        }
    }

    fn proxy() -> NatProxy {
        NatProxy::new("128.10.9.100".parse().unwrap(), 20_000, 20_003)
    }

    #[test]
    fn bind_and_translate_round_trip() {
        let mut p = proxy();
        let private = ep("192.168.0.2", 8080);
        let (pub_ip, pub_port) = p.bind(private).unwrap();
        assert_eq!(pub_ip.to_string(), "128.10.9.100");
        assert_eq!(p.translate_in(pub_port).unwrap(), private);
        assert_eq!(p.translate_out(private).unwrap(), (pub_ip, pub_port));
        assert_eq!(p.translated(), 2);
        assert_eq!(p.bindings(), 1);
    }

    #[test]
    fn overlapping_private_addresses_coexist() {
        // Two VSNs may use the same private address space — proxying
        // resolves the scarcity that motivated footnote 3.
        let mut p = proxy();
        let a = ep("192.168.0.2", 8080);
        let b = ep("192.168.0.2", 9090);
        let (_, pa) = p.bind(a).unwrap();
        let (_, pb) = p.bind(b).unwrap();
        assert_ne!(pa, pb);
        assert_eq!(p.translate_in(pa).unwrap(), a);
        assert_eq!(p.translate_in(pb).unwrap(), b);
    }

    #[test]
    fn double_bind_rejected() {
        let mut p = proxy();
        let a = ep("192.168.0.2", 8080);
        p.bind(a).unwrap();
        assert_eq!(p.bind(a), Err(ProxyError::AlreadyBound(a)));
    }

    #[test]
    fn port_exhaustion_and_reuse() {
        let mut p = proxy(); // 4 ports
        let mut ports = Vec::new();
        for i in 0..4 {
            let (_, port) = p.bind(ep("192.168.0.2", 1000 + i)).unwrap();
            ports.push(port);
        }
        assert_eq!(
            p.bind(ep("192.168.0.2", 2000)),
            Err(ProxyError::PortsExhausted)
        );
        p.unbind(ports[1]).unwrap();
        let (_, reused) = p.bind(ep("192.168.0.2", 2000)).unwrap();
        assert_eq!(reused, ports[1]);
    }

    #[test]
    fn unbind_errors() {
        let mut p = proxy();
        assert_eq!(p.unbind(20_000), Err(ProxyError::NoBinding(20_000)));
        assert!(p.translate_in(20_000).is_err());
        assert!(p.translate_out(ep("1.2.3.4", 5)).is_err());
    }

    #[test]
    #[should_panic(expected = "empty port range")]
    fn empty_range_panics() {
        NatProxy::new("1.2.3.4".parse().unwrap(), 100, 99);
    }
}
