//! IPv4 addresses and subnets.
//!
//! The paper assigns each virtual service node a routable IPv4 address
//! (Table 3 shows `128.10.9.125` and `.126` — Purdue address space). We
//! model addresses as plain `u32`s with dotted-quad formatting; no
//! dependency on `std::net` types keeps the address usable as a dense map
//! key throughout the simulator.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address (host byte order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Construct from four octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The next address numerically (wrapping).
    pub const fn next(self) -> Ipv4Addr {
        Ipv4Addr(self.0.wrapping_add(1))
    }

    /// Raw value (useful as a map/shaper key).
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Address parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddrParseError(String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {:?}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4Addr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| AddrParseError(s.into()))?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(AddrParseError(s.into()));
            }
            *slot = part.parse().map_err(|_| AddrParseError(s.into()))?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError(s.into()));
        }
        Ok(Ipv4Addr::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// A CIDR subnet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Subnet {
    /// Network base address (host bits zeroed on construction).
    pub base: Ipv4Addr,
    /// Prefix length, 0–32.
    pub prefix: u8,
}

impl Subnet {
    /// Construct, zeroing host bits of `base`. Panics if `prefix > 32`.
    pub fn new(base: Ipv4Addr, prefix: u8) -> Self {
        assert!(prefix <= 32, "prefix {prefix} out of range");
        let mask = Self::mask_of(prefix);
        Subnet {
            base: Ipv4Addr(base.0 & mask),
            prefix,
        }
    }

    fn mask_of(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix as u32)
        }
    }

    /// The netmask.
    pub fn mask(&self) -> u32 {
        Self::mask_of(self.prefix)
    }

    /// True iff `addr` falls inside this subnet.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (addr.0 & self.mask()) == self.base.0
    }

    /// Number of addresses in the subnet (including network/broadcast).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix as u32)
    }

    /// True iff two subnets share any address.
    pub fn overlaps(&self, other: &Subnet) -> bool {
        let p = self.prefix.min(other.prefix);
        let mask = Self::mask_of(p);
        (self.base.0 & mask) == (other.base.0 & mask)
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_and_octets() {
        let a = Ipv4Addr::from_octets(128, 10, 9, 125);
        assert_eq!(a.to_string(), "128.10.9.125");
        assert_eq!(a.octets(), [128, 10, 9, 125]);
        assert_eq!(a.next().to_string(), "128.10.9.126");
    }

    #[test]
    fn parse_valid() {
        let a: Ipv4Addr = "128.10.9.125".parse().unwrap();
        assert_eq!(a, Ipv4Addr::from_octets(128, 10, 9, 125));
        let z: Ipv4Addr = "0.0.0.0".parse().unwrap();
        assert_eq!(z.as_u32(), 0);
        let m: Ipv4Addr = "255.255.255.255".parse().unwrap();
        assert_eq!(m.as_u32(), u32::MAX);
    }

    #[test]
    fn parse_invalid() {
        for s in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.1.1.1",
            "a.b.c.d",
            "1..2.3",
            "01x.2.3.4",
            "1.2.3.-4",
        ] {
            assert!(s.parse::<Ipv4Addr>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn subnet_contains() {
        let s = Subnet::new("128.10.9.0".parse().unwrap(), 24);
        assert!(s.contains("128.10.9.125".parse().unwrap()));
        assert!(!s.contains("128.10.8.125".parse().unwrap()));
        assert_eq!(s.size(), 256);
        assert_eq!(s.to_string(), "128.10.9.0/24");
    }

    #[test]
    fn subnet_zeroes_host_bits() {
        let s = Subnet::new("128.10.9.77".parse().unwrap(), 24);
        assert_eq!(s.base.to_string(), "128.10.9.0");
    }

    #[test]
    fn subnet_overlap() {
        let a = Subnet::new("10.0.0.0".parse().unwrap(), 8);
        let b = Subnet::new("10.1.0.0".parse().unwrap(), 16);
        let c = Subnet::new("11.0.0.0".parse().unwrap(), 8);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn prefix_zero_contains_everything() {
        let s = Subnet::new(Ipv4Addr(0), 0);
        assert!(s.contains(Ipv4Addr(u32::MAX)));
        assert_eq!(s.size(), 1u64 << 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_33_panics() {
        Subnet::new(Ipv4Addr(0), 33);
    }

    proptest! {
        /// Display/parse round-trips for any address.
        #[test]
        fn prop_roundtrip(raw in any::<u32>()) {
            let a = Ipv4Addr(raw);
            let parsed: Ipv4Addr = a.to_string().parse().unwrap();
            prop_assert_eq!(parsed, a);
        }

        /// An address is contained in a subnet iff masking maps it to the
        /// base.
        #[test]
        fn prop_contains(raw in any::<u32>(), base in any::<u32>(), prefix in 0u8..=32) {
            let s = Subnet::new(Ipv4Addr(base), prefix);
            let a = Ipv4Addr(raw);
            prop_assert_eq!(s.contains(a), (raw & s.mask()) == s.base.0);
        }
    }
}
