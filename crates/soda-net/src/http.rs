//! HTTP/1.1 sizing model.
//!
//! Two uses in the paper: the SODA Daemon downloads service images "using
//! HTTP/1.1" (§4.3), and the web-content service serves datasets to
//! `siege` clients (Figures 4 and 6). At flow level, HTTP reduces to byte
//! counts: request size, response = headers + body, and a small per-image
//! framing overhead for chunked downloads.

use crate::link::LinkSpec;
use soda_sim::SimDuration;

/// Byte-level constants for an HTTP/1.1 exchange.
#[derive(Clone, Copy, Debug)]
pub struct HttpModel {
    /// A typical GET request line + headers.
    pub request_bytes: u64,
    /// Response status line + headers.
    pub response_header_bytes: u64,
    /// Fractional framing overhead on large transfers (chunked encoding,
    /// TCP/IP headers amortised at flow level).
    pub framing_overhead: f64,
}

impl Default for HttpModel {
    fn default() -> Self {
        HttpModel {
            request_bytes: 350,
            response_header_bytes: 250,
            framing_overhead: 0.03,
        }
    }
}

impl HttpModel {
    /// The default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes on the wire for a response carrying `body` bytes.
    pub fn response_bytes(&self, body: u64) -> u64 {
        self.response_header_bytes + body + (body as f64 * self.framing_overhead) as u64
    }

    /// Total bytes on the wire to download a service image of
    /// `image_bytes` (one GET, one long response).
    pub fn download_bytes(&self, image_bytes: u64) -> u64 {
        self.request_bytes + self.response_bytes(image_bytes)
    }

    /// Uncontended download time for an image over `link` — the §4.3
    /// measurement ("grows linearly with the size of the service image").
    pub fn download_time(&self, image_bytes: u64, link: &LinkSpec) -> SimDuration {
        // Request travels one way, response the other: two latencies.
        link.latency + link.latency + link.serialization_time(self.download_bytes(image_bytes))
    }
}

/// One request/response exchange, sized and ready to place on links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HttpExchange {
    /// Bytes client → server.
    pub request_wire_bytes: u64,
    /// Bytes server → client.
    pub response_wire_bytes: u64,
}

impl HttpExchange {
    /// Build an exchange for a GET returning `body` bytes.
    pub fn get(model: &HttpModel, body: u64) -> Self {
        HttpExchange {
            request_wire_bytes: model.request_bytes,
            response_wire_bytes: model.response_bytes(body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_includes_headers_and_framing() {
        let m = HttpModel::new();
        let r = m.response_bytes(100_000);
        assert_eq!(r, 250 + 100_000 + 3_000);
        assert_eq!(m.response_bytes(0), 250);
    }

    #[test]
    fn download_time_linear_in_image_size() {
        let m = HttpModel::new();
        let lan = LinkSpec::lan_100mbps();
        let t15 = m.download_time(15_000_000, &lan).as_secs_f64();
        let t30 = m.download_time(30_000_000, &lan).as_secs_f64();
        let t60 = m.download_time(60_000_000, &lan).as_secs_f64();
        // Differences double: linear growth.
        let d1 = t30 - t15;
        let d2 = t60 - t30;
        assert!((d2 / d1 - 2.0).abs() < 0.01, "d1={d1} d2={d2}");
        // Magnitude: ~15 MB at 100 Mbps ≈ 1.2 s + 3% overhead.
        assert!((1.2..1.35).contains(&t15), "t15={t15}");
    }

    #[test]
    fn exchange_sizes() {
        let m = HttpModel::new();
        let e = HttpExchange::get(&m, 50_000);
        assert_eq!(e.request_wire_bytes, 350);
        assert_eq!(e.response_wire_bytes, m.response_bytes(50_000));
    }
}
