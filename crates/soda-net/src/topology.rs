//! Multi-segment network topology.
//!
//! The paper's testbed is one LAN; its §3.5 federation direction needs
//! more: sites joined by heterogeneous WAN links, where a transfer's
//! time is governed by the bottleneck link and the path's summed
//! latency. This module is that substrate: named nodes, weighted
//! bidirectional links, Dijkstra shortest paths by latency, and path
//! transfer-time computation.

use std::collections::{BinaryHeap, HashMap};

use soda_sim::SimDuration;

use crate::link::LinkSpec;

/// Identifier of a topology node (a site, a router).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A path through the topology.
#[derive(Clone, Debug, PartialEq)]
pub struct Path {
    /// The node sequence, source first.
    pub nodes: Vec<NodeId>,
    /// Sum of one-way latencies along the path.
    pub latency: SimDuration,
    /// The bottleneck bandwidth along the path, bits/s.
    pub bottleneck_bps: f64,
}

impl Path {
    /// One-way transfer time for `bytes` along this path (store-and-
    /// forward effects ignored at flow level: bottleneck + latency).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bottleneck_bps)
    }

    /// Number of hops (links) on the path.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// A topology of nodes and bidirectional links.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    names: HashMap<NodeId, String>,
    adj: HashMap<NodeId, Vec<(NodeId, LinkSpec)>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named node.
    pub fn add_node(&mut self, id: NodeId, name: impl Into<String>) {
        self.names.insert(id, name.into());
        self.adj.entry(id).or_default();
    }

    /// Connect two existing nodes bidirectionally. Panics on unknown
    /// nodes.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: LinkSpec) {
        assert!(self.names.contains_key(&a), "unknown node {a:?}");
        assert!(self.names.contains_key(&b), "unknown node {b:?}");
        self.adj.get_mut(&a).expect("checked").push((b, link));
        self.adj.get_mut(&b).expect("checked").push((a, link));
    }

    /// Node name.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        self.names.get(&id).map(|s| s.as_str())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Lowest-latency path from `src` to `dst` (Dijkstra). `None` if
    /// disconnected or either node is unknown.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        if !self.names.contains_key(&src) || !self.names.contains_key(&dst) {
            return None;
        }
        // Max-heap on Reverse(latency_ns).
        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(std::cmp::Reverse((0, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if u == dst {
                break;
            }
            if dist.get(&u).copied().unwrap_or(u64::MAX) < d {
                continue;
            }
            for &(v, link) in self.adj.get(&u).into_iter().flatten() {
                let nd = d.saturating_add(link.latency.as_nanos());
                if nd < dist.get(&v).copied().unwrap_or(u64::MAX) {
                    dist.insert(v, nd);
                    prev.insert(v, u);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        if src != dst && !prev.contains_key(&dst) {
            return None;
        }
        // Reconstruct.
        let mut nodes = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[&cur];
            nodes.push(cur);
        }
        nodes.reverse();
        // Compute path metrics.
        let mut latency = SimDuration::ZERO;
        let mut bottleneck = f64::INFINITY;
        for w in nodes.windows(2) {
            let link = self.adj[&w[0]]
                .iter()
                .filter(|&&(n, _)| n == w[1])
                .map(|&(_, l)| l)
                .min_by(|a, b| a.latency.cmp(&b.latency))
                .expect("path edges exist");
            latency += link.latency;
            bottleneck = bottleneck.min(link.bandwidth_bps);
        }
        if nodes.len() == 1 {
            bottleneck = f64::INFINITY;
        }
        Some(Path {
            nodes,
            latency,
            bottleneck_bps: bottleneck,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn wan(mbps: f64, ms: u64) -> LinkSpec {
        LinkSpec::wan(mbps, SimDuration::from_millis(ms))
    }

    /// purdue —20ms— wisconsin —15ms— berkeley, plus a slow direct
    /// purdue—berkeley link at 60 ms.
    fn triangle() -> Topology {
        let mut t = Topology::new();
        t.add_node(n(1), "purdue");
        t.add_node(n(2), "wisconsin");
        t.add_node(n(3), "berkeley");
        t.connect(n(1), n(2), wan(45.0, 20));
        t.connect(n(2), n(3), wan(45.0, 15));
        t.connect(n(1), n(3), wan(10.0, 60));
        t
    }

    #[test]
    fn dijkstra_prefers_low_latency_multihop() {
        let t = triangle();
        let p = t.shortest_path(n(1), n(3)).unwrap();
        // 20+15=35 ms via wisconsin beats 60 ms direct.
        assert_eq!(p.nodes, vec![n(1), n(2), n(3)]);
        assert_eq!(p.latency, SimDuration::from_millis(35));
        assert_eq!(p.hops(), 2);
        assert_eq!(p.bottleneck_bps, 45e6);
    }

    #[test]
    fn transfer_time_uses_bottleneck() {
        let t = triangle();
        let p = t.shortest_path(n(1), n(3)).unwrap();
        // 45 Mbps bottleneck: 29.3 MB ≈ 5.2 s + 35 ms.
        let secs = p.transfer_time(29_300_000).as_secs_f64();
        assert!((5.0..5.5).contains(&secs), "{secs}");
    }

    #[test]
    fn self_path_is_free() {
        let t = triangle();
        let p = t.shortest_path(n(1), n(1)).unwrap();
        assert_eq!(p.nodes, vec![n(1)]);
        assert_eq!(p.latency, SimDuration::ZERO);
        assert_eq!(p.hops(), 0);
        assert_eq!(p.transfer_time(1_000_000_000), SimDuration::ZERO);
    }

    #[test]
    fn disconnected_and_unknown() {
        let mut t = triangle();
        t.add_node(n(9), "island");
        assert!(t.shortest_path(n(1), n(9)).is_none());
        assert!(t.shortest_path(n(1), n(42)).is_none());
        assert!(t.shortest_path(n(42), n(1)).is_none());
    }

    #[test]
    fn symmetric_paths() {
        let t = triangle();
        let ab = t.shortest_path(n(1), n(3)).unwrap();
        let ba = t.shortest_path(n(3), n(1)).unwrap();
        assert_eq!(ab.latency, ba.latency);
        assert_eq!(ab.bottleneck_bps, ba.bottleneck_bps);
        let mut rev = ba.nodes.clone();
        rev.reverse();
        assert_eq!(ab.nodes, rev);
    }

    #[test]
    fn names_and_size() {
        let t = triangle();
        assert_eq!(t.name(n(1)), Some("purdue"));
        assert_eq!(t.name(n(9)), None);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(Topology::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn connect_unknown_panics() {
        let mut t = Topology::new();
        t.add_node(n(1), "a");
        t.connect(n(1), n(2), wan(10.0, 10));
    }
}
