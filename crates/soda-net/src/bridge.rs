//! The host's bridging module.
//!
//! §3.3: "a *bridging module* running in the host OS … acts as a
//! transparent bridge connecting all virtual service nodes in the HUP
//! host. … the SODA Daemon will notify the bridging module … of the new
//! 'UML-IP' mapping, so that the bridging module will correctly forward
//! packets from/to the new virtual service node."

use std::collections::HashMap;
use std::fmt;

use crate::addr::Ipv4Addr;

/// Opaque tag identifying a virtual service node attached to the bridge
/// (assigned by the VMM layer; the bridge does not interpret it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PortTag(pub u64);

/// Where the bridge sends a frame for a given destination address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Forwarding {
    /// Destination is a VSN on this host.
    Local(PortTag),
    /// Destination unknown locally — forward out the physical uplink.
    Uplink,
}

/// A transparent bridge with a UML↔IP mapping table.
#[derive(Clone, Debug, Default)]
pub struct Bridge {
    table: HashMap<Ipv4Addr, PortTag>,
    forwarded_local: u64,
    forwarded_uplink: u64,
}

/// Mapping-table errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BridgeError {
    /// The address is already mapped to a (different) VSN.
    AddressInUse(Ipv4Addr),
    /// Unmapping an address that is not in the table.
    NotMapped(Ipv4Addr),
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeError::AddressInUse(a) => write!(f, "address {a} already bridged"),
            BridgeError::NotMapped(a) => write!(f, "address {a} not bridged"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl Bridge {
    /// An empty bridge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a UML-IP mapping (SODA Daemon notification after a VSN is
    /// assigned its address).
    pub fn map(&mut self, ip: Ipv4Addr, port: PortTag) -> Result<(), BridgeError> {
        match self.table.get(&ip) {
            Some(&existing) if existing != port => Err(BridgeError::AddressInUse(ip)),
            _ => {
                self.table.insert(ip, port);
                Ok(())
            }
        }
    }

    /// Remove a mapping (VSN teardown).
    pub fn unmap(&mut self, ip: Ipv4Addr) -> Result<PortTag, BridgeError> {
        self.table.remove(&ip).ok_or(BridgeError::NotMapped(ip))
    }

    /// Forward a frame addressed to `dst`, updating counters.
    pub fn forward(&mut self, dst: Ipv4Addr) -> Forwarding {
        match self.table.get(&dst) {
            Some(&port) => {
                self.forwarded_local += 1;
                Forwarding::Local(port)
            }
            None => {
                self.forwarded_uplink += 1;
                Forwarding::Uplink
            }
        }
    }

    /// Look up without counting (control-plane queries).
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<PortTag> {
        self.table.get(&ip).copied()
    }

    /// Number of installed mappings.
    pub fn mappings(&self) -> usize {
        self.table.len()
    }

    /// Frames delivered to local VSNs.
    pub fn local_count(&self) -> u64 {
        self.forwarded_local
    }

    /// Frames sent out the uplink.
    pub fn uplink_count(&self) -> u64 {
        self.forwarded_uplink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn map_lookup_forward() {
        let mut b = Bridge::new();
        b.map(ip("128.10.9.125"), PortTag(1)).unwrap();
        b.map(ip("128.10.9.126"), PortTag(2)).unwrap();
        assert_eq!(b.mappings(), 2);
        assert_eq!(b.forward(ip("128.10.9.125")), Forwarding::Local(PortTag(1)));
        assert_eq!(b.forward(ip("128.10.9.200")), Forwarding::Uplink);
        assert_eq!(b.local_count(), 1);
        assert_eq!(b.uplink_count(), 1);
        assert_eq!(b.lookup(ip("128.10.9.126")), Some(PortTag(2)));
    }

    #[test]
    fn remap_same_port_is_idempotent() {
        let mut b = Bridge::new();
        b.map(ip("10.0.0.1"), PortTag(7)).unwrap();
        b.map(ip("10.0.0.1"), PortTag(7)).unwrap();
        assert_eq!(b.mappings(), 1);
    }

    #[test]
    fn conflicting_map_rejected() {
        let mut b = Bridge::new();
        b.map(ip("10.0.0.1"), PortTag(1)).unwrap();
        assert_eq!(
            b.map(ip("10.0.0.1"), PortTag(2)),
            Err(BridgeError::AddressInUse(ip("10.0.0.1")))
        );
        assert_eq!(b.lookup(ip("10.0.0.1")), Some(PortTag(1)));
    }

    #[test]
    fn unmap() {
        let mut b = Bridge::new();
        b.map(ip("10.0.0.1"), PortTag(1)).unwrap();
        assert_eq!(b.unmap(ip("10.0.0.1")), Ok(PortTag(1)));
        assert_eq!(
            b.unmap(ip("10.0.0.1")),
            Err(BridgeError::NotMapped(ip("10.0.0.1")))
        );
        assert_eq!(b.forward(ip("10.0.0.1")), Forwarding::Uplink);
    }
}
