//! Per-host IP address pools.
//!
//! "Each SODA Daemon maintains a pool of IP addresses to be assigned to
//! the virtual service nodes running in this HUP host. For different HUP
//! hosts, their pools of IP addresses must be disjoint." (§4.3)

use std::collections::BTreeSet;
use std::fmt;

use crate::addr::Ipv4Addr;

/// Pool allocation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// No free addresses remain — the "scarcity of IP addresses" case
    /// where the paper would switch from bridging to proxying.
    Exhausted,
    /// The released address does not belong to this pool.
    NotInPool(Ipv4Addr),
    /// The released address was not allocated.
    NotAllocated(Ipv4Addr),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Exhausted => write!(f, "IP pool exhausted"),
            PoolError::NotInPool(a) => write!(f, "address {a} not in pool"),
            PoolError::NotAllocated(a) => write!(f, "address {a} not currently allocated"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A contiguous pool of IPv4 addresses with allocation tracking.
/// Allocation is lowest-address-first for determinism (and so Table 3's
/// `.125`/`.126` layout reproduces).
#[derive(Clone, Debug)]
pub struct IpPool {
    first: Ipv4Addr,
    count: u32,
    allocated: BTreeSet<u32>,
}

impl IpPool {
    /// A pool of `count` consecutive addresses starting at `first`.
    /// Panics if the range would wrap past `255.255.255.255`.
    pub fn new(first: Ipv4Addr, count: u32) -> Self {
        assert!(count > 0, "empty pool");
        assert!(
            first.as_u32().checked_add(count - 1).is_some(),
            "pool wraps the address space"
        );
        IpPool {
            first,
            count,
            allocated: BTreeSet::new(),
        }
    }

    /// Allocate the lowest free address.
    pub fn allocate(&mut self) -> Result<Ipv4Addr, PoolError> {
        for off in 0..self.count {
            let raw = self.first.as_u32() + off;
            if !self.allocated.contains(&raw) {
                self.allocated.insert(raw);
                return Ok(Ipv4Addr(raw));
            }
        }
        Err(PoolError::Exhausted)
    }

    /// Release a previously allocated address.
    pub fn release(&mut self, addr: Ipv4Addr) -> Result<(), PoolError> {
        if !self.contains(addr) {
            return Err(PoolError::NotInPool(addr));
        }
        if !self.allocated.remove(&addr.as_u32()) {
            return Err(PoolError::NotAllocated(addr));
        }
        Ok(())
    }

    /// True iff `addr` belongs to the pool's range.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        let raw = addr.as_u32();
        raw >= self.first.as_u32() && raw < self.first.as_u32() + self.count
    }

    /// Number of free addresses.
    pub fn free(&self) -> u32 {
        self.count - self.allocated.len() as u32
    }

    /// Number of allocated addresses.
    pub fn in_use(&self) -> u32 {
        self.allocated.len() as u32
    }

    /// Total pool size.
    pub fn size(&self) -> u32 {
        self.count
    }

    /// True iff this pool shares any address with `other` — HUP
    /// configuration must keep per-host pools disjoint.
    pub fn overlaps(&self, other: &IpPool) -> bool {
        let a0 = self.first.as_u32();
        let a1 = a0 + self.count - 1;
        let b0 = other.first.as_u32();
        let b1 = b0 + other.count - 1;
        a0 <= b1 && b0 <= a1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pool() -> IpPool {
        IpPool::new("128.10.9.125".parse().unwrap(), 4)
    }

    #[test]
    fn allocates_lowest_first() {
        let mut p = pool();
        assert_eq!(p.allocate().unwrap().to_string(), "128.10.9.125");
        assert_eq!(p.allocate().unwrap().to_string(), "128.10.9.126");
        assert_eq!(p.free(), 2);
        assert_eq!(p.in_use(), 2);
    }

    #[test]
    fn exhaustion() {
        let mut p = pool();
        for _ in 0..4 {
            p.allocate().unwrap();
        }
        assert_eq!(p.allocate(), Err(PoolError::Exhausted));
    }

    #[test]
    fn release_and_reuse() {
        let mut p = pool();
        let a = p.allocate().unwrap();
        let _b = p.allocate().unwrap();
        p.release(a).unwrap();
        // Lowest-first reallocates the released address.
        assert_eq!(p.allocate().unwrap(), a);
    }

    #[test]
    fn release_errors() {
        let mut p = pool();
        let outside: Ipv4Addr = "10.0.0.1".parse().unwrap();
        assert_eq!(p.release(outside), Err(PoolError::NotInPool(outside)));
        let inside: Ipv4Addr = "128.10.9.126".parse().unwrap();
        assert_eq!(p.release(inside), Err(PoolError::NotAllocated(inside)));
    }

    #[test]
    fn disjointness_check() {
        let a = IpPool::new("128.10.9.0".parse().unwrap(), 64);
        let b = IpPool::new("128.10.9.64".parse().unwrap(), 64);
        let c = IpPool::new("128.10.9.32".parse().unwrap(), 64);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "wraps")]
    fn wrapping_pool_panics() {
        IpPool::new(Ipv4Addr(u32::MAX), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_pool_panics() {
        IpPool::new(Ipv4Addr(0), 0);
    }

    proptest! {
        /// free + in_use == size under arbitrary alloc/release traffic,
        /// and no address is handed out twice while allocated.
        #[test]
        fn prop_pool_conservation(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
            let mut p = IpPool::new("10.0.0.0".parse().unwrap(), 16);
            let mut live: Vec<Ipv4Addr> = Vec::new();
            for alloc in ops {
                if alloc {
                    if let Ok(a) = p.allocate() {
                        prop_assert!(!live.contains(&a), "double allocation of {a}");
                        live.push(a);
                    }
                } else if let Some(a) = live.pop() {
                    p.release(a).unwrap();
                }
                prop_assert_eq!(p.free() + p.in_use(), p.size());
                prop_assert_eq!(p.in_use() as usize, live.len());
            }
        }
    }
}
